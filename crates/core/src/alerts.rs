//! The alert rule engine: declarative rules over sensor topics, driven by
//! a full `inactive → pending → firing → resolved` state machine.
//!
//! The paper's future-work section (§9) asks for streaming anomaly
//! detection in continuous operation; the analytics operators
//! (`dcdb-collectagent`) detect, but nothing *remembers*.  This module
//! closes the loop: an [`AlertEngine`] holds [`AlertRule`]s — threshold
//! above/below, rate-of-change, z-score anomaly, and absence/staleness
//! detection for sensors that stop reporting — and tracks one
//! [`StateMachine`] per `(rule, topic)` instance:
//!
//! ```text
//!              condition true                for-duration held
//!  inactive ────────────────────▶ pending ────────────────────▶ firing
//!      ▲                            │                             │
//!      │      condition clears      │      condition clears       │
//!      ◀────────────────────────────┘       ┌─────────────────────┘
//!      │                                    ▼
//!      └────────────────────────────── resolved
//!                next evaluation
//! ```
//!
//! * `for`-duration hysteresis: with `for > 0` a rule never jumps straight
//!   to `firing` — it goes `pending` first and fires only once the
//!   condition has held for the duration (flapping sensors never page).
//! * Re-notification throttling: a firing alert re-notifies at most once
//!   per `renotify` interval.
//! * Rules evaluate on the **live ingest stream**
//!   ([`AlertEngine::observe`], wired to the Collect Agent's reading
//!   observer hook) and **periodically** ([`AlertEngine::tick`]) — the
//!   tick drives staleness checks and query-based rules, which evaluate a
//!   windowed aggregate through [`SensorDb::execute`] (one rule over "avg
//!   rack power over the last minute" instead of every raw reading).
//!
//! Every notification-worthy transition is recorded in the cluster's
//! [`EventJournal`]; alert state surfaces as Prometheus
//! `ALERTS{alertname=...,state=...}` samples on `GET /metrics`, as JSON on
//! `GET /alerts`, and in the `alerts` block of the Collect Agent's
//! `/stats`.  Rules load from a simple INI-style config
//! ([`parse_rules`], `dcdbcollectagent --alert-rules <file>`).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dcdb_mqtt::topic::filter_matches;
use dcdb_obs::{EventJournal, EventKind, Severity};
use dcdb_query::{AggFn, Moments};
use dcdb_store::reading::{Reading, TimeRange};
use parking_lot::{Mutex, RwLock};

use crate::api::SensorDb;
use crate::request::QueryRequest;

/// The state of one `(rule, topic)` alert instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlertState {
    /// Condition false; nothing happening.
    #[default]
    Inactive,
    /// Condition true but the `for`-duration has not elapsed yet.
    Pending,
    /// Condition held for the `for`-duration: the alert is active.
    Firing,
    /// The condition cleared after firing; decays to inactive on the next
    /// evaluation.
    Resolved,
}

impl AlertState {
    /// Lowercase wire name (`"inactive"` / `"pending"` / `"firing"` /
    /// `"resolved"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }
}

/// A notification-worthy state-machine transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// `inactive/resolved → pending` (condition became true, `for > 0`).
    Pending,
    /// `pending → firing` (condition held), or `inactive → firing`
    /// directly when `for == 0`.
    Firing,
    /// Still firing and the re-notification interval elapsed.
    Renotify,
    /// `firing → resolved` (condition cleared).
    Resolved,
    /// A silent return to `inactive`: `pending` cleared before firing, or
    /// `resolved` decayed.  Not journalled.
    Reset,
}

/// The per-instance alert state machine.  Deterministic: transitions
/// depend only on the sequence of `(ts, active)` steps, so replaying the
/// same sequence always reproduces the same transitions.
#[derive(Debug, Clone, Copy, Default)]
pub struct StateMachine {
    state: AlertState,
    /// When the current pending phase started.
    pending_since: i64,
    /// Last notification (fire or re-notify) timestamp.
    last_notify: i64,
}

impl StateMachine {
    /// A fresh machine in `inactive`.
    pub fn new() -> StateMachine {
        StateMachine::default()
    }

    /// Current state.
    pub fn state(&self) -> AlertState {
        self.state
    }

    /// Advance by one evaluation: the condition is `active` at `ts`.
    /// Returns the transition taken, if any.  With `for_ns > 0` the
    /// machine never skips `pending`; from `firing`, a step with
    /// `active == false` always yields [`Transition::Resolved`].
    /// Inlined into the per-reading batch loop — the steady states
    /// (inactive+inactive, firing+active) fall through in a few compares.
    #[inline]
    pub fn step(
        &mut self,
        ts: i64,
        active: bool,
        for_ns: i64,
        renotify_ns: i64,
    ) -> Option<Transition> {
        match self.state {
            AlertState::Inactive | AlertState::Resolved => {
                if active {
                    if for_ns > 0 {
                        self.state = AlertState::Pending;
                        self.pending_since = ts;
                        Some(Transition::Pending)
                    } else {
                        self.state = AlertState::Firing;
                        self.last_notify = ts;
                        Some(Transition::Firing)
                    }
                } else if self.state == AlertState::Resolved {
                    self.state = AlertState::Inactive;
                    Some(Transition::Reset)
                } else {
                    None
                }
            }
            AlertState::Pending => {
                if !active {
                    self.state = AlertState::Inactive;
                    Some(Transition::Reset)
                } else if ts.saturating_sub(self.pending_since) >= for_ns {
                    self.state = AlertState::Firing;
                    self.last_notify = ts;
                    Some(Transition::Firing)
                } else {
                    None
                }
            }
            AlertState::Firing => {
                if !active {
                    self.state = AlertState::Resolved;
                    Some(Transition::Resolved)
                } else if renotify_ns > 0 && ts.saturating_sub(self.last_notify) >= renotify_ns {
                    self.last_notify = ts;
                    Some(Transition::Renotify)
                } else {
                    None
                }
            }
        }
    }
}

/// When a rule's condition holds.
#[derive(Debug, Clone, PartialEq)]
pub enum AlertCondition {
    /// Value strictly above the bound.
    Above(f64),
    /// Value strictly below the bound.
    Below(f64),
    /// Per-second rate of change strictly above the bound (computed from
    /// consecutive evaluations, like the analytics `RateOfChange`
    /// operator).
    RateAbove(f64),
    /// Value more than `sigmas` standard deviations from the running mean
    /// (Welford accumulation via [`Moments`], the same statistics the
    /// analytics `ZScoreAnomaly` operator and the query engine use), once
    /// `min_samples` observations accumulated.
    ZScore {
        /// Standard deviations from the running mean.
        sigmas: f64,
        /// Observations required before the detector arms.
        min_samples: u64,
    },
    /// No reading for `timeout_ns` — staleness detection for sensors that
    /// stop reporting.  Evaluated by [`AlertEngine::tick`]; arms after a
    /// sensor's first reading.
    Absent {
        /// Silence duration that activates the condition.
        timeout_ns: i64,
    },
}

impl AlertCondition {
    fn describe(&self) -> String {
        match self {
            AlertCondition::Above(t) => format!("above {t}"),
            AlertCondition::Below(t) => format!("below {t}"),
            AlertCondition::RateAbove(t) => format!("rate above {t}/s"),
            AlertCondition::ZScore { sigmas, .. } => format!("beyond {sigmas}sigma"),
            AlertCondition::Absent { timeout_ns } => {
                format!("absent for {}s", *timeout_ns as f64 / 1e9)
            }
        }
    }
}

/// How a rule's condition gets its values.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum EvalMode {
    /// Evaluate every live reading of every matching topic (the default).
    #[default]
    Stream,
    /// Evaluate periodically against the trailing windowed aggregate of
    /// the rule's target (one [`SensorDb::execute`] per tick): the rule
    /// watches "avg over the last window" instead of raw readings.  The
    /// rule's `filter` must be a plain topic or prefix (no wildcards).
    Query {
        /// Trailing window width, ns.
        window_ns: i64,
        /// Aggregation folded over the window.
        agg: AggFn,
    },
}

/// One declarative alert rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Rule name (`alertname` in the Prometheus exposition).
    pub name: String,
    /// MQTT wildcard filter selecting the topics the rule watches
    /// (stream rules), or the topic/prefix it queries (query rules).
    pub filter: String,
    /// The condition.
    pub condition: AlertCondition,
    /// `for`-duration hysteresis: the condition must hold this long before
    /// the alert fires (0 = fire immediately).
    pub for_ns: i64,
    /// Re-notification throttle while firing (0 = notify once).
    pub renotify_ns: i64,
    /// Stream or query evaluation.
    pub eval: EvalMode,
}

impl AlertRule {
    /// A stream rule firing immediately, never re-notifying.
    pub fn new(
        name: impl Into<String>,
        filter: impl Into<String>,
        condition: AlertCondition,
    ) -> AlertRule {
        AlertRule {
            name: name.into(),
            filter: filter.into(),
            condition,
            for_ns: 0,
            renotify_ns: 0,
            eval: EvalMode::Stream,
        }
    }

    /// Require the condition to hold `for_ns` before firing.
    pub fn for_duration(mut self, for_ns: i64) -> AlertRule {
        self.for_ns = for_ns;
        self
    }

    /// Re-notify at most once per `renotify_ns` while firing.
    pub fn renotify(mut self, renotify_ns: i64) -> AlertRule {
        self.renotify_ns = renotify_ns;
        self
    }

    /// Evaluate against the trailing `agg` over `window_ns` on each tick
    /// instead of per reading.
    pub fn query_eval(mut self, agg: AggFn, window_ns: i64) -> AlertRule {
        self.eval = EvalMode::Query { window_ns, agg };
        self
    }
}

/// Point-in-time status of one alert instance (`GET /alerts`).
#[derive(Debug, Clone, PartialEq)]
pub struct AlertStatus {
    /// Rule name.
    pub rule: String,
    /// The matched sensor topic (or the rule's target for query rules).
    pub topic: String,
    /// Current state.
    pub state: AlertState,
    /// When the current state was entered (evaluation timestamp, ns).
    pub since_ns: i64,
    /// Value at the last evaluation.
    pub value: f64,
    /// Human-readable description of the last transition.
    pub message: String,
    /// Notifications sent (fire + re-notify + resolve).
    pub notifications: u64,
}

/// Per-(rule, topic) evaluation state.
struct Instance {
    sm: StateMachine,
    last_seen: i64,
    last_value: f64,
    /// Previous `(ts, value)` for rate-of-change conditions.
    prev: Option<(i64, f64)>,
    /// Running statistics for z-score conditions.
    moments: Moments,
    notifications: u64,
    since_ns: i64,
    message: String,
}

impl Instance {
    fn new() -> Instance {
        Instance {
            sm: StateMachine::new(),
            last_seen: 0,
            last_value: f64::NAN,
            prev: None,
            moments: Moments::new(),
            notifications: 0,
            since_ns: 0,
            message: String::new(),
        }
    }
}

/// Everything the engine tracks for one topic: which rules match it
/// (cached — the filter walk is the expensive part of the ingest path)
/// and the per-rule instances.  Rules are append-only, so `checked ==
/// rules.len()` proves the match cache is current and a length mismatch
/// means only the new tail needs checking.
#[derive(Default)]
struct TopicState {
    /// How many rules (a prefix of the rule list) `matched` was computed
    /// against.
    checked: usize,
    /// Indices of rules whose filter matches this topic.
    matched: Vec<u32>,
    /// Per-rule instances, indexed by rule index; `None` until the rule
    /// first evaluates this topic.
    slots: Vec<Option<Instance>>,
}

impl TopicState {
    /// Bring the match cache up to date with an append-only rule list.
    fn refresh(&mut self, topic: &str, rules: &[Arc<AlertRule>]) {
        for (idx, rule) in rules.iter().enumerate().skip(self.checked) {
            if filter_matches(&rule.filter, topic) {
                self.matched.push(idx as u32);
            }
        }
        self.checked = rules.len();
    }

    /// The instance slot for rule `idx`, growing the table on demand.
    fn slot(&mut self, idx: usize) -> &mut Option<Instance> {
        if self.slots.len() <= idx {
            self.slots.resize_with(idx + 1, || None);
        }
        &mut self.slots[idx]
    }
}

/// Min/max of a batch in four independent accumulator pairs (breaking the
/// `minsd`/`maxsd` latency chain); any NaN poisons the result to
/// `(-inf, +inf)` so NaN readings always take the exact per-reading scan.
fn batch_envelope(readings: &[Reading]) -> (f64, f64) {
    let mut lo = [f64::INFINITY; 4];
    let mut hi = [f64::NEG_INFINITY; 4];
    let mut nan = false;
    let mut chunks = readings.chunks_exact(4);
    for c in &mut chunks {
        for k in 0..4 {
            let v = c[k].value;
            nan |= v.is_nan();
            lo[k] = lo[k].min(v);
            hi[k] = hi[k].max(v);
        }
    }
    for r in chunks.remainder() {
        nan |= r.value.is_nan();
        lo[0] = lo[0].min(r.value);
        hi[0] = hi[0].max(r.value);
    }
    if nan {
        return (f64::NEG_INFINITY, f64::INFINITY);
    }
    (lo.into_iter().fold(f64::INFINITY, f64::min), hi.into_iter().fold(f64::NEG_INFINITY, f64::max))
}

/// The engine: rules + per-instance state machines + notification
/// counters.  One per Collect Agent / SensorDb, shared by the live
/// observer hook, the periodic ticker and the REST surfaces.
pub struct AlertEngine {
    /// Append-only: [`TopicState`] match caches key on the list length.
    rules: RwLock<Vec<Arc<AlertRule>>>,
    /// `topic → per-topic state` — one allocation-free lookup per ingest
    /// batch, with the rule-match list cached inside.
    instances: Mutex<BTreeMap<String, TopicState>>,
    journal: RwLock<Option<Arc<EventJournal>>>,
    notifications: AtomicU64,
    transitions: AtomicU64,
}

impl Default for AlertEngine {
    fn default() -> Self {
        AlertEngine {
            rules: RwLock::new(Vec::new()),
            instances: Mutex::new(BTreeMap::new()),
            journal: RwLock::new(None),
            notifications: AtomicU64::new(0),
            transitions: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for AlertEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let instances: usize =
            self.instances.lock().values().map(|t| t.slots.iter().flatten().count()).sum();
        f.debug_struct("AlertEngine")
            .field("rules", &self.rules.read().len())
            .field("instances", &instances)
            .field("notifications", &self.notifications())
            .finish()
    }
}

impl AlertEngine {
    /// An empty engine.
    pub fn new() -> AlertEngine {
        AlertEngine::default()
    }

    /// An engine pre-loaded with `rules`.
    pub fn with_rules(rules: Vec<AlertRule>) -> AlertEngine {
        let engine = AlertEngine::new();
        for rule in rules {
            engine.add_rule(rule);
        }
        engine
    }

    /// Record alert transitions into `journal` (idempotent; the Collect
    /// Agent and [`SensorDb::set_alert_engine`] wire the cluster's journal
    /// here).  Also journals a config-change event per call.
    pub fn set_journal(&self, journal: Arc<EventJournal>) {
        // read the rule count before taking the journal slot: acquiring
        // `rules` under `journal` inverts the `observe_batch` → `note`
        // order (rules → instances → journal) and closes a lock cycle
        let rule_count = self.rules.read().len();
        let mut slot = self.journal.write();
        if slot.as_ref().is_some_and(|j| Arc::ptr_eq(j, &journal)) {
            return;
        }
        journal.record(
            EventKind::ConfigChange,
            Severity::Info,
            "alerts",
            format!("alert engine attached with {rule_count} rules"),
        );
        *slot = Some(journal);
    }

    /// Add one rule.
    pub fn add_rule(&self, rule: AlertRule) {
        self.rules.write().push(Arc::new(rule));
    }

    /// The loaded rules.
    pub fn rules(&self) -> Vec<Arc<AlertRule>> {
        self.rules.read().clone()
    }

    /// Total state-machine transitions taken (resets included).
    pub fn transitions(&self) -> u64 {
        self.transitions.load(Ordering::Relaxed)
    }

    /// Notifications sent (fire + re-notify + resolve).
    pub fn notifications(&self) -> u64 {
        self.notifications.load(Ordering::Relaxed)
    }

    /// Number of instances currently pending or firing.
    pub fn active_count(&self) -> u64 {
        self.instances
            .lock()
            .values()
            .flat_map(|t| t.slots.iter().flatten())
            .filter(|i| matches!(i.sm.state(), AlertState::Pending | AlertState::Firing))
            .count() as u64
    }

    /// Evaluate one live reading against every matching stream rule.
    /// Query rules only refresh their staleness clock here.
    pub fn observe(&self, topic: &str, ts: i64, value: f64) {
        self.observe_batch(topic, &[Reading::new(ts, value)]);
    }

    /// Evaluate a batch of readings from one topic, in timestamp order,
    /// against every matching rule — the Collect Agent's ingest path calls
    /// this once per publish.  The per-batch cost is one lock, one map
    /// lookup (the topic's matched-rule list is cached in its per-topic
    /// state, so filters are not re-walked) and one shared
    /// min/max envelope pass; threshold/absence rules in a steady state
    /// use the envelope to skip the per-reading scan entirely, so the
    /// common case (healthy sensor, no alert) costs two float compares
    /// per reading regardless of how many threshold rules match.  That is
    /// what keeps on-stream alerting inside the ingest overhead budget
    /// (`dcdb-bench --bin alerts`); per-reading statistical detectors
    /// (`zscore`, `rate_above`) do real arithmetic per reading on their
    /// matched topics by design.
    pub fn observe_batch(&self, topic: &str, readings: &[Reading]) {
        let Some(last) = readings.last() else { return };
        let rules = self.rules.read();
        if rules.is_empty() {
            return;
        }
        let mut instances = self.instances.lock();
        if !instances.contains_key(topic) {
            instances.insert(topic.to_string(), TopicState::default());
        }
        let tstate = instances.get_mut(topic).expect("just ensured");
        tstate.refresh(topic, &rules);
        if tstate.matched.is_empty() {
            // negative result is cached too: unmatched topics cost one
            // map lookup per batch, no filter walks
            return;
        }
        let mut envelope: Option<(f64, f64)> = None;
        let TopicState { matched, slots, .. } = &mut *tstate;
        for &idx32 in matched.iter() {
            let idx = idx32 as usize;
            let rule = &rules[idx];
            if slots.len() <= idx {
                slots.resize_with(idx + 1, || None);
            }
            let inst = slots[idx].get_or_insert_with(Instance::new);
            inst.last_seen = last.ts;
            inst.last_value = last.value;
            if !matches!(rule.eval, EvalMode::Stream) {
                continue;
            }
            // one shared min/max pass over the batch, reused by every rule
            let (lo, hi) = *envelope.get_or_insert_with(|| batch_envelope(readings));
            let skip = match (&rule.condition, inst.sm.state()) {
                // nothing crosses the bound upward: every step is a no-op
                (AlertCondition::Above(t), AlertState::Inactive) => hi <= *t,
                // everything stays above while firing: no resolve, and no
                // renotify timer to expire
                (AlertCondition::Above(t), AlertState::Firing) => rule.renotify_ns == 0 && lo > *t,
                (AlertCondition::Below(t), AlertState::Inactive) => lo >= *t,
                (AlertCondition::Below(t), AlertState::Firing) => rule.renotify_ns == 0 && hi < *t,
                // a reading arrived, so absence stays inactive
                (AlertCondition::Absent { .. }, AlertState::Inactive) => true,
                _ => false,
            };
            if skip {
                continue;
            }
            for r in readings {
                let active = evaluate_stream(&rule.condition, inst, r.ts, r.value);
                if let Some(t) = inst.sm.step(r.ts, active, rule.for_ns, rule.renotify_ns) {
                    self.note(inst, rule, topic, r.ts, r.value, t);
                }
            }
        }
    }

    /// One periodic evaluation sweep at `now_ns`: staleness (absence)
    /// checks for stream rules, and one [`SensorDb::execute`] per
    /// query-based rule when `db` is given.
    pub fn tick(&self, now_ns: i64, db: Option<&Arc<SensorDb>>) {
        let rules = self.rules.read().clone();
        for (idx, rule) in rules.iter().enumerate() {
            match rule.eval {
                EvalMode::Query { window_ns, agg } => {
                    let Some(db) = db else { continue };
                    let req = QueryRequest::new(&rule.filter)
                        .range(TimeRange::new(now_ns.saturating_sub(window_ns), now_ns))
                        .aggregate(agg, window_ns)
                        .lenient_units();
                    let Ok(resp) = db.execute(&req) else { continue };
                    let series = resp.into_single();
                    let Some(last) = series.readings.last().copied() else { continue };
                    let mut instances = self.instances.lock();
                    let inst = instances
                        .entry(rule.filter.clone())
                        .or_default()
                        .slot(idx)
                        .get_or_insert_with(Instance::new);
                    inst.last_seen = now_ns;
                    inst.last_value = last.value;
                    let active = evaluate_stream(&rule.condition, inst, now_ns, last.value);
                    if let Some(t) = inst.sm.step(now_ns, active, rule.for_ns, rule.renotify_ns) {
                        self.note(inst, rule, &rule.filter.clone(), now_ns, last.value, t);
                    }
                }
                EvalMode::Stream => {
                    let AlertCondition::Absent { timeout_ns } = rule.condition else {
                        continue;
                    };
                    let mut instances = self.instances.lock();
                    // collect transitions first: note() needs the topic, and
                    // the iteration borrows the map
                    let mut taken: Vec<(String, i64, f64, Transition)> = Vec::new();
                    for (topic, tstate) in instances.iter_mut() {
                        let Some(inst) = tstate.slots.get_mut(idx).and_then(Option::as_mut) else {
                            continue;
                        };
                        let active = now_ns.saturating_sub(inst.last_seen) >= timeout_ns;
                        if let Some(t) = inst.sm.step(now_ns, active, rule.for_ns, rule.renotify_ns)
                        {
                            taken.push((topic.clone(), now_ns, inst.last_value, t));
                        }
                    }
                    for (topic, ts, value, t) in taken {
                        let inst = instances
                            .get_mut(&topic)
                            .and_then(|t| t.slots[idx].as_mut())
                            .expect("instance just visited");
                        self.note(inst, rule, &topic, ts, value, t);
                    }
                }
            }
        }
    }

    /// Record a transition: counters, instance bookkeeping, journal.
    fn note(
        &self,
        inst: &mut Instance,
        rule: &AlertRule,
        topic: &str,
        ts: i64,
        value: f64,
        transition: Transition,
    ) {
        self.transitions.fetch_add(1, Ordering::Relaxed);
        if transition != Transition::Renotify {
            inst.since_ns = ts;
        }
        let verb = match transition {
            Transition::Pending => "pending",
            Transition::Firing => "firing",
            Transition::Renotify => "still firing",
            Transition::Resolved => "resolved",
            Transition::Reset => {
                inst.message.clear();
                return; // silent: nothing fired, nothing to journal
            }
        };
        if matches!(transition, Transition::Firing | Transition::Renotify | Transition::Resolved) {
            inst.notifications += 1;
            self.notifications.fetch_add(1, Ordering::Relaxed);
        }
        inst.message = format!("{topic}: {verb} ({}; value {value})", rule.condition.describe());
        let severity = match transition {
            Transition::Resolved => Severity::Info,
            _ => Severity::Warning,
        };
        if let Some(journal) = self.journal.read().as_ref() {
            journal.record_at(ts, EventKind::AlertTransition, severity, &rule.name, &inst.message);
        }
    }

    /// Status of every known alert instance, ordered by rule then topic.
    pub fn alerts(&self) -> Vec<AlertStatus> {
        let rules = self.rules.read();
        let instances = self.instances.lock();
        let mut out: Vec<(usize, AlertStatus)> = Vec::new();
        for (topic, tstate) in instances.iter() {
            for (idx, slot) in tstate.slots.iter().enumerate() {
                let Some(inst) = slot.as_ref() else { continue };
                out.push((
                    idx,
                    AlertStatus {
                        rule: rules.get(idx).map(|r| r.name.clone()).unwrap_or_default(),
                        topic: topic.clone(),
                        state: inst.sm.state(),
                        since_ns: inst.since_ns,
                        value: inst.last_value,
                        message: inst.message.clone(),
                        notifications: inst.notifications,
                    },
                ));
            }
        }
        out.sort_by(|a, b| (a.0, &a.1.topic).cmp(&(b.0, &b.1.topic)));
        out.into_iter().map(|(_, s)| s).collect()
    }

    /// The Prometheus `ALERTS` exposition block: one
    /// `ALERTS{alertname=...,state=...,topic=...} 1` sample per pending or
    /// firing instance (the convention Prometheus itself uses for alert
    /// state).  Empty when nothing is active.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for a in self.alerts() {
            if !matches!(a.state, AlertState::Pending | AlertState::Firing) {
                continue;
            }
            if out.is_empty() {
                out.push_str("# TYPE ALERTS gauge\n");
            }
            let _ = writeln!(
                out,
                "ALERTS{{alertname=\"{}\",state=\"{}\",topic=\"{}\"}} 1",
                a.rule,
                a.state.as_str(),
                a.topic
            );
        }
        out
    }

    /// Join the engine's counters to a metrics registry as scrape-time
    /// callbacks (idempotent; callbacks capture only the engine `Arc`, and
    /// the engine never holds the registry, so no cycle forms).
    pub fn register_metrics(self: &Arc<Self>, reg: &dcdb_obs::Registry) {
        let e = Arc::clone(self);
        reg.func("dcdb_alerts_notifications_total", dcdb_obs::Kind::Counter, move || {
            e.notifications()
        });
        let e = Arc::clone(self);
        reg.func("dcdb_alerts_transitions_total", dcdb_obs::Kind::Counter, move || e.transitions());
        let e = Arc::clone(self);
        reg.func("dcdb_alerts_active", dcdb_obs::Kind::Gauge, move || e.active_count());
        let e = Arc::clone(self);
        reg.func("dcdb_alerts_rules", dcdb_obs::Kind::Gauge, move || e.rules.read().len() as u64);
    }
}

/// Evaluate a value condition against one instance's running state.
/// Absence conditions are never active here — a reading just arrived.
/// Inlined into the per-reading batch loop — keep it branch-cheap.
#[inline]
fn evaluate_stream(cond: &AlertCondition, inst: &mut Instance, ts: i64, value: f64) -> bool {
    match cond {
        AlertCondition::Above(t) => value > *t,
        AlertCondition::Below(t) => value < *t,
        AlertCondition::RateAbove(t) => {
            let prev = inst.prev.replace((ts, value));
            match prev {
                Some((pts, pv)) if ts > pts => (value - pv) / ((ts - pts) as f64 / 1e9) > *t,
                _ => false,
            }
        }
        AlertCondition::ZScore { sigmas, min_samples } => {
            let mut active = false;
            if inst.moments.count() >= *min_samples {
                let var = inst.moments.variance();
                if var > 0.0 {
                    // |z| > sigmas without the per-reading sqrt
                    let dev = value - inst.moments.mean();
                    active = dev * dev > sigmas * sigmas * var;
                }
            }
            // anomalous samples are folded in too: the detector adapts,
            // matching the analytics ZScoreAnomaly operator
            inst.moments.push(value);
            active
        }
        AlertCondition::Absent { .. } => false,
    }
}

/// Parse a rules config (the `--alert-rules <file>` format): INI-style
/// sections, one per rule.
///
/// ```text
/// # power-band guard (the paper's §1 motivating use case)
/// [high_power]
/// filter = /sys/+/power
/// condition = above 300
/// for = 10s
/// renotify = 1m
///
/// [stale_sensor]
/// filter = /sys/#
/// condition = absent 30s
///
/// [hot_rack]
/// filter = /sys/rack0
/// condition = above 250
/// query = avg 60s
/// ```
///
/// Conditions: `above <v>`, `below <v>`, `rate_above <v>`,
/// `zscore <sigmas> <min_samples>`, `absent <duration>`.  Durations take
/// `ns`/`us`/`ms`/`s`/`m`/`h` suffixes (bare numbers are nanoseconds).
/// `query = <agg> <window>` turns the rule query-based (plain
/// topic/prefix filters only).
///
/// # Errors
/// Returns a message naming the offending line or section.
pub fn parse_rules(text: &str) -> Result<Vec<AlertRule>, String> {
    let mut rules: Vec<AlertRule> = Vec::new();
    let mut current: Option<AlertRule> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with(';') {
            continue;
        }
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            if let Some(done) = current.take() {
                finish_rule(done, &mut rules)?;
            }
            let name = name.trim();
            if name.is_empty() {
                return Err(err("empty rule name".into()));
            }
            current = Some(AlertRule::new(name, "", AlertCondition::Above(f64::INFINITY)));
            continue;
        }
        let Some(rule) = current.as_mut() else {
            return Err(err("key outside a [rule] section".into()));
        };
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(format!("expected key = value, got {line:?}")));
        };
        let (key, value) = (key.trim(), value.trim());
        match key {
            "filter" => rule.filter = value.to_string(),
            "condition" => rule.condition = parse_condition(value).map_err(err)?,
            "for" => rule.for_ns = parse_duration_ns(value).map_err(err)?,
            "renotify" => rule.renotify_ns = parse_duration_ns(value).map_err(err)?,
            "query" => {
                let (agg, window) = value
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| err(format!("query wants `<agg> <window>`, got {value:?}")))?;
                let agg = AggFn::parse(agg.trim())
                    .ok_or_else(|| err(format!("unknown aggregation {agg:?}")))?;
                let window_ns = parse_duration_ns(window.trim()).map_err(err)?;
                if window_ns <= 0 {
                    return Err(format!("line {}: query window must be positive", lineno + 1));
                }
                rule.eval = EvalMode::Query { window_ns, agg };
            }
            other => return Err(err(format!("unknown key {other:?}"))),
        }
    }
    if let Some(done) = current.take() {
        finish_rule(done, &mut rules)?;
    }
    Ok(rules)
}

/// Validate one parsed rule and push it.
fn finish_rule(rule: AlertRule, rules: &mut Vec<AlertRule>) -> Result<(), String> {
    let name = &rule.name;
    if rule.filter.is_empty() {
        return Err(format!("rule {name}: missing filter"));
    }
    if rule.condition == AlertCondition::Above(f64::INFINITY) {
        return Err(format!("rule {name}: missing condition"));
    }
    if matches!(rule.eval, EvalMode::Query { .. }) {
        if rule.filter.contains('+') || rule.filter.contains('#') {
            return Err(format!(
                "rule {name}: query rules take a plain topic/prefix, not a wildcard filter"
            ));
        }
        if matches!(rule.condition, AlertCondition::Absent { .. }) {
            return Err(format!(
                "rule {name}: absence detection is stream-evaluated; drop the query key"
            ));
        }
    }
    rules.push(rule);
    Ok(())
}

fn parse_condition(s: &str) -> Result<AlertCondition, String> {
    let mut parts = s.split_whitespace();
    let kind = parts.next().ok_or_else(|| "empty condition".to_string())?;
    let mut num = |what: &str| -> Result<f64, String> {
        parts
            .next()
            .ok_or_else(|| format!("condition {kind} wants {what}"))?
            .parse::<f64>()
            .map_err(|e| format!("condition {kind}: {e}"))
    };
    let cond = match kind {
        "above" => AlertCondition::Above(num("a bound")?),
        "below" => AlertCondition::Below(num("a bound")?),
        "rate_above" => AlertCondition::RateAbove(num("a per-second bound")?),
        "zscore" => {
            let sigmas = num("sigmas")?;
            let min_samples = num("min samples")? as u64;
            if sigmas <= 0.0 || min_samples < 2 {
                return Err("zscore wants sigmas > 0 and min_samples >= 2".into());
            }
            AlertCondition::ZScore { sigmas, min_samples }
        }
        "absent" => {
            let d = parts.next().ok_or_else(|| "absent wants a duration".to_string())?;
            AlertCondition::Absent { timeout_ns: parse_duration_ns(d)? }
        }
        other => return Err(format!("unknown condition {other:?}")),
    };
    if parts.next().is_some() {
        return Err(format!("trailing tokens after condition {kind:?}"));
    }
    Ok(cond)
}

/// Parse `10s` / `250ms` / `5m` / `1h` / `1500` (bare = ns) into ns — the
/// query layer's duration grammar, with an error message for configs.
pub fn parse_duration_ns(s: &str) -> Result<i64, String> {
    dcdb_query::parse_duration_ns(s).ok_or_else(|| format!("bad duration {s:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: i64 = 1_000_000_000;

    #[test]
    fn state_machine_honours_for_duration() {
        let mut sm = StateMachine::new();
        assert_eq!(sm.step(0, true, 5 * S, 0), Some(Transition::Pending));
        assert_eq!(sm.state(), AlertState::Pending);
        assert_eq!(sm.step(3 * S, true, 5 * S, 0), None, "for-duration not held yet");
        assert_eq!(sm.step(5 * S, true, 5 * S, 0), Some(Transition::Firing));
        assert_eq!(sm.state(), AlertState::Firing);
        assert_eq!(sm.step(6 * S, false, 5 * S, 0), Some(Transition::Resolved));
        assert_eq!(sm.state(), AlertState::Resolved);
        assert_eq!(sm.step(7 * S, false, 5 * S, 0), Some(Transition::Reset));
        assert_eq!(sm.state(), AlertState::Inactive);
    }

    #[test]
    fn state_machine_pending_clears_without_firing() {
        let mut sm = StateMachine::new();
        sm.step(0, true, 5 * S, 0);
        assert_eq!(sm.step(S, false, 5 * S, 0), Some(Transition::Reset));
        assert_eq!(sm.state(), AlertState::Inactive);
    }

    #[test]
    fn state_machine_renotifies_on_interval() {
        let mut sm = StateMachine::new();
        assert_eq!(sm.step(0, true, 0, 10 * S), Some(Transition::Firing));
        assert_eq!(sm.step(5 * S, true, 0, 10 * S), None);
        assert_eq!(sm.step(10 * S, true, 0, 10 * S), Some(Transition::Renotify));
        assert_eq!(sm.step(15 * S, true, 0, 10 * S), None);
        assert_eq!(sm.step(20 * S, true, 0, 10 * S), Some(Transition::Renotify));
    }

    #[test]
    fn engine_fires_and_resolves_on_stream() {
        let engine = AlertEngine::new();
        engine.add_rule(
            AlertRule::new("hot", "/sys/+/power", AlertCondition::Above(100.0)).for_duration(2 * S),
        );
        engine.observe("/sys/n0/power", 0, 150.0); // pending
        engine.observe("/sys/n0/power", S, 150.0); // still pending
        let a = &engine.alerts()[0];
        assert_eq!(a.state, AlertState::Pending);
        engine.observe("/sys/n0/power", 2 * S, 150.0); // fires
        let a = &engine.alerts()[0];
        assert_eq!(a.state, AlertState::Firing);
        assert_eq!(a.rule, "hot");
        assert_eq!(a.topic, "/sys/n0/power");
        assert_eq!(engine.active_count(), 1);
        let prom = engine.render_prometheus();
        assert!(
            prom.contains("ALERTS{alertname=\"hot\",state=\"firing\",topic=\"/sys/n0/power\"} 1"),
            "{prom}"
        );
        engine.observe("/sys/n0/power", 3 * S, 50.0); // resolves
        assert_eq!(engine.alerts()[0].state, AlertState::Resolved);
        assert!(engine.render_prometheus().is_empty());
        assert_eq!(engine.notifications(), 2); // fire + resolve
                                               // unmatched topics never create instances
        engine.observe("/other/temp", 0, 1_000.0);
        assert_eq!(engine.alerts().len(), 1);
    }

    #[test]
    fn engine_journals_transitions() {
        let journal = Arc::new(EventJournal::new(16));
        let engine = AlertEngine::new();
        engine.set_journal(Arc::clone(&journal));
        engine.add_rule(AlertRule::new("hot", "/p", AlertCondition::Above(1.0)));
        engine.observe("/p", 0, 2.0);
        engine.observe("/p", 1, 0.0);
        let events: Vec<_> =
            journal.since(0).into_iter().filter(|e| e.kind == EventKind::AlertTransition).collect();
        assert_eq!(events.len(), 2, "{events:?}");
        assert_eq!(events[0].subject, "hot");
        assert!(events[0].message.contains("firing"));
        assert_eq!(events[0].severity, Severity::Warning);
        assert!(events[1].message.contains("resolved"));
        assert_eq!(events[1].severity, Severity::Info);
        // attaching the same journal again does not re-journal
        engine.set_journal(Arc::clone(&journal));
        assert_eq!(
            journal.since(0).iter().filter(|e| e.kind == EventKind::ConfigChange).count(),
            1
        );
    }

    #[test]
    fn absence_detection_fires_on_tick_and_resolves_on_data() {
        let engine = AlertEngine::new();
        engine.add_rule(AlertRule::new(
            "stale",
            "/sys/#",
            AlertCondition::Absent { timeout_ns: 10 * S },
        ));
        engine.observe("/sys/n0/power", 0, 1.0);
        engine.tick(5 * S, None);
        assert_eq!(engine.alerts()[0].state, AlertState::Inactive);
        engine.tick(10 * S, None);
        assert_eq!(engine.alerts()[0].state, AlertState::Firing);
        // fresh data clears the absence on the next stream evaluation
        engine.observe("/sys/n0/power", 11 * S, 1.0);
        assert_eq!(engine.alerts()[0].state, AlertState::Resolved);
    }

    #[test]
    fn zscore_condition_flags_outliers() {
        let engine = AlertEngine::new();
        engine.add_rule(AlertRule::new(
            "anomaly",
            "/t/#",
            AlertCondition::ZScore { sigmas: 4.0, min_samples: 10 },
        ));
        for i in 0..50 {
            engine.observe("/t/temp", i, 100.0 + (i % 5) as f64);
        }
        assert_eq!(engine.alerts()[0].state, AlertState::Inactive, "no false positives");
        engine.observe("/t/temp", 50, 500.0);
        assert_eq!(engine.alerts()[0].state, AlertState::Firing);
    }

    #[test]
    fn rate_condition_needs_two_samples() {
        let engine = AlertEngine::new();
        engine.add_rule(AlertRule::new("spike", "/c/#", AlertCondition::RateAbove(100.0)));
        engine.observe("/c/energy", 0, 0.0);
        assert_eq!(engine.alerts()[0].state, AlertState::Inactive);
        engine.observe("/c/energy", S, 500.0); // 500/s
        assert_eq!(engine.alerts()[0].state, AlertState::Firing);
        engine.observe("/c/energy", 2 * S, 510.0); // 10/s
        assert_eq!(engine.alerts()[0].state, AlertState::Resolved);
    }

    #[test]
    fn query_rules_tick_against_the_db() {
        let db = SensorDb::in_memory();
        for ts in 0..60i64 {
            db.insert("/sys/rack0/n0/power", ts * S, 200.0).unwrap();
            db.insert("/sys/rack0/n1/power", ts * S, 220.0).unwrap();
        }
        let engine = AlertEngine::new();
        engine.add_rule(
            AlertRule::new("hot_rack", "/sys/rack0", AlertCondition::Above(205.0))
                .query_eval(AggFn::Avg, 60 * S),
        );
        engine.tick(60 * S, Some(&db));
        let a = &engine.alerts()[0];
        assert_eq!(a.state, AlertState::Firing, "{a:?}");
        assert!((a.value - 210.0).abs() < 1e-9);
        // querying needs the db; without one the rule is simply skipped
        engine.tick(120 * S, None);
        assert_eq!(engine.alerts()[0].state, AlertState::Firing);
    }

    #[test]
    fn parse_rules_round_trip() {
        let text = "\
# comment
[high_power]
filter = /sys/+/power
condition = above 300
for = 10s
renotify = 1m

[stale]
filter = /sys/#
condition = absent 30s

[hot_rack]
filter = /sys/rack0
condition = above 250
query = avg 60s
";
        let rules = parse_rules(text).unwrap();
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[0].name, "high_power");
        assert_eq!(rules[0].condition, AlertCondition::Above(300.0));
        assert_eq!(rules[0].for_ns, 10 * S);
        assert_eq!(rules[0].renotify_ns, 60 * S);
        assert_eq!(rules[1].condition, AlertCondition::Absent { timeout_ns: 30 * S });
        assert_eq!(rules[2].eval, EvalMode::Query { window_ns: 60 * S, agg: AggFn::Avg });
    }

    #[test]
    fn parse_rules_rejects_malformed_input() {
        assert!(parse_rules("filter = /x").unwrap_err().contains("outside"));
        assert!(parse_rules("[r]\ncondition = above 1").unwrap_err().contains("missing filter"));
        assert!(parse_rules("[r]\nfilter = /x").unwrap_err().contains("missing condition"));
        assert!(parse_rules("[r]\nfilter = /x\ncondition = sideways 1")
            .unwrap_err()
            .contains("unknown condition"));
        assert!(parse_rules("[r]\nfilter = /x\ncondition = above 1\nfor = 10 parsecs")
            .unwrap_err()
            .contains("bad duration"));
        // wildcard filters cannot be queried
        let text = "[r]\nfilter = /sys/#\ncondition = above 1\nquery = avg 10s";
        assert!(parse_rules(text).unwrap_err().contains("plain topic"));
    }

    #[test]
    fn durations_parse_with_suffixes() {
        assert_eq!(parse_duration_ns("1500").unwrap(), 1_500);
        assert_eq!(parse_duration_ns("250ms").unwrap(), 250_000_000);
        assert_eq!(parse_duration_ns("10s").unwrap(), 10 * S);
        assert_eq!(parse_duration_ns("90s").unwrap(), 90 * S);
        assert!(parse_duration_ns("10 fortnights").is_err());
    }
}
