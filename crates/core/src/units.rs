//! Sensor units and automatic conversion.
//!
//! "The units of the underlying physical sensors are converted
//! automatically" when evaluating virtual sensors (paper §3.2).  Units carry
//! a *dimension* and a scale to the dimension's base unit; conversion is
//! legal only within a dimension (temperatures additionally carry an
//! offset).

/// Physical dimension of a unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dimension {
    /// Dimensionless counts/ratios.
    None,
    /// Power (base: W).
    Power,
    /// Energy (base: J).
    Energy,
    /// Temperature (base: °C).
    Temperature,
    /// Data size (base: byte).
    Data,
    /// Time (base: s).
    Time,
    /// Volume flow (base: m³/h).
    Flow,
    /// Event rate (base: Hz = 1/s).
    Frequency,
    /// Data rate (base: B/s).
    Bandwidth,
}

/// A sensor unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Unit {
    /// Canonical name.
    pub name: &'static str,
    /// Dimension.
    pub dimension: Dimension,
    /// Multiply by this to reach the base unit.
    pub to_base: f64,
    /// Additive offset applied *after* scaling (temperatures).
    pub offset: f64,
}

macro_rules! unit {
    ($ident:ident, $name:expr, $dim:expr, $scale:expr) => {
        /// The unit constant.
        pub const $ident: Unit =
            Unit { name: $name, dimension: $dim, to_base: $scale, offset: 0.0 };
    };
}

impl Unit {
    unit!(NONE, "", Dimension::None, 1.0);
    unit!(WATT, "W", Dimension::Power, 1.0);
    unit!(MILLIWATT, "mW", Dimension::Power, 1e-3);
    unit!(KILOWATT, "kW", Dimension::Power, 1e3);
    unit!(MEGAWATT, "MW", Dimension::Power, 1e6);
    unit!(JOULE, "J", Dimension::Energy, 1.0);
    unit!(KILOJOULE, "kJ", Dimension::Energy, 1e3);
    unit!(WATTHOUR, "Wh", Dimension::Energy, 3600.0);
    unit!(KILOWATTHOUR, "kWh", Dimension::Energy, 3.6e6);
    unit!(CELSIUS, "C", Dimension::Temperature, 1.0);
    unit!(MILLICELSIUS, "mC", Dimension::Temperature, 1e-3);
    unit!(BYTE, "B", Dimension::Data, 1.0);
    unit!(KILOBYTE, "KB", Dimension::Data, 1e3);
    unit!(MEGABYTE, "MB", Dimension::Data, 1e6);
    unit!(GIGABYTE, "GB", Dimension::Data, 1e9);
    unit!(SECOND, "s", Dimension::Time, 1.0);
    unit!(MILLISECOND, "ms", Dimension::Time, 1e-3);
    unit!(MICROSECOND, "us", Dimension::Time, 1e-6);
    unit!(NANOSECOND, "ns", Dimension::Time, 1e-9);
    unit!(M3_PER_H, "m3/h", Dimension::Flow, 1.0);
    unit!(HERTZ, "Hz", Dimension::Frequency, 1.0);
    unit!(BYTES_PER_S, "B/s", Dimension::Bandwidth, 1.0);

    /// Fahrenheit needs an offset: °C = (°F − 32) · 5/9.
    pub const FAHRENHEIT: Unit = Unit {
        name: "F",
        dimension: Dimension::Temperature,
        to_base: 5.0 / 9.0,
        offset: -32.0 * 5.0 / 9.0,
    };

    /// Look up a unit by its configuration-file name.
    pub fn parse(s: &str) -> Option<Unit> {
        Some(match s {
            "" | "none" => Unit::NONE,
            "W" => Unit::WATT,
            "mW" => Unit::MILLIWATT,
            "kW" => Unit::KILOWATT,
            "MW" => Unit::MEGAWATT,
            "J" => Unit::JOULE,
            "kJ" => Unit::KILOJOULE,
            "Wh" => Unit::WATTHOUR,
            "kWh" => Unit::KILOWATTHOUR,
            "C" | "degC" | "celsius" => Unit::CELSIUS,
            "mC" => Unit::MILLICELSIUS,
            "F" | "degF" => Unit::FAHRENHEIT,
            "B" => Unit::BYTE,
            "KB" => Unit::KILOBYTE,
            "MB" => Unit::MEGABYTE,
            "GB" => Unit::GIGABYTE,
            "s" => Unit::SECOND,
            "ms" => Unit::MILLISECOND,
            "us" => Unit::MICROSECOND,
            "ns" => Unit::NANOSECOND,
            "m3/h" => Unit::M3_PER_H,
            "Hz" => Unit::HERTZ,
            "B/s" => Unit::BYTES_PER_S,
            _ => return None,
        })
    }

    /// The unit of this unit's per-second rate of change, with the factor
    /// that converts raw `value/s` rates into it — what makes
    /// `SensorDb::query_aggregate`'s `rate` operator unit-aware:
    ///
    /// * energy counters (J, kWh, …) rate into **W** (power),
    /// * data counters (B, GB, …) rate into **B/s**,
    /// * time counters (s of CPU time, …) rate into a dimensionless
    ///   utilisation ratio,
    /// * dimensionless counters (instructions, packets) rate into **Hz**,
    /// * anything else keeps its raw per-second value with no unit.
    pub fn rate_unit(&self) -> (f64, Unit) {
        match self.dimension {
            Dimension::Energy => (self.to_base, Unit::WATT),
            Dimension::Data => (self.to_base, Unit::BYTES_PER_S),
            Dimension::Time => (self.to_base, Unit::NONE),
            Dimension::None => (1.0, Unit::HERTZ),
            _ => (1.0, Unit::NONE),
        }
    }

    /// Convert `value` from `self` to `to`.
    ///
    /// Returns `None` when dimensions differ.  Dimensionless units convert
    /// to anything unchanged (raw counters get their meaning from config).
    pub fn convert(&self, value: f64, to: &Unit) -> Option<f64> {
        if self.dimension == Dimension::None || to.dimension == Dimension::None {
            return Some(value);
        }
        if self.dimension != to.dimension {
            return None;
        }
        let base = value * self.to_base + self.offset;
        Some((base - to.offset) / to.to_base)
    }
}

impl Default for Unit {
    fn default() -> Self {
        Unit::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_conversions() {
        assert_eq!(Unit::KILOWATT.convert(1.5, &Unit::WATT), Some(1500.0));
        assert_eq!(Unit::WATT.convert(2500.0, &Unit::KILOWATT), Some(2.5));
        assert_eq!(Unit::MILLIWATT.convert(1e6, &Unit::KILOWATT), Some(1e-3 * 1e6 / 1e3));
    }

    #[test]
    fn energy_conversions() {
        assert_eq!(Unit::KILOWATTHOUR.convert(1.0, &Unit::JOULE), Some(3.6e6));
        let wh = Unit::JOULE.convert(7200.0, &Unit::WATTHOUR).unwrap();
        assert!((wh - 2.0).abs() < 1e-12);
    }

    #[test]
    fn temperature_with_offset() {
        let c = Unit::FAHRENHEIT.convert(212.0, &Unit::CELSIUS).unwrap();
        assert!((c - 100.0).abs() < 1e-9);
        let f = Unit::CELSIUS.convert(0.0, &Unit::FAHRENHEIT).unwrap();
        assert!((f - 32.0).abs() < 1e-9);
        let mc = Unit::MILLICELSIUS.convert(35_500.0, &Unit::CELSIUS).unwrap();
        assert!((mc - 35.5).abs() < 1e-9);
    }

    #[test]
    fn cross_dimension_rejected() {
        assert_eq!(Unit::WATT.convert(1.0, &Unit::JOULE), None);
        assert_eq!(Unit::CELSIUS.convert(1.0, &Unit::BYTE), None);
    }

    #[test]
    fn dimensionless_passthrough() {
        assert_eq!(Unit::NONE.convert(5.0, &Unit::WATT), Some(5.0));
        assert_eq!(Unit::WATT.convert(5.0, &Unit::NONE), Some(5.0));
    }

    #[test]
    fn rate_units() {
        // a joule counter rates into watts 1:1
        assert_eq!(Unit::JOULE.rate_unit(), (1.0, Unit::WATT));
        // a kWh counter rates into watts via its base scale
        let (k, u) = Unit::KILOWATTHOUR.rate_unit();
        assert_eq!(u, Unit::WATT);
        assert!((k - 3.6e6).abs() < 1e-6);
        // data counters rate into B/s, dimensionless ones into Hz
        assert_eq!(Unit::GIGABYTE.rate_unit(), (1e9, Unit::BYTES_PER_S));
        assert_eq!(Unit::NONE.rate_unit(), (1.0, Unit::HERTZ));
        // cpu-seconds rate into a unitless utilisation ratio
        assert_eq!(Unit::SECOND.rate_unit(), (1.0, Unit::NONE));
        // no meaningful rate unit for e.g. power: raw value, no unit
        assert_eq!(Unit::WATT.rate_unit(), (1.0, Unit::NONE));
    }

    #[test]
    fn parse_roundtrip() {
        for name in ["W", "kW", "J", "kWh", "C", "F", "B", "GB", "ms", "m3/h", "Hz", "B/s"] {
            let u = Unit::parse(name).unwrap();
            // F/degF and C aliases normalise; check dimension survives
            assert!(Unit::parse(u.name).is_some());
        }
        assert!(Unit::parse("furlongs").is_none());
        assert_eq!(Unit::parse("").unwrap(), Unit::NONE);
    }
}
