//! Analysis operations of the `dcdbquery` tool (paper §5.2): integrals and
//! derivatives of sensor data, plus downsampling for the Grafana data
//! source.
//!
//! Statistics are computed by `dcdb-query`'s [`Moments`] accumulator — the
//! single windowed-statistics implementation shared with the streaming
//! aggregation engine — so CLI, REST and pushdown paths agree exactly.

use dcdb_query::Moments;
use dcdb_store::reading::Reading;

/// Trapezoidal integral of a series over its span.
///
/// Timestamps are nanoseconds; the result is `value-unit · seconds` (e.g.
/// W → J).  Returns 0 for fewer than two points.
pub fn integral(series: &[Reading]) -> f64 {
    series
        .windows(2)
        .map(|w| {
            let dt_s = (w[1].ts - w[0].ts) as f64 / 1e9;
            0.5 * (w[0].value + w[1].value) * dt_s
        })
        .sum()
}

/// Per-interval derivative: `(v[i+1] − v[i]) / dt_seconds`, stamped at the
/// right edge.  Returns an empty vec for fewer than two points.
pub fn derivative(series: &[Reading]) -> Vec<Reading> {
    series
        .windows(2)
        .filter(|w| w[1].ts > w[0].ts)
        .map(|w| {
            let dt_s = (w[1].ts - w[0].ts) as f64 / 1e9;
            Reading { ts: w[1].ts, value: (w[1].value - w[0].value) / dt_s }
        })
        .collect()
}

/// Summary statistics of a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Number of readings.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

/// Compute [`Stats`] via [`Moments`]; `None` for an empty series.
pub fn stats(series: &[Reading]) -> Option<Stats> {
    if series.is_empty() {
        return None;
    }
    let m = dcdb_query::moments_of(series.iter().copied());
    Some(Stats {
        count: series.len(),
        min: m.min(),
        max: m.max(),
        mean: m.mean(),
        stddev: m.stddev(),
    })
}

/// Downsample to at most `max_points` by averaging fixed-width buckets
/// (Grafana's `maxDataPoints`).  Bucket timestamps are the bucket means.
pub fn downsample(series: &[Reading], max_points: usize) -> Vec<Reading> {
    if max_points == 0 || series.len() <= max_points {
        return series.to_vec();
    }
    let bucket = series.len().div_ceil(max_points);
    series
        .chunks(bucket)
        .map(|chunk| {
            let mut m = Moments::new();
            for r in chunk {
                m.push(r.value);
            }
            Reading {
                ts: (chunk.iter().map(|r| r.ts as i128).sum::<i128>() / chunk.len() as i128) as i64,
                value: m.mean(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(points: &[(i64, f64)]) -> Vec<Reading> {
        points.iter().map(|&(ts, value)| Reading { ts, value }).collect()
    }

    #[test]
    fn integral_of_constant_power() {
        // 100 W for 10 s = 1000 J
        let s = series(&[(0, 100.0), (10_000_000_000, 100.0)]);
        assert!((integral(&s) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn integral_trapezoid() {
        // ramp 0→100 W over 2 s = 100 J
        let s = series(&[(0, 0.0), (2_000_000_000, 100.0)]);
        assert!((integral(&s) - 100.0).abs() < 1e-9);
        assert_eq!(integral(&series(&[(0, 5.0)])), 0.0);
    }

    #[test]
    fn derivative_of_energy_gives_power() {
        // energy counter: 0, 100 J, 300 J at 1 s steps → 100 W then 200 W
        let s = series(&[(0, 0.0), (1_000_000_000, 100.0), (2_000_000_000, 300.0)]);
        let d = derivative(&s);
        assert_eq!(d.len(), 2);
        assert!((d[0].value - 100.0).abs() < 1e-9);
        assert!((d[1].value - 200.0).abs() < 1e-9);
        assert_eq!(d[1].ts, 2_000_000_000);
    }

    #[test]
    fn stats_basics() {
        let s = series(&[(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)]);
        let st = stats(&s).unwrap();
        assert_eq!(st.count, 4);
        assert_eq!(st.min, 1.0);
        assert_eq!(st.max, 4.0);
        assert!((st.mean - 2.5).abs() < 1e-12);
        assert!((st.stddev - (1.25f64).sqrt()).abs() < 1e-12);
        assert!(stats(&[]).is_none());
    }

    #[test]
    fn downsample_preserves_mean() {
        let s: Vec<Reading> = (0..1000).map(|i| Reading { ts: i, value: i as f64 }).collect();
        let d = downsample(&s, 10);
        assert!(d.len() <= 10);
        let full_mean = stats(&s).unwrap().mean;
        let ds_mean = stats(&d).unwrap().mean;
        assert!((full_mean - ds_mean).abs() < 1.0);
        // short series passes through untouched
        assert_eq!(downsample(&s[..5], 10).len(), 5);
        assert_eq!(downsample(&s, 0).len(), 1000);
    }
}
