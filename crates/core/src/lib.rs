//! # dcdb-core — libDCDB
//!
//! The database-independent data-access layer of dcdb-rs (paper §5.1).  All
//! access to Storage Backends goes through this API, so the backing store
//! can be swapped without touching upstream components.  On top of raw
//! queries it implements the paper's analysis features:
//!
//! * [`units`] — sensor units with automatic conversion (virtual sensors
//!   convert operand units transparently, §3.2),
//! * [`interp`] — linear interpolation to align series sampled at different
//!   frequencies (§3.2),
//! * [`ops`] — the `dcdbquery` analysis operations: integrals, derivatives,
//!   downsampling (§5.2); windowed statistics delegate to `dcdb-query`'s
//!   single [`Moments`](dcdb_query::Moments) implementation,
//! * [`api`] — [`api::SensorDb`]: topics + metadata + queries in one handle,
//! * [`request`] — the unified typed query API: [`request::QueryRequest`]
//!   (builder: topic/prefix target, range, windowed or interpolated
//!   aggregation, group-by level, limit/ordering) executed by
//!   [`api::SensorDb::execute`] into a [`request::QueryResponse`] of
//!   group-tagged series; grouped queries evaluate in parallel,
//! * [`vsensor`] — virtual sensors: lazily-evaluated arithmetic expressions
//!   over sensors, with unit conversion, interpolation and write-back
//!   caching of results (§3.2),
//! * [`grafana`] — the hierarchy-aware data-source API backing the Grafana
//!   integration (§5.4, Fig. 3),
//! * [`alerts`] — the declarative alert rule engine: threshold, rate,
//!   z-score and absence conditions over sensor topics, with a full
//!   `inactive → pending → firing → resolved` state machine, evaluated on
//!   the live ingest stream and periodically against [`api::SensorDb`].

pub mod alerts;
pub mod api;
pub mod grafana;
pub mod interp;
pub mod ops;
pub mod request;
pub mod units;
pub mod vsensor;

pub use alerts::{AlertCondition, AlertEngine, AlertRule, AlertState, AlertStatus};
pub use api::{SensorDb, SensorMeta, Series};
pub use request::{
    GroupSeries, QueryError, QueryRequest, QueryResponse, SeriesOrder, TargetMode, UnitMode,
};
pub use units::Unit;
pub use vsensor::{VirtualSensor, VsError};
