//! Linear interpolation and series alignment.
//!
//! Virtual sensors combine operands sampled at different frequencies; DCDB
//! "account\[s\] for different sampling frequencies by linear interpolation"
//! (paper §3.2).  Alignment evaluates every operand on the union of operand
//! timestamps within the queried range.

use dcdb_store::reading::Reading;

/// Linearly interpolate `series` at `ts`.
///
/// Outside the series' span the nearest edge value is held (constant
/// extrapolation); `None` only for an empty series.
pub fn sample_at(series: &[Reading], ts: i64) -> Option<f64> {
    if series.is_empty() {
        return None;
    }
    let first = series.first().expect("non-empty");
    let last = series.last().expect("non-empty");
    if ts <= first.ts {
        return Some(first.value);
    }
    if ts >= last.ts {
        return Some(last.value);
    }
    // binary search for the bracketing pair
    let idx = series.partition_point(|r| r.ts <= ts);
    let right = series[idx];
    let left = series[idx - 1];
    if right.ts == left.ts {
        return Some(left.value);
    }
    let frac = (ts - left.ts) as f64 / (right.ts - left.ts) as f64;
    Some(left.value + frac * (right.value - left.value))
}

/// The sorted union of all timestamps across `series_list`.
pub fn timestamp_union(series_list: &[&[Reading]]) -> Vec<i64> {
    let mut all: Vec<i64> = series_list.iter().flat_map(|s| s.iter().map(|r| r.ts)).collect();
    all.sort_unstable();
    all.dedup();
    all
}

/// Resample `series` onto an explicit timestamp grid.
pub fn resample(series: &[Reading], grid: &[i64]) -> Vec<Reading> {
    grid.iter().filter_map(|&ts| sample_at(series, ts).map(|value| Reading { ts, value })).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(points: &[(i64, f64)]) -> Vec<Reading> {
        points.iter().map(|&(ts, value)| Reading { ts, value }).collect()
    }

    #[test]
    fn interpolates_between_points() {
        let s = series(&[(0, 0.0), (10, 100.0)]);
        assert_eq!(sample_at(&s, 5), Some(50.0));
        assert_eq!(sample_at(&s, 1), Some(10.0));
        assert_eq!(sample_at(&s, 10), Some(100.0));
    }

    #[test]
    fn holds_edges() {
        let s = series(&[(10, 5.0), (20, 6.0)]);
        assert_eq!(sample_at(&s, 0), Some(5.0));
        assert_eq!(sample_at(&s, 100), Some(6.0));
    }

    #[test]
    fn empty_series_is_none() {
        assert_eq!(sample_at(&[], 5), None);
    }

    #[test]
    fn single_point_is_constant() {
        let s = series(&[(10, 7.0)]);
        assert_eq!(sample_at(&s, 0), Some(7.0));
        assert_eq!(sample_at(&s, 10), Some(7.0));
        assert_eq!(sample_at(&s, 20), Some(7.0));
    }

    #[test]
    fn union_merges_and_dedups() {
        let a = series(&[(0, 0.0), (10, 1.0)]);
        let b = series(&[(5, 0.0), (10, 1.0), (15, 2.0)]);
        assert_eq!(timestamp_union(&[&a, &b]), vec![0, 5, 10, 15]);
        assert!(timestamp_union(&[]).is_empty());
    }

    #[test]
    fn resample_follows_grid() {
        let s = series(&[(0, 0.0), (10, 10.0)]);
        let r = resample(&s, &[0, 2, 4, 10, 12]);
        assert_eq!(
            r.iter().map(|x| (x.ts, x.value)).collect::<Vec<_>>(),
            vec![(0, 0.0), (2, 2.0), (4, 4.0), (10, 10.0), (12, 10.0)]
        );
    }
}
