//! The database-independent access API.
//!
//! [`SensorDb`] bundles the storage cluster, the topic registry and sensor
//! metadata (units, scaling factors — maintained via `dcdbconfig` in the
//! paper, §5.2) behind one handle.  Virtual sensors registered on the
//! handle are queried exactly like physical ones (paper §3.2).
//!
//! All querying funnels through **one execution path**:
//! [`SensorDb::execute`] takes a typed [`QueryRequest`] (exact topic,
//! prefix fan-in, windowed or interpolated aggregation, group-by with
//! parallel per-group evaluation) and returns a [`QueryResponse`].  The
//! older `query`/`query_subtree`/`query_aggregate`/`aggregate_subtree`
//! methods survive as thin wrappers that build the equivalent request.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dcdb_obs::{MetricValue, Registry, TraceSpan};
use dcdb_query::{AggFn, SensorGroup};
use dcdb_sid::{SensorId, TopicRegistry};
use dcdb_store::reading::{Reading, TimeRange};
use dcdb_store::StoreCluster;
use parking_lot::RwLock;

use crate::request::{
    GroupSeries, QueryError, QueryRequest, QueryResponse, SeriesOrder, TargetMode, UnitMode,
};
use crate::units::Unit;
use crate::vsensor::{VirtualSensor, VsError};

/// Metadata attached to a sensor (`dcdbconfig sensor` properties).
#[derive(Debug, Clone, Default)]
pub struct SensorMeta {
    /// Unit of the stored values.
    pub unit: Unit,
    /// Multiplied into values on query.
    pub scale: f64,
    /// Free-text description.
    pub description: String,
}

impl SensorMeta {
    /// Metadata with a unit and neutral scaling.
    pub fn with_unit(unit: Unit) -> SensorMeta {
        SensorMeta { unit, scale: 1.0, description: String::new() }
    }
}

/// A queried time series plus its unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// The sensor topic.
    pub topic: String,
    /// Readings in time order.
    pub readings: Vec<Reading>,
    /// Unit of `readings` values.
    pub unit: Unit,
}

/// The libDCDB handle.
pub struct SensorDb {
    store: Arc<StoreCluster>,
    registry: Arc<TopicRegistry>,
    meta: RwLock<HashMap<String, SensorMeta>>,
    virtuals: RwLock<HashMap<String, Arc<VirtualSensor>>>,
    /// Worker-thread cap for parallel query evaluation; `0` = all cores.
    query_threads: AtomicUsize,
    /// Query-path instruments, resolved once from the cluster's registry so
    /// `execute` never takes the registry lock.
    instruments: QueryInstruments,
    /// The alert engine serving `/alerts` and the `ALERTS` exposition, when
    /// one is installed.
    alerts: RwLock<Option<Arc<crate::alerts::AlertEngine>>>,
}

/// Leaf instruments for the query path.  Like `NodeInstruments` these are
/// plain `Arc`s on the underlying atomics — holding them does not hold the
/// registry, so no reference cycle forms through callback instruments.
struct QueryInstruments {
    enabled: Arc<AtomicBool>,
    requests: Arc<dcdb_obs::Counter>,
    plan_ns: Arc<dcdb_obs::Histogram>,
    fold_ns: Arc<dcdb_obs::Histogram>,
    finalize_ns: Arc<dcdb_obs::Histogram>,
    /// The cluster's slow-query ring: when armed, any request over the
    /// threshold leaves its full span tree here.
    slow: Arc<dcdb_obs::SlowQueryLog>,
}

impl QueryInstruments {
    fn from_registry(reg: &Registry) -> QueryInstruments {
        QueryInstruments {
            enabled: reg.enabled_flag(),
            requests: reg.counter("dcdb_query_requests_total"),
            plan_ns: reg.histogram("dcdb_query_stage_ns{stage=\"plan\"}"),
            fold_ns: reg.histogram("dcdb_query_stage_ns{stage=\"fold\"}"),
            finalize_ns: reg.histogram("dcdb_query_stage_ns{stage=\"finalize\"}"),
            slow: reg.slow_queries(),
        }
    }

    fn timing_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }
}

/// Cluster counter values captured before a traced query; the deltas ride
/// on the root span (`blocks_decoded=…`, `cache_hits=…`).
struct CounterBase {
    blocks_decoded: u64,
    cache_hits: u64,
    cache_misses: u64,
}

impl CounterBase {
    fn capture(store: &StoreCluster) -> CounterBase {
        let cache = store.cache_stats();
        CounterBase {
            blocks_decoded: store.blocks_decoded(),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
        }
    }

    fn attach_deltas(&self, span: &mut TraceSpan, store: &StoreCluster) {
        let after = CounterBase::capture(store);
        span.put("blocks_decoded", after.blocks_decoded - self.blocks_decoded);
        span.put("cache_hits", after.cache_hits - self.cache_hits);
        span.put("cache_misses", after.cache_misses - self.cache_misses);
    }
}

impl SensorDb {
    /// Wrap an existing cluster + registry (e.g. the Collect Agent's).
    pub fn new(store: Arc<StoreCluster>, registry: Arc<TopicRegistry>) -> Arc<SensorDb> {
        let instruments = QueryInstruments::from_registry(store.metrics());
        Arc::new(SensorDb {
            store,
            registry,
            meta: RwLock::new(HashMap::new()),
            virtuals: RwLock::new(HashMap::new()),
            query_threads: AtomicUsize::new(0),
            instruments,
            alerts: RwLock::new(None),
        })
    }

    /// A fresh single-node database (tests, examples).
    pub fn in_memory() -> Arc<SensorDb> {
        SensorDb::new(Arc::new(StoreCluster::single()), Arc::new(TopicRegistry::new()))
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<StoreCluster> {
        &self.store
    }

    /// The topic registry.
    pub fn registry(&self) -> &Arc<TopicRegistry> {
        &self.registry
    }

    /// The cluster's metrics registry (scraped by `/metrics`).
    pub fn metrics(&self) -> &Arc<Registry> {
        self.store.metrics()
    }

    /// Install an alert engine on this handle: the engine gets the
    /// cluster's event journal, joins its counters to the metrics registry,
    /// and becomes visible to the REST surfaces (`/alerts`, the `ALERTS`
    /// exposition block).
    pub fn set_alert_engine(&self, engine: Arc<crate::alerts::AlertEngine>) {
        engine.set_journal(self.store.metrics().events());
        engine.register_metrics(self.store.metrics());
        *self.alerts.write() = Some(engine);
    }

    /// The installed alert engine, if any.
    pub fn alert_engine(&self) -> Option<Arc<crate::alerts::AlertEngine>> {
        self.alerts.read().clone()
    }

    /// The cluster's event journal (`GET /events`).
    pub fn events(&self) -> Arc<dcdb_obs::EventJournal> {
        self.store.metrics().events()
    }

    /// The cluster's slow-query log (`GET /debug/slow_queries`).  Arm it
    /// with [`dcdb_obs::SlowQueryLog::set_threshold_ns`]; queries slower
    /// than the threshold leave their full trace-span tree in the ring.
    pub fn slow_queries(&self) -> Arc<dcdb_obs::SlowQueryLog> {
        self.instruments.slow.clone()
    }

    /// Fold the current metrics scrape into synthetic readings under the
    /// reserved `/_dcdb/<node>/<metric>` hierarchy, all stamped `ts` —
    /// the database monitoring itself with its own sensor machinery, so
    /// operators query health history exactly like any other sensor.
    ///
    /// Scalars publish one reading; histograms expand to `_p50`, `_p99`,
    /// `_max` and `_count` sub-sensors.  Baked-in label sets flatten into
    /// the topic (`dcdb_query_stage_ns{stage="plan"}` →
    /// `dcdb_query_stage_ns.stage.plan`).  Returns the number of readings
    /// written.
    pub fn publish_self_metrics(&self, node: &str, ts: i64) -> usize {
        let snap = self.store.metrics().snapshot();
        let mut written = 0;
        let mut put = |metric: &str, value: u64| {
            let topic = format!("/{}/{node}/{metric}", dcdb_sid::RESERVED_PREFIX);
            // resolve_internal: the public resolve rejects the reserved
            // hierarchy precisely so only this path can publish under it
            if let Ok(sid) = self.registry.resolve_internal(&topic) {
                self.store.insert(sid, ts, value as f64);
                written += 1;
            }
        };
        for (name, value) in &snap.samples {
            let metric = sanitize_metric_topic(name);
            match value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => put(&metric, *v),
                MetricValue::Histogram(h) => {
                    put(&format!("{metric}_count"), h.count);
                    if h.count > 0 {
                        put(&format!("{metric}_p50"), h.quantile(0.5));
                        put(&format!("{metric}_p99"), h.quantile(0.99));
                        put(&format!("{metric}_max"), h.max);
                    }
                }
            }
        }
        written
    }

    /// Cap the worker threads windowed queries may use (`--query-threads`):
    /// `1` keeps evaluation on the calling thread, `0` restores the default
    /// of all available cores.  Results are bit-identical for every value.
    pub fn set_query_threads(&self, threads: usize) {
        self.query_threads.store(threads, Ordering::Relaxed);
    }

    /// The configured query worker-thread cap (`0` = all cores).
    pub fn query_threads(&self) -> usize {
        self.query_threads.load(Ordering::Relaxed)
    }

    /// Insert one reading under `topic`.
    ///
    /// # Errors
    /// Fails on invalid topics.
    pub fn insert(&self, topic: &str, ts: i64, value: f64) -> Result<(), dcdb_sid::SidError> {
        let sid = self.registry.resolve(topic)?;
        self.store.insert(sid, ts, value);
        Ok(())
    }

    /// Set sensor metadata (`dcdbconfig sensor set`).
    pub fn set_meta(&self, topic: &str, meta: SensorMeta) {
        self.meta.write().insert(dcdb_sid::topic::normalize(topic), meta);
    }

    /// Get sensor metadata.
    pub fn meta(&self, topic: &str) -> SensorMeta {
        self.meta.read().get(&dcdb_sid::topic::normalize(topic)).cloned().unwrap_or(SensorMeta {
            unit: Unit::NONE,
            scale: 1.0,
            description: String::new(),
        })
    }

    /// Register a virtual sensor under its own topic.
    ///
    /// # Errors
    /// Propagates expression compilation failures.
    pub fn define_virtual(
        self: &Arc<Self>,
        topic: &str,
        expression: &str,
        unit: Unit,
    ) -> Result<(), VsError> {
        let vs = VirtualSensor::compile(topic, expression, unit)?;
        self.virtuals.write().insert(dcdb_sid::topic::normalize(topic), Arc::new(vs));
        Ok(())
    }

    /// Names of registered virtual sensors.
    pub fn virtual_topics(&self) -> Vec<String> {
        let mut v: Vec<String> = self.virtuals.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Query a sensor (physical or virtual) in `[start, end)`.
    ///
    /// Physical sensors apply their metadata scale; virtual sensors are
    /// evaluated lazily over the queried period only (paper §3.2).
    /// Thin wrapper over [`SensorDb::execute`] with an exact-topic request.
    ///
    /// # Errors
    /// Virtual-sensor evaluation errors propagate; unknown physical topics
    /// yield an empty series.
    pub fn query(self: &Arc<Self>, topic: &str, range: TimeRange) -> Result<Series, VsError> {
        let req = QueryRequest::topic(topic).range(range).lenient_units();
        Ok(self.execute(&req).map_err(legacy_err)?.into_single())
    }

    /// Latest reading of a physical sensor.
    pub fn latest(&self, topic: &str) -> Option<Reading> {
        let sid = self.registry.get(&dcdb_sid::topic::normalize(topic))?;
        self.store.latest(sid)
    }

    /// All known physical topics under `prefix` (hierarchical listing).
    pub fn topics_under(&self, prefix: &str) -> Vec<(String, SensorId)> {
        self.registry.sids_under(prefix)
    }

    /// Query every sensor below `prefix` in one call — the holistic
    /// cross-source correlation pattern ("aggregate the power sensors of
    /// individual compute nodes", paper §3.2).  Virtual sensors are not
    /// included (they live outside the physical hierarchy).
    /// Thin wrapper over [`SensorDb::execute`] with a sub-tree request.
    ///
    /// # Errors
    /// Propagates per-sensor query failures.
    pub fn query_subtree(
        self: &Arc<Self>,
        prefix: &str,
        range: TimeRange,
    ) -> Result<Vec<Series>, VsError> {
        let req = QueryRequest::subtree(prefix).range(range).lenient_units();
        Ok(self.execute(&req).map_err(legacy_err)?.into_series())
    }

    /// Windowed aggregation with pushdown: `avg`/`min`/`max`/`sum`/`count`/
    /// `stddev`/`quantile`/`rate` of a sensor — or of *every* sensor under a
    /// prefix (sensor-tree fan-in, "avg power per rack") — over fixed
    /// `window_ns` windows within `range`.
    ///
    /// The heavy lifting happens in `dcdb-query`: compressed SSTable blocks
    /// whose headers do not intersect `range` are never decompressed.
    /// Metadata scales apply per sensor before aggregation; the result unit
    /// is the (first) sensor's unit, mapped through
    /// [`Unit::rate_unit`] for `rate` (J → W, B → B/s, counts → Hz).
    /// Virtual sensor topics are evaluated over `range` first and then
    /// windowed like any other series.
    ///
    /// # Errors
    /// Virtual-sensor evaluation errors propagate; unknown topics yield an
    /// empty series.
    pub fn query_aggregate(
        self: &Arc<Self>,
        topic_or_prefix: &str,
        range: TimeRange,
        window_ns: i64,
        agg: dcdb_query::AggFn,
    ) -> Result<Series, VsError> {
        assert!(window_ns > 0, "window must be positive, got {window_ns}");
        let req = QueryRequest::new(topic_or_prefix)
            .range(range)
            .aggregate(agg, window_ns)
            .lenient_units();
        Ok(self.execute(&req).map_err(legacy_err)?.into_single())
    }

    /// Sum all sensors below `prefix` on the union of their timestamps with
    /// linear interpolation — a one-shot aggregate without defining a
    /// virtual sensor (rack power, system power, ...).  Thin wrapper over
    /// [`SensorDb::execute`] with an interpolated-sum sub-tree request.
    ///
    /// # Errors
    /// Propagates per-sensor query failures.
    pub fn aggregate_subtree(
        self: &Arc<Self>,
        prefix: &str,
        range: TimeRange,
    ) -> Result<Series, VsError> {
        let req = QueryRequest::subtree(prefix)
            .range(range)
            .aggregate_interpolated(AggFn::Sum)
            .lenient_units();
        Ok(self.execute(&req).map_err(legacy_err)?.into_single())
    }

    /// Execute a typed [`QueryRequest`] — **the** query path every surface
    /// (Grafana, REST, CLI, analytics, the legacy wrappers) goes through.
    ///
    /// * Without an aggregation the response holds raw series, one per
    ///   resolved sensor (metadata scales applied).
    /// * With an aggregation and a window, the request runs on the
    ///   `dcdb-query` pushdown engine; compressed blocks outside the range
    ///   are never decoded.
    /// * With `group_by`, the resolved sensors partition by their topic's
    ///   leading hierarchy components and the groups evaluate
    ///   **concurrently** on the engine's scoped thread pool — one response
    ///   series per group, tagged with its group key, bit-identical to
    ///   evaluating the groups serially.
    /// * With an aggregation but no window, sensors interpolate onto the
    ///   union of their timestamps and the aggregation folds the samples at
    ///   each grid point.
    ///
    /// # Errors
    /// [`QueryError::InvalidRequest`] for contradictory requests,
    /// [`QueryError::MixedUnits`] when a strict-mode group mixes concrete
    /// units, [`QueryError::Virtual`] for virtual-sensor failures.
    pub fn execute(self: &Arc<Self>, req: &QueryRequest) -> Result<QueryResponse, QueryError> {
        req.validate()?;
        self.instruments.requests.inc();
        let timed = self.instruments.timing_enabled();
        let traced = req.trace;
        // an armed slow-query log captures the same span tree a traced
        // request would, so any offender can land in the ring complete
        let slow_threshold = self.instruments.slow.threshold_ns();
        let capture = traced || slow_threshold > 0;
        let t_total = (timed || capture).then(Instant::now);
        let counters = capture.then(|| CounterBase::capture(&self.store));
        let norm = dcdb_sid::topic::normalize(&req.target);

        // virtual sensors live outside the physical hierarchy; only exact
        // and auto targeting consult them
        if req.mode != TargetMode::Subtree {
            // bind before the `if let`: the scrutinee's temporary read guard
            // would otherwise live through the body, and `execute_virtual`
            // re-enters `execute` (virtuals referencing virtuals) — a
            // recursive read that deadlocks once a writer queues up
            let vs = self.virtuals.read().get(&norm).cloned();
            if let Some(vs) = vs {
                let mut response = self.execute_virtual(&vs, &norm, req)?;
                finalize(&mut response, req);
                if capture {
                    let mut root = TraceSpan::new("execute");
                    root.wall_ns = t_total.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
                    let mut virt = TraceSpan::new("virtual");
                    virt.wall_ns = root.wall_ns;
                    root.push_child(virt);
                    if let Some(base) = &counters {
                        base.attach_deltas(&mut root, &self.store);
                    }
                    if slow_threshold > 0 && root.wall_ns >= slow_threshold {
                        self.instruments.slow.record(
                            root.wall_ns,
                            summarize_request(req),
                            root.clone(),
                        );
                    }
                    if traced {
                        response.trace = Some(root);
                    }
                }
                return Ok(response);
            }
        }

        // plan: resolve the target(s) against the topic registry
        let t_plan = (timed || capture).then(Instant::now);
        let targets: Vec<(String, SensorId)> = match req.mode {
            TargetMode::Exact => match self.registry.get(&norm) {
                Some(sid) => vec![(norm.clone(), sid)],
                None => Vec::new(),
            },
            TargetMode::Auto => match self.registry.get(&norm) {
                Some(sid) => vec![(norm.clone(), sid)],
                None => self.registry.sids_under(&norm),
            },
            TargetMode::Subtree => self.registry.sids_under(&norm),
        };
        let resolved = targets.len();
        let plan_ns = t_plan.map(|t| t.elapsed().as_nanos() as u64);

        // fold: fetch + aggregate (the engine fan-in for windowed requests)
        let t_fold = (timed || capture).then(Instant::now);
        let (mut response, engine_span) = match req.agg {
            None => (self.run_raw(&norm, targets, req), None),
            Some(agg) => {
                let groups = partition(&norm, targets, req.group_by);
                match req.window_ns {
                    Some(window_ns) => self.run_windowed(groups, req, agg, window_ns, capture)?,
                    None => (self.run_interpolated(groups, req, agg)?, None),
                }
            }
        };
        let fold_ns = t_fold.map(|t| t.elapsed().as_nanos() as u64);

        let t_finalize = (timed || capture).then(Instant::now);
        finalize(&mut response, req);
        let finalize_ns = t_finalize.map(|t| t.elapsed().as_nanos() as u64);

        if timed {
            self.instruments.plan_ns.observe(plan_ns.unwrap_or(0));
            self.instruments.fold_ns.observe(fold_ns.unwrap_or(0));
            self.instruments.finalize_ns.observe(finalize_ns.unwrap_or(0));
        }
        if capture {
            let mut root = TraceSpan::new("execute");
            root.wall_ns = t_total.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
            root.put("sensors", resolved as u64);
            root.put("series", response.series.len() as u64);
            if let Some(base) = &counters {
                base.attach_deltas(&mut root, &self.store);
            }
            let mut plan = TraceSpan::new("plan");
            plan.wall_ns = plan_ns.unwrap_or(0);
            plan.put("sensors", resolved as u64);
            root.push_child(plan);
            match engine_span {
                // the engine's own span tree (fold with per-chunk children,
                // merge) replaces the flat fold span for windowed requests
                Some(mut span) => {
                    span.stage = "engine".into();
                    root.push_child(span);
                }
                None => {
                    let mut fold = TraceSpan::new("fold");
                    fold.wall_ns = fold_ns.unwrap_or(0);
                    root.push_child(fold);
                }
            }
            let mut fin = TraceSpan::new("finalize");
            fin.wall_ns = finalize_ns.unwrap_or(0);
            root.push_child(fin);
            if slow_threshold > 0 && root.wall_ns >= slow_threshold {
                self.instruments.slow.record(root.wall_ns, summarize_request(req), root.clone());
            }
            if traced {
                response.trace = Some(root);
            }
        }
        Ok(response)
    }

    /// Raw-readings execution: one series per resolved sensor.
    fn run_raw(
        self: &Arc<Self>,
        norm: &str,
        targets: Vec<(String, SensorId)>,
        req: &QueryRequest,
    ) -> QueryResponse {
        let mut series = Vec::new();
        for (topic, sid) in &targets {
            let meta = self.meta(topic);
            let mut readings = self.store.query(*sid, req.range);
            if meta.scale != 1.0 {
                for reading in &mut readings {
                    reading.value *= meta.scale;
                }
            }
            series.push(GroupSeries {
                key: None,
                sensors: 1,
                series: Series { topic: topic.clone(), readings, unit: meta.unit },
            });
        }
        // exact targeting always answers with one series, even for unknown
        // topics (the legacy `query` contract)
        if req.mode == TargetMode::Exact && series.is_empty() {
            let meta = self.meta(norm);
            series.push(GroupSeries {
                key: None,
                sensors: 0,
                series: Series { topic: norm.to_string(), readings: Vec::new(), unit: meta.unit },
            });
        }
        QueryResponse { series, trace: None }
    }

    /// Windowed execution on the pushdown engine; groups run concurrently.
    /// With `traced` the engine's traced twin runs instead — bit-identical
    /// results plus its span tree.
    fn run_windowed(
        self: &Arc<Self>,
        groups: Vec<ResolvedGroup>,
        req: &QueryRequest,
        agg: AggFn,
        window_ns: i64,
        traced: bool,
    ) -> Result<(QueryResponse, Option<TraceSpan>), QueryError> {
        struct Prepared {
            key: Option<String>,
            base: String,
            unit: Unit,
            post_scale: f64,
            sensors: usize,
        }
        let mut prepared = Vec::with_capacity(groups.len());
        let mut tasks = Vec::with_capacity(groups.len());
        for (key, base, members) in groups {
            let units: Vec<Unit> = members.iter().map(|(t, _)| self.meta(t).unit).collect();
            let unit = group_unit(&units, req.units, &base)?;
            let (post_scale, unit) = rate_adjust(agg, unit);
            let pairs: Vec<(SensorId, f64)> =
                members.iter().map(|(t, sid)| (*sid, self.meta(t).scale)).collect();
            prepared.push(Prepared { key, base, unit, post_scale, sensors: members.len() });
            tasks.push(SensorGroup { key: prepared.len() - 1, sids: pairs });
        }
        let threads = self.query_threads.load(Ordering::Relaxed);
        let engine = dcdb_query::QueryEngine::with_threads(Arc::clone(&self.store), threads);
        let (results, engine_span) = if traced {
            let (r, span) =
                engine.aggregate_grouped_traced(tasks, req.range, window_ns, agg, threads);
            (r, Some(span))
        } else {
            (engine.aggregate_grouped(tasks, req.range, window_ns, agg), None)
        };
        let series = results
            .into_iter()
            .map(|(idx, mut readings)| {
                let p = &prepared[idx];
                apply_scale(&mut readings, p.post_scale);
                GroupSeries {
                    key: p.key.clone(),
                    sensors: p.sensors,
                    series: Series { topic: format!("{}/+{agg}", p.base), readings, unit: p.unit },
                }
            })
            .collect();
        Ok((QueryResponse { series, trace: None }, engine_span))
    }

    /// Union-grid execution: interpolate members onto shared timestamps and
    /// fold the aggregation per grid point.
    fn run_interpolated(
        self: &Arc<Self>,
        groups: Vec<ResolvedGroup>,
        req: &QueryRequest,
        agg: AggFn,
    ) -> Result<QueryResponse, QueryError> {
        let mut series = Vec::with_capacity(groups.len());
        for (key, base, members) in groups {
            let mut units = Vec::with_capacity(members.len());
            let mut materialised = Vec::with_capacity(members.len());
            for (topic, sid) in &members {
                let meta = self.meta(topic);
                units.push(meta.unit);
                let mut readings = self.store.query(*sid, req.range);
                if meta.scale != 1.0 {
                    for reading in &mut readings {
                        reading.value *= meta.scale;
                    }
                }
                materialised.push(readings);
            }
            // same unit mapping as the windowed path (count → unitless);
            // rate is rejected by validate(), so the scale is always 1.0
            let (post_scale, unit) = rate_adjust(agg, group_unit(&units, req.units, &base)?);
            let slices: Vec<&[Reading]> = materialised.iter().map(Vec::as_slice).collect();
            let mut readings = interpolated_fold(&slices, agg);
            apply_scale(&mut readings, post_scale);
            series.push(GroupSeries {
                key,
                sensors: members.len(),
                series: Series { topic: format!("{}/+{agg}", base), readings, unit },
            });
        }
        Ok(QueryResponse { series, trace: None })
    }

    /// Virtual-sensor execution: evaluate over the range, then post-process
    /// like any single-member group.
    fn execute_virtual(
        self: &Arc<Self>,
        vs: &Arc<VirtualSensor>,
        norm: &str,
        req: &QueryRequest,
    ) -> Result<QueryResponse, QueryError> {
        if req.group_by.is_some() {
            return Err(QueryError::InvalidRequest(
                "group_by does not apply to a virtual sensor (no hierarchy below it)".into(),
            ));
        }
        let series = vs.evaluate(self, req.range)?;
        let out = match req.agg {
            None => GroupSeries { key: None, sensors: 1, series },
            Some(agg) => {
                let (post_scale, unit) = rate_adjust(agg, series.unit);
                let mut readings = match req.window_ns {
                    Some(window_ns) => {
                        dcdb_query::window_aggregate(series.readings.into_iter(), window_ns, agg)
                    }
                    None => interpolated_fold(&[series.readings.as_slice()], agg),
                };
                apply_scale(&mut readings, post_scale);
                GroupSeries {
                    key: None,
                    sensors: 1,
                    series: Series { topic: format!("{norm}/+{agg}"), readings, unit },
                }
            }
        };
        Ok(QueryResponse { series: vec![out], trace: None })
    }
}

/// One-line request description for the slow-query log (`target`, mode,
/// aggregation, window, grouping, range).
fn summarize_request(req: &QueryRequest) -> String {
    use std::fmt::Write as _;
    let mode = match req.mode {
        TargetMode::Exact => "topic",
        TargetMode::Auto => "auto",
        TargetMode::Subtree => "subtree",
    };
    let mut s = format!("{mode}={}", req.target);
    if let Some(agg) = req.agg {
        let _ = write!(s, " agg={agg}");
        if let Some(w) = req.window_ns {
            let _ = write!(s, " window_ns={w}");
        }
    }
    if let Some(level) = req.group_by {
        let _ = write!(s, " group_by={level}");
    }
    let _ = write!(s, " range=[{}, {})", req.range.start, req.range.end);
    s
}

/// Flatten a metric name (possibly with a baked-in label set) into one
/// valid topic component: `dcdb_query_stage_ns{stage="plan"}` →
/// `dcdb_query_stage_ns.stage.plan`.
fn sanitize_metric_topic(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '{' | '=' | ',' => {
                if !out.ends_with('.') {
                    out.push('.');
                }
            }
            '}' | '"' => {}
            c if c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | ':' | '-') => out.push(c),
            _ => out.push('_'),
        }
    }
    while out.ends_with('.') {
        out.pop();
    }
    out
}

/// A resolved execution group: `(group key, base topic for naming, member
/// sensors)`.
type ResolvedGroup = (Option<String>, String, Vec<(String, SensorId)>);

/// Partition resolved `(topic, sid)` targets into [`ResolvedGroup`]s: one
/// group per distinct leading-components prefix when grouping, a single
/// anonymous group otherwise.
fn partition(
    norm: &str,
    targets: Vec<(String, SensorId)>,
    group_by: Option<usize>,
) -> Vec<ResolvedGroup> {
    match group_by {
        None => {
            // keep the legacy naming: a single resolved sensor is named by
            // its own topic, a fan-in by the queried prefix
            let base = if targets.len() == 1 { targets[0].0.clone() } else { norm.to_string() };
            vec![(None, base, targets)]
        }
        Some(level) => {
            let mut groups: BTreeMap<String, Vec<(String, SensorId)>> = BTreeMap::new();
            for (topic, sid) in targets {
                let levels = dcdb_sid::topic::split_levels(&topic);
                let depth = level.min(levels.len());
                let key = dcdb_sid::topic::join_levels(&levels[..depth]);
                groups.entry(key).or_default().push((topic, sid));
            }
            groups.into_iter().map(|(key, members)| (Some(key.clone()), key, members)).collect()
        }
    }
}

/// The unit of a fan-in group.  Strict mode treats `Unit::NONE` (no
/// metadata) as compatible with anything but rejects two distinct concrete
/// units; lenient mode reproduces the old first-unit-wins behaviour.
fn group_unit(units: &[Unit], mode: UnitMode, group: &str) -> Result<Unit, QueryError> {
    match mode {
        UnitMode::Lenient => Ok(units.first().copied().unwrap_or_default()),
        UnitMode::Strict => {
            let mut found: Option<Unit> = None;
            for &unit in units {
                if unit == Unit::NONE {
                    continue;
                }
                match found {
                    None => found = Some(unit),
                    Some(f) if f == unit => {}
                    Some(f) => {
                        let mut names = vec![f.name];
                        for &u in units {
                            if u != Unit::NONE && !names.contains(&u.name) {
                                names.push(u.name);
                            }
                        }
                        return Err(QueryError::MixedUnits {
                            group: group.to_string(),
                            units: names,
                        });
                    }
                }
            }
            Ok(found.unwrap_or(Unit::NONE))
        }
    }
}

/// Fold `agg` over the interpolated samples of every series at each point
/// of their union timestamp grid.
fn interpolated_fold(slices: &[&[Reading]], agg: AggFn) -> Vec<Reading> {
    let grid = crate::interp::timestamp_union(slices);
    let mut samples = Vec::with_capacity(slices.len());
    grid.into_iter()
        .map(|ts| {
            samples.clear();
            samples.extend(slices.iter().filter_map(|s| crate::interp::sample_at(s, ts)));
            let value = match agg {
                // the sum folds in slice order, exactly like the legacy
                // aggregate_subtree, so results stay bit-identical
                AggFn::Sum => samples.iter().sum(),
                AggFn::Avg => samples.iter().sum::<f64>() / samples.len().max(1) as f64,
                AggFn::Min => samples.iter().copied().fold(f64::INFINITY, f64::min),
                AggFn::Max => samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                AggFn::Count => samples.len() as f64,
                AggFn::Stddev => {
                    let mut m = dcdb_query::Moments::new();
                    for &v in &samples {
                        m.push(v);
                    }
                    m.stddev()
                }
                AggFn::Quantile(q) => {
                    let mut v = samples.clone();
                    v.sort_by(f64::total_cmp);
                    let idx = (q * (v.len().max(1) - 1) as f64).round() as usize;
                    v.get(idx.min(v.len().saturating_sub(1))).copied().unwrap_or(f64::NAN)
                }
                // validate() rejects interpolated rate; NaN (not a panic)
                // if a request ever slips through
                AggFn::Rate => f64::NAN,
            };
            Reading { ts, value }
        })
        .collect()
}

/// Apply the requested response ordering and per-series limit.
fn finalize(response: &mut QueryResponse, req: &QueryRequest) {
    match req.order {
        SeriesOrder::Key => response.series.sort_by(|a, b| {
            let ka = a.key.as_deref().unwrap_or(&a.series.topic);
            let kb = b.key.as_deref().unwrap_or(&b.series.topic);
            ka.cmp(kb)
        }),
        SeriesOrder::MeanDesc => {
            // one mean per series up front: the comparator must not rescan
            // both series' readings on every comparison
            let mut keyed: Vec<(f64, GroupSeries)> = response
                .series
                .drain(..)
                .map(|s| {
                    let r = &s.series.readings;
                    let mean = if r.is_empty() {
                        f64::NEG_INFINITY
                    } else {
                        r.iter().map(|x| x.value).sum::<f64>() / r.len() as f64
                    };
                    (mean, s)
                })
                .collect();
            keyed.sort_by(|a, b| b.0.total_cmp(&a.0));
            response.series.extend(keyed.into_iter().map(|(_, s)| s));
        }
    }
    if let Some(n) = req.limit {
        for s in &mut response.series {
            let len = s.series.readings.len();
            if len > n {
                s.series.readings.drain(..len - n);
            }
        }
    }
}

/// Legacy wrappers pre-validate their requests and run with lenient units,
/// so only virtual-sensor errors can surface.
fn legacy_err(e: QueryError) -> VsError {
    match e {
        QueryError::Virtual(e) => e,
        // defensive: the wrappers pre-validate, so a non-virtual error here
        // is a bug — surface it as an error value, not a panic
        other => VsError::Parse { pos: 0, message: other.to_string() },
    }
}

/// For `rate`, the unit-aware conversion factor and output unit; identity
/// for every other aggregation.
fn rate_adjust(agg: dcdb_query::AggFn, unit: Unit) -> (f64, Unit) {
    match agg {
        dcdb_query::AggFn::Rate => unit.rate_unit(),
        dcdb_query::AggFn::Count => (1.0, Unit::NONE),
        _ => (1.0, unit),
    }
}

fn apply_scale(readings: &mut [Reading], scale: f64) {
    if scale != 1.0 {
        for r in readings {
            r.value *= scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdb_query::AggFn;

    #[test]
    fn insert_query_roundtrip() {
        let db = SensorDb::in_memory();
        db.insert("/a/power", 1_000, 100.0).unwrap();
        db.insert("/a/power", 2_000, 110.0).unwrap();
        let s = db.query("/a/power", TimeRange::all()).unwrap();
        assert_eq!(s.readings.len(), 2);
        assert_eq!(s.unit, Unit::NONE);
        assert_eq!(db.latest("/a/power").unwrap().value, 110.0);
    }

    #[test]
    fn metadata_scale_applies_on_query() {
        let db = SensorDb::in_memory();
        db.insert("/a/energy", 1, 1_000_000.0).unwrap();
        db.set_meta(
            "/a/energy",
            SensorMeta { unit: Unit::JOULE, scale: 1e-6, description: "RAPL".into() },
        );
        let s = db.query("/a/energy", TimeRange::all()).unwrap();
        assert_eq!(s.readings[0].value, 1.0);
        assert_eq!(s.unit, Unit::JOULE);
        assert_eq!(db.meta("/a/energy").description, "RAPL");
    }

    #[test]
    fn unknown_topic_is_empty() {
        let db = SensorDb::in_memory();
        let s = db.query("/no/such", TimeRange::all()).unwrap();
        assert!(s.readings.is_empty());
        assert!(db.latest("/no/such").is_none());
    }

    #[test]
    fn invalid_topic_rejected() {
        let db = SensorDb::in_memory();
        assert!(db.insert("/a//b", 1, 1.0).is_err());
    }

    #[test]
    fn windowed_aggregate_single_topic() {
        let db = SensorDb::in_memory();
        for ts in 0..100i64 {
            db.insert("/r0/n0/power", ts * 1_000_000_000, (ts % 10) as f64).unwrap();
        }
        let s = db
            .query_aggregate(
                "/r0/n0/power",
                TimeRange::new(0, 100_000_000_000),
                10_000_000_000,
                AggFn::Avg,
            )
            .unwrap();
        assert_eq!(s.readings.len(), 10);
        assert!(s.readings.iter().all(|r| (r.value - 4.5).abs() < 1e-12));
        assert_eq!(s.topic, "/r0/n0/power/+avg");
    }

    #[test]
    fn windowed_aggregate_prefix_fan_in() {
        let db = SensorDb::in_memory();
        for n in 0..4i64 {
            for ts in 0..60i64 {
                db.insert(&format!("/r0/n{n}/power"), ts * 1_000_000_000, 100.0 + n as f64)
                    .unwrap();
            }
        }
        let s = db
            .query_aggregate("/r0", TimeRange::new(0, 60_000_000_000), 60_000_000_000, AggFn::Avg)
            .unwrap();
        assert_eq!(s.readings.len(), 1);
        assert!((s.readings[0].value - 101.5).abs() < 1e-12);
        // sum fan-in: 60 readings × (100+101+102+103)
        let s = db
            .query_aggregate("/r0", TimeRange::new(0, 60_000_000_000), 60_000_000_000, AggFn::Sum)
            .unwrap();
        assert_eq!(s.readings[0].value, 60.0 * 406.0);
    }

    #[test]
    fn aggregate_applies_meta_scale_and_rate_units() {
        let db = SensorDb::in_memory();
        // a raw energy counter in microjoules, scaled to J by metadata
        for ts in 0..11i64 {
            db.insert("/n0/energy", ts * 1_000_000_000, (ts * 100) as f64 * 1e6).unwrap();
        }
        db.set_meta(
            "/n0/energy",
            SensorMeta { unit: Unit::JOULE, scale: 1e-6, description: String::new() },
        );
        let s = db
            .query_aggregate(
                "/n0/energy",
                TimeRange::new(0, 11_000_000_000),
                20_000_000_000,
                AggFn::Rate,
            )
            .unwrap();
        // 100 J per second → 100 W, unit-aware
        assert_eq!(s.unit, Unit::WATT);
        assert!((s.readings[0].value - 100.0).abs() < 1e-9, "{:?}", s.readings);
    }

    #[test]
    fn aggregate_of_virtual_sensor() {
        let db = SensorDb::in_memory();
        for ts in 0..10i64 {
            db.insert("/a/x", ts, 1.0).unwrap();
            db.insert("/a/y", ts, 2.0).unwrap();
        }
        db.define_virtual("/v/sum", "\"/a/x\" + \"/a/y\"", Unit::WATT).unwrap();
        let s = db.query_aggregate("/v/sum", TimeRange::new(0, 10), 100, AggFn::Max).unwrap();
        assert_eq!(s.readings.len(), 1);
        assert_eq!(s.readings[0].value, 3.0);
        assert_eq!(s.unit, Unit::WATT);
    }

    #[test]
    fn aggregate_unknown_topic_is_empty() {
        let db = SensorDb::in_memory();
        let s = db.query_aggregate("/no/such", TimeRange::all(), 1_000, AggFn::Avg).unwrap();
        assert!(s.readings.is_empty());
    }

    fn two_rack_db() -> Arc<SensorDb> {
        let db = SensorDb::in_memory();
        for rack in 0..2i64 {
            for node in 0..3i64 {
                for ts in 0..60i64 {
                    db.insert(
                        &format!("/sys/rack{rack}/node{node}/power"),
                        ts * 1_000_000_000,
                        100.0 * (rack + 1) as f64 + node as f64,
                    )
                    .unwrap();
                }
            }
        }
        db
    }

    #[test]
    fn execute_grouped_one_series_per_rack() {
        let db = two_rack_db();
        let req = QueryRequest::new("/sys")
            .range(TimeRange::new(0, 60_000_000_000))
            .aggregate(AggFn::Avg, 60_000_000_000)
            .group_by(2);
        let resp = db.execute(&req).unwrap();
        assert_eq!(resp.series.len(), 2);
        let r0 = &resp.series[0];
        assert_eq!(r0.key.as_deref(), Some("/sys/rack0"));
        assert_eq!(r0.series.topic, "/sys/rack0/+avg");
        assert_eq!(r0.sensors, 3);
        assert!((r0.series.readings[0].value - 101.0).abs() < 1e-9);
        let r1 = &resp.series[1];
        assert_eq!(r1.key.as_deref(), Some("/sys/rack1"));
        assert!((r1.series.readings[0].value - 201.0).abs() < 1e-9);
        // every group is bit-identical to the equivalent ungrouped fan-in
        for (rack, group) in resp.series.iter().enumerate() {
            let solo = db
                .query_aggregate(
                    &format!("/sys/rack{rack}"),
                    TimeRange::new(0, 60_000_000_000),
                    60_000_000_000,
                    AggFn::Avg,
                )
                .unwrap();
            assert_eq!(group.series.readings, solo.readings);
        }
    }

    #[test]
    fn execute_group_level_deeper_than_topics() {
        let db = two_rack_db();
        // level 3 groups per node: 6 groups
        let req = QueryRequest::new("/sys").aggregate(AggFn::Max, 60_000_000_000).group_by(3);
        let resp = db.execute(&req).unwrap();
        assert_eq!(resp.series.len(), 6);
        assert_eq!(resp.series[0].key.as_deref(), Some("/sys/rack0/node0"));
        assert_eq!(resp.series[0].sensors, 1);
    }

    #[test]
    fn execute_order_and_limit() {
        let db = two_rack_db();
        let req = QueryRequest::new("/sys")
            .aggregate(AggFn::Avg, 10_000_000_000)
            .group_by(2)
            .order(SeriesOrder::MeanDesc)
            .limit(2);
        let resp = db.execute(&req).unwrap();
        // hottest rack first, and only the last 2 of 6 windows survive
        assert_eq!(resp.series[0].key.as_deref(), Some("/sys/rack1"));
        assert_eq!(resp.series[0].series.readings.len(), 2);
        assert_eq!(resp.series[0].series.readings[0].ts, 40_000_000_000);
    }

    #[test]
    fn execute_strict_mixed_units_is_typed_error() {
        let db = two_rack_db();
        db.set_meta("/sys/rack0/node0/power", SensorMeta::with_unit(Unit::WATT));
        db.set_meta("/sys/rack0/node1/power", SensorMeta::with_unit(Unit::JOULE));
        let req = QueryRequest::new("/sys/rack0").aggregate(AggFn::Avg, 60_000_000_000);
        let err = db.execute(&req).unwrap_err();
        let QueryError::MixedUnits { group, units } = err else {
            panic!("expected MixedUnits, got {err}");
        };
        assert_eq!(group, "/sys/rack0");
        assert_eq!(units, vec!["W", "J"]);
        // the legacy wrapper keeps the old lenient first-unit behaviour
        let s =
            db.query_aggregate("/sys/rack0", TimeRange::all(), 60_000_000_000, AggFn::Avg).unwrap();
        assert_eq!(s.unit, Unit::WATT);
    }

    #[test]
    fn execute_strict_units_treat_none_as_unspecified() {
        let db = two_rack_db();
        // only one sensor carries metadata: NONE neighbours are compatible,
        // and the concrete unit labels the fan-in (the old API said NONE)
        db.set_meta("/sys/rack0/node1/power", SensorMeta::with_unit(Unit::WATT));
        let req = QueryRequest::new("/sys/rack0").aggregate(AggFn::Avg, 60_000_000_000);
        let resp = db.execute(&req).unwrap();
        assert_eq!(resp.series[0].series.unit, Unit::WATT);
        // grouped: the clean rack stays NONE, the labelled one is W
        let resp = db
            .execute(&QueryRequest::new("/sys").aggregate(AggFn::Avg, 60_000_000_000).group_by(2))
            .unwrap();
        assert_eq!(resp.series[0].series.unit, Unit::WATT);
        assert_eq!(resp.series[1].series.unit, Unit::NONE);
    }

    #[test]
    fn execute_interpolated_generalises_aggregate_subtree() {
        let db = two_rack_db();
        let sum = db
            .execute(&QueryRequest::subtree("/sys/rack0").aggregate_interpolated(AggFn::Sum))
            .unwrap();
        let legacy = db.aggregate_subtree("/sys/rack0", TimeRange::all()).unwrap();
        assert_eq!(sum.clone().into_single().readings, legacy.readings);
        assert_eq!(sum.series[0].series.topic, "/sys/rack0/+sum");
        // and beyond sum: the per-grid-point maximum
        let max = db
            .execute(&QueryRequest::subtree("/sys/rack0").aggregate_interpolated(AggFn::Max))
            .unwrap();
        assert!((max.series[0].series.readings[0].value - 102.0).abs() < 1e-9);
        // count is unitless here exactly like in the windowed path
        db.set_meta("/sys/rack0/node0/power", SensorMeta::with_unit(Unit::WATT));
        let cnt = db
            .execute(&QueryRequest::subtree("/sys/rack0").aggregate_interpolated(AggFn::Count))
            .unwrap();
        assert_eq!(cnt.series[0].series.unit, Unit::NONE);
    }

    #[test]
    fn execute_raw_subtree_series_per_sensor() {
        let db = two_rack_db();
        let resp = db.execute(&QueryRequest::subtree("/sys/rack0").limit(5)).unwrap();
        assert_eq!(resp.series.len(), 3);
        assert!(resp.series.iter().all(|s| s.series.readings.len() == 5));
        // the limit keeps the most recent readings
        assert_eq!(resp.series[0].series.readings[0].ts, 55_000_000_000);
    }

    #[test]
    fn execute_rejects_group_by_on_virtual() {
        let db = two_rack_db();
        db.define_virtual("/v/x", "\"/sys/rack0/node0/power\" * 2", Unit::WATT).unwrap();
        let req = QueryRequest::new("/v/x").aggregate(AggFn::Avg, 1_000_000_000).group_by(2);
        assert!(matches!(db.execute(&req), Err(QueryError::InvalidRequest(_))));
    }

    #[test]
    fn traced_execute_is_bit_identical_and_carries_spans() {
        let db = two_rack_db();
        let req = QueryRequest::new("/sys")
            .range(TimeRange::new(0, 60_000_000_000))
            .aggregate(AggFn::Avg, 10_000_000_000)
            .group_by(2);
        let plain = db.execute(&req).unwrap();
        assert!(plain.trace.is_none());
        let traced = db.execute(&req.clone().traced()).unwrap();
        assert_eq!(traced.series, plain.series);
        let trace = traced.trace.expect("trace requested");
        assert_eq!(trace.stage, "execute");
        assert_eq!(trace.get("sensors"), Some(6));
        assert_eq!(trace.get("series"), Some(2));
        assert!(trace.get("blocks_decoded").is_some());
        let stages: Vec<&str> = trace.children.iter().map(|c| c.stage.as_str()).collect();
        assert_eq!(stages, ["plan", "engine", "finalize"]);
        let engine = &trace.children[1];
        assert!(engine.children.iter().any(|c| c.stage == "merge"));
        let rendered = trace.render();
        assert!(rendered.contains("engine"), "{rendered}");

        // raw and interpolated paths trace with a flat fold span
        let raw = db.execute(&QueryRequest::subtree("/sys/rack0").traced()).unwrap();
        let t = raw.trace.unwrap();
        assert!(t.children.iter().any(|c| c.stage == "fold"));
    }

    #[test]
    fn traced_virtual_query_tags_the_virtual_stage() {
        let db = two_rack_db();
        db.define_virtual("/v/x", "\"/sys/rack0/node0/power\" * 2", Unit::WATT).unwrap();
        let resp = db.execute(&QueryRequest::new("/v/x").traced()).unwrap();
        let trace = resp.trace.unwrap();
        assert_eq!(trace.children.len(), 1);
        assert_eq!(trace.children[0].stage, "virtual");
    }

    #[test]
    fn query_stage_histograms_fill_and_can_be_disabled() {
        let db = two_rack_db();
        let req = QueryRequest::new("/sys").aggregate(AggFn::Avg, 60_000_000_000);
        db.execute(&req).unwrap();
        let snap = db.metrics().snapshot();
        let MetricValue::Counter(requests) = snap.get("dcdb_query_requests_total").unwrap() else {
            panic!("requests metric missing");
        };
        // two_rack_db inserts don't execute queries; exactly ours counted
        assert_eq!(*requests, 1);
        let MetricValue::Histogram(plan) = snap.get("dcdb_query_stage_ns{stage=\"plan\"}").unwrap()
        else {
            panic!("plan histogram missing");
        };
        assert_eq!(plan.count, 1);
        // disabling timing stops latency observations but never the counters
        db.metrics().set_enabled(false);
        db.execute(&req).unwrap();
        let snap = db.metrics().snapshot();
        let MetricValue::Histogram(plan) = snap.get("dcdb_query_stage_ns{stage=\"plan\"}").unwrap()
        else {
            panic!("plan histogram missing");
        };
        assert_eq!(plan.count, 1);
        assert_eq!(snap.get("dcdb_query_requests_total"), Some(&MetricValue::Counter(2)));
    }

    #[test]
    fn user_inserts_under_reserved_hierarchy_are_rejected() {
        let db = SensorDb::in_memory();
        let err = db.insert("/_dcdb/node0/dcdb_inserts_total", 1, 1.0).unwrap_err();
        assert!(matches!(err, dcdb_sid::SidError::Reserved(_)));
        // similar-looking but unreserved topics pass
        db.insert("/_dcdbish/x", 1, 1.0).unwrap();
        db.insert("/sys/_dcdb/x", 1, 1.0).unwrap();
    }

    #[test]
    fn self_metrics_publish_as_queryable_sensors() {
        let db = SensorDb::in_memory();
        for ts in 0..50i64 {
            db.insert("/r0/n0/power", ts * 1_000_000_000, ts as f64).unwrap();
        }
        db.execute(&QueryRequest::new("/r0").aggregate(AggFn::Avg, 10_000_000_000)).unwrap();
        let written = db.publish_self_metrics("node0", 60_000_000_000);
        assert!(written > 0, "scrape should publish readings");

        // the fold is queryable through the standard execution path
        let resp = db.execute(&QueryRequest::subtree("/_dcdb/node0")).unwrap();
        assert!(!resp.series.is_empty());
        let reqs = db
            .execute(&QueryRequest::topic("/_dcdb/node0/dcdb_query_requests_total"))
            .unwrap()
            .into_single();
        assert_eq!(reqs.readings.len(), 1);
        // the avg query above plus the subtree query ran before this scrape
        assert!(reqs.readings[0].value >= 1.0);
        // label sets flattened into topic components
        assert_eq!(
            sanitize_metric_topic("dcdb_query_stage_ns{stage=\"plan\"}"),
            "dcdb_query_stage_ns.stage.plan"
        );
        let plan = db
            .execute(&QueryRequest::topic("/_dcdb/node0/dcdb_query_stage_ns.stage.plan_count"))
            .unwrap()
            .into_single();
        assert_eq!(plan.readings.len(), 1);
        // a second scrape appends history under the same sensors
        db.execute(&QueryRequest::new("/r0").aggregate(AggFn::Avg, 10_000_000_000)).unwrap();
        db.publish_self_metrics("node0", 61_000_000_000);
        let reqs = db
            .execute(&QueryRequest::topic("/_dcdb/node0/dcdb_query_requests_total"))
            .unwrap()
            .into_single();
        assert_eq!(reqs.readings.len(), 2);
        assert!(reqs.readings[1].value > reqs.readings[0].value);
    }

    #[test]
    fn slow_query_log_captures_offenders_with_span_trees() {
        let db = two_rack_db();
        let req = QueryRequest::new("/sys")
            .range(TimeRange::new(0, 60_000_000_000))
            .aggregate(AggFn::Avg, 10_000_000_000)
            .group_by(2);
        // disarmed: nothing is captured, results identical
        let plain = db.execute(&req).unwrap();
        assert!(db.slow_queries().is_empty());
        // a 1ns threshold makes every query an offender
        db.slow_queries().set_threshold_ns(1);
        let slow = db.execute(&req).unwrap();
        assert_eq!(slow.series, plain.series, "capture must not change results");
        assert!(slow.trace.is_none(), "slow capture is not a trace request");
        let entries = db.slow_queries().entries();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert!(e.summary.contains("auto=/sys"), "{}", e.summary);
        assert!(e.summary.contains("agg=avg"), "{}", e.summary);
        assert!(e.total_ns >= 1);
        // the captured span tree is the full traced-execute shape
        assert_eq!(e.trace.stage, "execute");
        let stages: Vec<&str> = e.trace.children.iter().map(|c| c.stage.as_str()).collect();
        assert_eq!(stages, ["plan", "engine", "finalize"]);
        assert!(e.trace.get("blocks_decoded").is_some());
        // disarming stops capture again
        db.slow_queries().set_threshold_ns(0);
        db.execute(&req).unwrap();
        assert_eq!(db.slow_queries().entries().len(), 1);
        // virtual-sensor queries are captured too — including the nested
        // operand query their evaluation runs (it finishes first)
        db.define_virtual("/v/x", "\"/sys/rack0/node0/power\" * 2", Unit::WATT).unwrap();
        db.slow_queries().set_threshold_ns(1);
        db.execute(&QueryRequest::new("/v/x")).unwrap();
        let entries = db.slow_queries().entries();
        assert_eq!(entries.len(), 3);
        assert!(entries[1].summary.contains("/sys/rack0/node0/power"), "{}", entries[1].summary);
        assert_eq!(entries[2].trace.children[0].stage, "virtual");
    }

    #[test]
    fn hierarchical_listing() {
        let db = SensorDb::in_memory();
        db.insert("/sys/r0/n0/power", 1, 1.0).unwrap();
        db.insert("/sys/r0/n1/power", 1, 1.0).unwrap();
        db.insert("/sys/r1/n0/power", 1, 1.0).unwrap();
        assert_eq!(db.topics_under("/sys/r0").len(), 2);
        assert_eq!(db.topics_under("/sys").len(), 3);
    }
}
