//! The database-independent access API.
//!
//! [`SensorDb`] bundles the storage cluster, the topic registry and sensor
//! metadata (units, scaling factors — maintained via `dcdbconfig` in the
//! paper, §5.2) behind one handle.  Virtual sensors registered on the
//! handle are queried exactly like physical ones (paper §3.2).

use std::collections::HashMap;
use std::sync::Arc;

use dcdb_sid::{SensorId, TopicRegistry};
use dcdb_store::reading::{Reading, TimeRange};
use dcdb_store::StoreCluster;
use parking_lot::RwLock;

use crate::units::Unit;
use crate::vsensor::{VirtualSensor, VsError};

/// Metadata attached to a sensor (`dcdbconfig sensor` properties).
#[derive(Debug, Clone, Default)]
pub struct SensorMeta {
    /// Unit of the stored values.
    pub unit: Unit,
    /// Multiplied into values on query.
    pub scale: f64,
    /// Free-text description.
    pub description: String,
}

impl SensorMeta {
    /// Metadata with a unit and neutral scaling.
    pub fn with_unit(unit: Unit) -> SensorMeta {
        SensorMeta { unit, scale: 1.0, description: String::new() }
    }
}

/// A queried time series plus its unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// The sensor topic.
    pub topic: String,
    /// Readings in time order.
    pub readings: Vec<Reading>,
    /// Unit of `readings` values.
    pub unit: Unit,
}

/// The libDCDB handle.
pub struct SensorDb {
    store: Arc<StoreCluster>,
    registry: Arc<TopicRegistry>,
    meta: RwLock<HashMap<String, SensorMeta>>,
    virtuals: RwLock<HashMap<String, Arc<VirtualSensor>>>,
}

impl SensorDb {
    /// Wrap an existing cluster + registry (e.g. the Collect Agent's).
    pub fn new(store: Arc<StoreCluster>, registry: Arc<TopicRegistry>) -> Arc<SensorDb> {
        Arc::new(SensorDb {
            store,
            registry,
            meta: RwLock::new(HashMap::new()),
            virtuals: RwLock::new(HashMap::new()),
        })
    }

    /// A fresh single-node database (tests, examples).
    pub fn in_memory() -> Arc<SensorDb> {
        SensorDb::new(Arc::new(StoreCluster::single()), Arc::new(TopicRegistry::new()))
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<StoreCluster> {
        &self.store
    }

    /// The topic registry.
    pub fn registry(&self) -> &Arc<TopicRegistry> {
        &self.registry
    }

    /// Insert one reading under `topic`.
    ///
    /// # Errors
    /// Fails on invalid topics.
    pub fn insert(&self, topic: &str, ts: i64, value: f64) -> Result<(), dcdb_sid::SidError> {
        let sid = self.registry.resolve(topic)?;
        self.store.insert(sid, ts, value);
        Ok(())
    }

    /// Set sensor metadata (`dcdbconfig sensor set`).
    pub fn set_meta(&self, topic: &str, meta: SensorMeta) {
        self.meta.write().insert(dcdb_sid::topic::normalize(topic), meta);
    }

    /// Get sensor metadata.
    pub fn meta(&self, topic: &str) -> SensorMeta {
        self.meta.read().get(&dcdb_sid::topic::normalize(topic)).cloned().unwrap_or(SensorMeta {
            unit: Unit::NONE,
            scale: 1.0,
            description: String::new(),
        })
    }

    /// Register a virtual sensor under its own topic.
    ///
    /// # Errors
    /// Propagates expression compilation failures.
    pub fn define_virtual(
        self: &Arc<Self>,
        topic: &str,
        expression: &str,
        unit: Unit,
    ) -> Result<(), VsError> {
        let vs = VirtualSensor::compile(topic, expression, unit)?;
        self.virtuals.write().insert(dcdb_sid::topic::normalize(topic), Arc::new(vs));
        Ok(())
    }

    /// Names of registered virtual sensors.
    pub fn virtual_topics(&self) -> Vec<String> {
        let mut v: Vec<String> = self.virtuals.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Query a sensor (physical or virtual) in `[start, end)`.
    ///
    /// Physical sensors apply their metadata scale; virtual sensors are
    /// evaluated lazily over the queried period only (paper §3.2).
    ///
    /// # Errors
    /// Virtual-sensor evaluation errors propagate; unknown physical topics
    /// yield an empty series.
    pub fn query(self: &Arc<Self>, topic: &str, range: TimeRange) -> Result<Series, VsError> {
        let norm = dcdb_sid::topic::normalize(topic);
        if let Some(vs) = self.virtuals.read().get(&norm).cloned() {
            return vs.evaluate(self, range);
        }
        let meta = self.meta(&norm);
        let readings = match self.registry.get(&norm) {
            Some(sid) => {
                let mut r = self.store.query(sid, range);
                if meta.scale != 1.0 {
                    for reading in &mut r {
                        reading.value *= meta.scale;
                    }
                }
                r
            }
            None => Vec::new(),
        };
        Ok(Series { topic: norm, readings, unit: meta.unit })
    }

    /// Latest reading of a physical sensor.
    pub fn latest(&self, topic: &str) -> Option<Reading> {
        let sid = self.registry.get(&dcdb_sid::topic::normalize(topic))?;
        self.store.latest(sid)
    }

    /// All known physical topics under `prefix` (hierarchical listing).
    pub fn topics_under(&self, prefix: &str) -> Vec<(String, SensorId)> {
        self.registry.sids_under(prefix)
    }

    /// Query every sensor below `prefix` in one call — the holistic
    /// cross-source correlation pattern ("aggregate the power sensors of
    /// individual compute nodes", paper §3.2).  Virtual sensors are not
    /// included (they live outside the physical hierarchy).
    ///
    /// # Errors
    /// Propagates per-sensor query failures.
    pub fn query_subtree(
        self: &Arc<Self>,
        prefix: &str,
        range: TimeRange,
    ) -> Result<Vec<Series>, VsError> {
        self.registry
            .sids_under(prefix)
            .into_iter()
            .map(|(topic, _)| self.query(&topic, range))
            .collect()
    }

    /// Windowed aggregation with pushdown: `avg`/`min`/`max`/`sum`/`count`/
    /// `stddev`/`quantile`/`rate` of a sensor — or of *every* sensor under a
    /// prefix (sensor-tree fan-in, "avg power per rack") — over fixed
    /// `window_ns` windows within `range`.
    ///
    /// The heavy lifting happens in `dcdb-query`: compressed SSTable blocks
    /// whose headers do not intersect `range` are never decompressed.
    /// Metadata scales apply per sensor before aggregation; the result unit
    /// is the (first) sensor's unit, mapped through
    /// [`Unit::rate_unit`] for `rate` (J → W, B → B/s, counts → Hz).
    /// Virtual sensor topics are evaluated over `range` first and then
    /// windowed like any other series.
    ///
    /// # Errors
    /// Virtual-sensor evaluation errors propagate; unknown topics yield an
    /// empty series.
    pub fn query_aggregate(
        self: &Arc<Self>,
        topic_or_prefix: &str,
        range: TimeRange,
        window_ns: i64,
        agg: dcdb_query::AggFn,
    ) -> Result<Series, VsError> {
        let norm = dcdb_sid::topic::normalize(topic_or_prefix);
        let suffix = format!("/+{agg}");

        // virtual sensors live outside the physical hierarchy: evaluate,
        // then window the materialised series
        if let Some(vs) = self.virtuals.read().get(&norm).cloned() {
            let series = vs.evaluate(self, range)?;
            let (scale, unit) = rate_adjust(agg, series.unit);
            let mut readings =
                dcdb_query::window_aggregate(series.readings.into_iter(), window_ns, agg);
            apply_scale(&mut readings, scale);
            return Ok(Series { topic: norm + &suffix, readings, unit });
        }

        // exact physical topic, else prefix fan-in over the sub-tree
        let targets: Vec<(String, SensorId)> = match self.registry.get(&norm) {
            Some(sid) => vec![(norm.clone(), sid)],
            None => self.registry.sids_under(&norm),
        };
        let unit = targets.first().map(|(t, _)| self.meta(t).unit).unwrap_or_default();
        let pairs: Vec<(SensorId, f64)> =
            targets.iter().map(|(t, sid)| (*sid, self.meta(t).scale)).collect();
        let engine = dcdb_query::QueryEngine::new(Arc::clone(&self.store));
        let (scale, unit) = rate_adjust(agg, unit);
        let mut readings = engine.aggregate(&pairs, range, window_ns, agg);
        apply_scale(&mut readings, scale);
        let topic = if targets.len() == 1 { targets[0].0.clone() } else { norm };
        Ok(Series { topic: topic + &suffix, readings, unit })
    }

    /// Sum all sensors below `prefix` on the union of their timestamps with
    /// linear interpolation — a one-shot aggregate without defining a
    /// virtual sensor (rack power, system power, ...).
    pub fn aggregate_subtree(
        self: &Arc<Self>,
        prefix: &str,
        range: TimeRange,
    ) -> Result<Series, VsError> {
        let series = self.query_subtree(prefix, range)?;
        let unit = series.first().map(|s| s.unit).unwrap_or_default();
        let slices: Vec<&[Reading]> = series.iter().map(|s| s.readings.as_slice()).collect();
        let grid = crate::interp::timestamp_union(&slices);
        let readings = grid
            .into_iter()
            .map(|ts| Reading {
                ts,
                value: slices.iter().filter_map(|s| crate::interp::sample_at(s, ts)).sum(),
            })
            .collect();
        Ok(Series { topic: format!("{}/+sum", dcdb_sid::topic::normalize(prefix)), readings, unit })
    }
}

/// For `rate`, the unit-aware conversion factor and output unit; identity
/// for every other aggregation.
fn rate_adjust(agg: dcdb_query::AggFn, unit: Unit) -> (f64, Unit) {
    match agg {
        dcdb_query::AggFn::Rate => unit.rate_unit(),
        dcdb_query::AggFn::Count => (1.0, Unit::NONE),
        _ => (1.0, unit),
    }
}

fn apply_scale(readings: &mut [Reading], scale: f64) {
    if scale != 1.0 {
        for r in readings {
            r.value *= scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdb_query::AggFn;

    #[test]
    fn insert_query_roundtrip() {
        let db = SensorDb::in_memory();
        db.insert("/a/power", 1_000, 100.0).unwrap();
        db.insert("/a/power", 2_000, 110.0).unwrap();
        let s = db.query("/a/power", TimeRange::all()).unwrap();
        assert_eq!(s.readings.len(), 2);
        assert_eq!(s.unit, Unit::NONE);
        assert_eq!(db.latest("/a/power").unwrap().value, 110.0);
    }

    #[test]
    fn metadata_scale_applies_on_query() {
        let db = SensorDb::in_memory();
        db.insert("/a/energy", 1, 1_000_000.0).unwrap();
        db.set_meta(
            "/a/energy",
            SensorMeta { unit: Unit::JOULE, scale: 1e-6, description: "RAPL".into() },
        );
        let s = db.query("/a/energy", TimeRange::all()).unwrap();
        assert_eq!(s.readings[0].value, 1.0);
        assert_eq!(s.unit, Unit::JOULE);
        assert_eq!(db.meta("/a/energy").description, "RAPL");
    }

    #[test]
    fn unknown_topic_is_empty() {
        let db = SensorDb::in_memory();
        let s = db.query("/no/such", TimeRange::all()).unwrap();
        assert!(s.readings.is_empty());
        assert!(db.latest("/no/such").is_none());
    }

    #[test]
    fn invalid_topic_rejected() {
        let db = SensorDb::in_memory();
        assert!(db.insert("/a//b", 1, 1.0).is_err());
    }

    #[test]
    fn windowed_aggregate_single_topic() {
        let db = SensorDb::in_memory();
        for ts in 0..100i64 {
            db.insert("/r0/n0/power", ts * 1_000_000_000, (ts % 10) as f64).unwrap();
        }
        let s = db
            .query_aggregate(
                "/r0/n0/power",
                TimeRange::new(0, 100_000_000_000),
                10_000_000_000,
                AggFn::Avg,
            )
            .unwrap();
        assert_eq!(s.readings.len(), 10);
        assert!(s.readings.iter().all(|r| (r.value - 4.5).abs() < 1e-12));
        assert_eq!(s.topic, "/r0/n0/power/+avg");
    }

    #[test]
    fn windowed_aggregate_prefix_fan_in() {
        let db = SensorDb::in_memory();
        for n in 0..4i64 {
            for ts in 0..60i64 {
                db.insert(&format!("/r0/n{n}/power"), ts * 1_000_000_000, 100.0 + n as f64)
                    .unwrap();
            }
        }
        let s = db
            .query_aggregate("/r0", TimeRange::new(0, 60_000_000_000), 60_000_000_000, AggFn::Avg)
            .unwrap();
        assert_eq!(s.readings.len(), 1);
        assert!((s.readings[0].value - 101.5).abs() < 1e-12);
        // sum fan-in: 60 readings × (100+101+102+103)
        let s = db
            .query_aggregate("/r0", TimeRange::new(0, 60_000_000_000), 60_000_000_000, AggFn::Sum)
            .unwrap();
        assert_eq!(s.readings[0].value, 60.0 * 406.0);
    }

    #[test]
    fn aggregate_applies_meta_scale_and_rate_units() {
        let db = SensorDb::in_memory();
        // a raw energy counter in microjoules, scaled to J by metadata
        for ts in 0..11i64 {
            db.insert("/n0/energy", ts * 1_000_000_000, (ts * 100) as f64 * 1e6).unwrap();
        }
        db.set_meta(
            "/n0/energy",
            SensorMeta { unit: Unit::JOULE, scale: 1e-6, description: String::new() },
        );
        let s = db
            .query_aggregate(
                "/n0/energy",
                TimeRange::new(0, 11_000_000_000),
                20_000_000_000,
                AggFn::Rate,
            )
            .unwrap();
        // 100 J per second → 100 W, unit-aware
        assert_eq!(s.unit, Unit::WATT);
        assert!((s.readings[0].value - 100.0).abs() < 1e-9, "{:?}", s.readings);
    }

    #[test]
    fn aggregate_of_virtual_sensor() {
        let db = SensorDb::in_memory();
        for ts in 0..10i64 {
            db.insert("/a/x", ts, 1.0).unwrap();
            db.insert("/a/y", ts, 2.0).unwrap();
        }
        db.define_virtual("/v/sum", "\"/a/x\" + \"/a/y\"", Unit::WATT).unwrap();
        let s = db.query_aggregate("/v/sum", TimeRange::new(0, 10), 100, AggFn::Max).unwrap();
        assert_eq!(s.readings.len(), 1);
        assert_eq!(s.readings[0].value, 3.0);
        assert_eq!(s.unit, Unit::WATT);
    }

    #[test]
    fn aggregate_unknown_topic_is_empty() {
        let db = SensorDb::in_memory();
        let s = db.query_aggregate("/no/such", TimeRange::all(), 1_000, AggFn::Avg).unwrap();
        assert!(s.readings.is_empty());
    }

    #[test]
    fn hierarchical_listing() {
        let db = SensorDb::in_memory();
        db.insert("/sys/r0/n0/power", 1, 1.0).unwrap();
        db.insert("/sys/r0/n1/power", 1, 1.0).unwrap();
        db.insert("/sys/r1/n0/power", 1, 1.0).unwrap();
        assert_eq!(db.topics_under("/sys/r0").len(), 2);
        assert_eq!(db.topics_under("/sys").len(), 3);
    }
}
