//! The Grafana data-source API (paper §5.4, Fig. 3).
//!
//! Grafana has no Cassandra plugin, so the paper implements one on top of
//! libDCDB.  Its distinguishing feature — absent from other data sources —
//! is *hierarchical* metric selection: drop-down menus per hierarchy level
//! (system → rack → chassis → node) backed by the sensor tree.  This module
//! provides the same operations as a JSON/HTTP API:
//!
//! * `GET /search?prefix=/a/b&level=N` — children at one hierarchy level
//!   (fills one drop-down),
//! * `GET /query?topic=/a/b/c&start=NS&end=NS&maxDataPoints=N` — a series,
//!   downsampled for display,
//! * `GET /query?...&agg=avg&intervalMs=300000` — *windowed aggregation*
//!   with pushdown: Grafana's `intervalMs` maps to the window size, `agg`
//!   is any `dcdb_query::AggFn` name (`avg`, `min`, `max`, `sum`, `count`,
//!   `stddev`, `p99`, `rate`, …), and `topic` may be a hierarchy *prefix*
//!   (fan-in over the sub-tree).  When `intervalMs` is absent the window
//!   falls out of `(end − start) / maxDataPoints`,
//! * `GET /query?...&agg=avg&groupBy=N` — *grouped* aggregation: instead of
//!   one fanned-in series, sensors partition by their topic's first `N`
//!   hierarchy components and every group aggregates into its own series
//!   (evaluated in parallel), returned as a JSON array of series objects
//!   tagged with their `group` key — one Grafana panel line per rack/node,
//! * `GET /annotations` style stats: `GET /stats?topic=...` (min/max/avg of
//!   the plotted metric, like the panel legend),
//! * `GET /debug/lockgraph` — the runtime-observed lock-order edges
//!   (`lock-trace` builds; `enabled: false` and no edges otherwise).
//!
//! Every data path builds a [`crate::QueryRequest`] and goes through
//! [`SensorDb::execute`].

use std::net::SocketAddr;
use std::sync::Arc;

use dcdb_http::json::Json;
use dcdb_http::server::{HttpServer, Method, Response, StatusCode};
use dcdb_http::Router;
use dcdb_store::reading::TimeRange;

use crate::api::{SensorDb, Series};
use crate::ops;
use crate::request::{QueryError, QueryRequest};

/// Build the data-source router over `db`.
pub fn router(db: Arc<SensorDb>) -> Router {
    let mut r = Router::new();

    let d = Arc::clone(&db);
    r.add(Method::Get, "/search", move |req| {
        let prefix = req.query_param("prefix").unwrap_or("/").to_string();
        let level = req.query_parsed("level", 0usize);
        let children: Vec<Json> =
            d.registry().children_at(&prefix, level).into_iter().map(Json::Str).collect();
        Response::json(&Json::Arr(children))
    });

    let d = Arc::clone(&db);
    r.add(Method::Get, "/query", move |req| {
        let Some(topic) = req.query_param("topic") else {
            return Response::error(StatusCode::BadRequest, "missing topic");
        };
        let start = req.query_parsed("start", 0i64);
        let end = req.query_parsed("end", i64::MAX);
        let max_points = req.query_parsed("maxDataPoints", 1_000usize);
        if start >= end {
            return Response::error(StatusCode::BadRequest, "start must precede end");
        }
        let range = TimeRange::new(start, end);
        match req.query_param("agg") {
            Some(name) => {
                let Some(agg) = dcdb_query::AggFn::parse(name) else {
                    return Response::error(StatusCode::BadRequest, "unknown agg");
                };
                // Grafana sends its panel resolution as intervalMs; fall
                // back to spreading the range over maxDataPoints windows
                let window_ns = req
                    .query_param("intervalMs")
                    .and_then(|v| v.parse::<i64>().ok())
                    .map(|ms| ms.saturating_mul(1_000_000))
                    .unwrap_or_else(|| range.duration() / max_points.max(1) as i64)
                    .max(1);
                let mut qreq = QueryRequest::new(topic).range(range).aggregate(agg, window_ns);
                let grouped = req.query_param("groupBy").is_some();
                if grouped {
                    let Some(level) = req.query_param("groupBy").and_then(|v| v.parse().ok())
                    else {
                        return Response::error(StatusCode::BadRequest, "bad groupBy level");
                    };
                    qreq = qreq.group_by(level);
                }
                match d.execute(&qreq) {
                    // grouped responses are an array of tagged series;
                    // ungrouped keep the single-object shape.  Aggregated
                    // readings are already windowed — no downsampling,
                    // averaging per-window maxima would change their meaning
                    Ok(resp) if grouped => {
                        let series: Vec<Json> = resp
                            .series
                            .iter()
                            .map(|g| {
                                let mut obj = series_obj(&g.series, None);
                                obj.insert(
                                    "group".into(),
                                    Json::str(g.key.clone().unwrap_or_default()),
                                );
                                obj.insert("sensors".into(), Json::Num(g.sensors as f64));
                                Json::Obj(obj)
                            })
                            .collect();
                        Response::json(&Json::Arr(series))
                    }
                    Ok(resp) => Response::json(&series_json(&resp.into_single(), None)),
                    Err(e @ (QueryError::MixedUnits { .. } | QueryError::InvalidRequest(_))) => {
                        Response::error(StatusCode::BadRequest, &e.to_string())
                    }
                    Err(e) => Response::error(StatusCode::InternalError, &e.to_string()),
                }
            }
            None if req.query_param("groupBy").is_some() => {
                // mirror QueryRequest::validate rather than dropping the
                // grouping the client asked for
                Response::error(StatusCode::BadRequest, "groupBy needs an agg")
            }
            None => match d.query(topic, range) {
                // raw series downsample to the panel resolution by bucket means
                Ok(series) => Response::json(&series_json(&series, Some(max_points))),
                Err(e) => Response::error(StatusCode::InternalError, &e.to_string()),
            },
        }
    });

    let d = Arc::clone(&db);
    r.add(Method::Get, "/metrics", move |_req| metrics_response(&d));

    let d = Arc::clone(&db);
    r.add(Method::Get, "/alerts", move |_req| alerts_response(&d));

    let d = Arc::clone(&db);
    r.add(Method::Get, "/events", move |req| events_response(&d, req));

    let d = Arc::clone(&db);
    r.add(Method::Get, "/debug/slow_queries", move |_req| slow_queries_response(&d));

    r.add(Method::Get, "/debug/lockgraph", move |_req| lockgraph_response());

    let d = Arc::clone(&db);
    r.add(Method::Get, "/stats", move |req| {
        let Some(topic) = req.query_param("topic") else {
            return Response::error(StatusCode::BadRequest, "missing topic");
        };
        let start = req.query_parsed("start", 0i64);
        let end = req.query_parsed("end", i64::MAX);
        match d.query(topic, TimeRange::new(start, end)) {
            Ok(series) => match ops::stats(&series.readings) {
                Some(st) => Response::json(&Json::obj([
                    ("count", Json::Num(st.count as f64)),
                    ("min", Json::Num(st.min)),
                    ("max", Json::Num(st.max)),
                    ("avg", Json::Num(st.mean)),
                ])),
                None => Response::error(StatusCode::NotFound, "no data in range"),
            },
            Err(e) => Response::error(StatusCode::InternalError, &e.to_string()),
        }
    });

    r
}

/// `GET /metrics`: the Prometheus text exposition of the cluster's whole
/// registry, with the `ALERTS{alertname=...,state=...}` block appended
/// when an alert engine is installed.  Served with the exposition-format
/// content type (`text/plain; version=0.0.4`) so scrapers negotiate it.
///
/// Shared by the Grafana router and the Collect Agent's REST API.
pub fn metrics_response(db: &SensorDb) -> Response {
    let mut text = db.metrics().render_prometheus();
    if let Some(engine) = db.alert_engine() {
        text.push_str(&engine.render_prometheus());
    }
    Response::prometheus(text)
}

/// `GET /alerts`: every known alert instance as JSON, plus engine totals.
/// Empty-but-valid when no engine is installed.
pub fn alerts_response(db: &SensorDb) -> Response {
    let (alerts, notifications, transitions) = match db.alert_engine() {
        Some(engine) => (engine.alerts(), engine.notifications(), engine.transitions()),
        None => (Vec::new(), 0, 0),
    };
    let arr: Vec<Json> = alerts
        .iter()
        .map(|a| {
            Json::obj([
                ("rule", Json::str(a.rule.clone())),
                ("topic", Json::str(a.topic.clone())),
                ("state", Json::str(a.state.as_str())),
                ("sinceNs", Json::Num(a.since_ns as f64)),
                ("value", Json::Num(a.value)),
                ("message", Json::str(a.message.clone())),
                ("notifications", Json::Num(a.notifications as f64)),
            ])
        })
        .collect();
    Response::json(&Json::obj([
        ("alerts", Json::Arr(arr)),
        ("notifications", Json::Num(notifications as f64)),
        ("transitions", Json::Num(transitions as f64)),
    ]))
}

/// `GET /events?since=<seq>`: the structured event journal, strictly after
/// `since` (0 = everything still buffered).  Clients page by passing the
/// `lastSeq` they saw; `dropped` counts events lost to ring overflow.
pub fn events_response(db: &SensorDb, req: &dcdb_http::server::Request) -> Response {
    let journal = db.events();
    let since = req.query_parsed("since", 0u64);
    let events: Vec<Json> = journal
        .since(since)
        .iter()
        .map(|e| {
            Json::obj([
                ("seq", Json::Num(e.seq as f64)),
                ("tsNs", Json::Num(e.ts_unix_ns as f64)),
                ("kind", Json::str(e.kind.as_str())),
                ("severity", Json::str(e.severity.as_str())),
                ("subject", Json::str(e.subject.clone())),
                ("message", Json::str(e.message.clone())),
            ])
        })
        .collect();
    Response::json(&Json::obj([
        ("events", Json::Arr(events)),
        ("lastSeq", Json::Num(journal.last_seq() as f64)),
        ("dropped", Json::Num(journal.dropped() as f64)),
    ]))
}

/// `GET /debug/slow_queries`: the last offenders over the slow-query
/// threshold, each with its full trace-span tree (nested JSON) and the
/// human-readable rendering `dcdbquery --trace` prints.
pub fn slow_queries_response(db: &SensorDb) -> Response {
    let log = db.slow_queries();
    let queries: Vec<Json> = log
        .entries()
        .iter()
        .map(|q| {
            Json::obj([
                ("seq", Json::Num(q.seq as f64)),
                ("tsNs", Json::Num(q.ts_unix_ns as f64)),
                ("totalNs", Json::Num(q.total_ns as f64)),
                ("summary", Json::str(q.summary.clone())),
                ("trace", trace_json(&q.trace)),
                ("rendered", Json::str(q.trace.render())),
            ])
        })
        .collect();
    Response::json(&Json::obj([
        ("thresholdNs", Json::Num(log.threshold_ns() as f64)),
        ("captured", Json::Num(log.total_captured() as f64)),
        ("queries", Json::Arr(queries)),
    ]))
}

/// `GET /debug/lockgraph`: the lock-order edges the runtime tracker has
/// observed so far (`lock-trace` feature; empty with `enabled: false`
/// otherwise).  Compare against the static graph in
/// `results/LINT_report.json` — every observed edge should be there.
pub fn lockgraph_response() -> Response {
    let edges: Vec<Json> = dcdb_obs::lockgraph::edges()
        .into_iter()
        .map(|(from, to)| Json::obj([("from", Json::str(from)), ("to", Json::str(to))]))
        .collect();
    Response::json(&Json::obj([
        ("enabled", Json::Bool(dcdb_obs::lockgraph::enabled())),
        ("edges", Json::Arr(edges)),
    ]))
}

/// A trace-span tree as nested JSON.
fn trace_json(span: &dcdb_obs::TraceSpan) -> Json {
    let meta: Vec<(String, Json)> =
        span.meta.iter().map(|(k, v)| (k.clone(), Json::Num(*v as f64))).collect();
    Json::obj([
        ("stage", Json::str(span.stage.clone())),
        ("wallNs", Json::Num(span.wall_ns as f64)),
        ("meta", Json::Obj(meta.into_iter().collect())),
        ("children", Json::Arr(span.children.iter().map(trace_json).collect())),
    ])
}

/// One series as a Grafana data-source object; raw series downsample to
/// `max_points` by bucket means, aggregated series pass `None`.
fn series_json(series: &Series, max_points: Option<usize>) -> Json {
    Json::Obj(series_obj(series, max_points))
}

/// The key/value pairs behind [`series_json`]; the grouped path extends
/// them with `group`/`sensors` metadata before wrapping.
fn series_obj(
    series: &Series,
    max_points: Option<usize>,
) -> std::collections::BTreeMap<String, Json> {
    let points = match max_points {
        Some(n) => ops::downsample(&series.readings, n),
        None => series.readings.clone(),
    };
    let datapoints: Vec<Json> = points
        .iter()
        .map(|r| Json::Arr(vec![Json::Num(r.value), Json::Num(r.ts as f64)]))
        .collect();
    [
        ("target".to_string(), Json::str(series.topic.clone())),
        ("unit".to_string(), Json::str(series.unit.name)),
        ("datapoints".to_string(), Json::Arr(datapoints)),
    ]
    .into_iter()
    .collect()
}

/// Serve the data source on `bind`.
///
/// # Errors
/// Propagates bind failures.
pub fn serve(db: Arc<SensorDb>, bind: SocketAddr) -> std::io::Result<HttpServer> {
    HttpServer::start(bind, router(db).into_handler())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdb_http::server::Request;
    use std::collections::HashMap;

    fn handler() -> (Arc<SensorDb>, dcdb_http::server::Handler) {
        let db = SensorDb::in_memory();
        for rack in 0..2 {
            for node in 0..3 {
                let t = format!("/lrz/sys/rack{rack}/node{node}/power");
                for ts in 0..100 {
                    db.insert(&t, ts * 1_000_000, 200.0 + node as f64).unwrap();
                }
            }
        }
        let h = router(Arc::clone(&db)).into_handler();
        (db, h)
    }

    fn get(h: &dcdb_http::server::Handler, path: &str, query: &[(&str, &str)]) -> (u16, Json) {
        let req = Request {
            method: Method::Get,
            path: path.to_string(),
            query: query.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            params: HashMap::new(),
            headers: HashMap::new(),
            body: Vec::new(),
        };
        let resp = h(&req);
        let body = String::from_utf8_lossy(&resp.body).into_owned();
        (resp.status.code(), Json::parse(&body).unwrap_or(Json::Null))
    }

    #[test]
    fn search_walks_hierarchy_levels() {
        let (_db, h) = handler();
        let (code, j) = get(&h, "/search", &[("prefix", "/lrz/sys"), ("level", "2")]);
        assert_eq!(code, 200);
        let racks: Vec<&str> = j.as_arr().unwrap().iter().filter_map(Json::as_str).collect();
        assert_eq!(racks, vec!["rack0", "rack1"]);
        let (_, j) = get(&h, "/search", &[("prefix", "/lrz/sys/rack0"), ("level", "3")]);
        assert_eq!(j.as_arr().unwrap().len(), 3);
    }

    #[test]
    fn query_returns_grafana_datapoints() {
        let (_db, h) = handler();
        let (code, j) = get(
            &h,
            "/query",
            &[("topic", "/lrz/sys/rack0/node1/power"), ("start", "0"), ("end", "100000000")],
        );
        assert_eq!(code, 200);
        assert_eq!(j.get("unit").unwrap().as_str(), Some(""));
        let dp = j.get("datapoints").unwrap().as_arr().unwrap();
        assert_eq!(dp.len(), 100);
        // [value, timestamp] pairs
        assert_eq!(dp[0].idx(0).unwrap().as_f64(), Some(201.0));
    }

    #[test]
    fn query_downsamples() {
        let (_db, h) = handler();
        let (_, j) =
            get(&h, "/query", &[("topic", "/lrz/sys/rack0/node0/power"), ("maxDataPoints", "10")]);
        assert!(j.get("datapoints").unwrap().as_arr().unwrap().len() <= 10);
    }

    #[test]
    fn bad_requests_rejected() {
        let (_db, h) = handler();
        assert_eq!(get(&h, "/query", &[]).0, 400);
        assert_eq!(get(&h, "/query", &[("topic", "/x"), ("start", "9"), ("end", "1")]).0, 400);
        assert_eq!(get(&h, "/query", &[("topic", "/x"), ("agg", "bogus")]).0, 400);
        assert_eq!(get(&h, "/stats", &[("topic", "/nope/x")]).0, 404);
    }

    #[test]
    fn windowed_aggregation_over_interval_ms() {
        let (db, h) = handler();
        // 100 readings at 1 ms spacing; 10 ms windows → 10 points
        let (code, j) = get(
            &h,
            "/query",
            &[
                ("topic", "/lrz/sys/rack0/node1/power"),
                ("start", "0"),
                ("end", "100000000"),
                ("agg", "avg"),
                ("intervalMs", "10"),
            ],
        );
        assert_eq!(code, 200);
        assert_eq!(j.get("target").unwrap().as_str(), Some("/lrz/sys/rack0/node1/power/+avg"));
        let dp = j.get("datapoints").unwrap().as_arr().unwrap();
        assert_eq!(dp.len(), 10);
        assert_eq!(dp[0].idx(0).unwrap().as_f64(), Some(201.0));
        // the endpoint reports exactly what the library API computes
        let lib = db
            .query_aggregate(
                "/lrz/sys/rack0/node1/power",
                TimeRange::new(0, 100_000_000),
                10_000_000,
                dcdb_query::AggFn::Avg,
            )
            .unwrap();
        assert_eq!(lib.readings.len(), dp.len());
        for (r, p) in lib.readings.iter().zip(dp) {
            assert_eq!(p.idx(0).unwrap().as_f64(), Some(r.value));
            assert_eq!(p.idx(1).unwrap().as_f64(), Some(r.ts as f64));
        }
    }

    #[test]
    fn aggregation_fans_in_over_prefix() {
        let (_db, h) = handler();
        // sum of all of rack0's node power sensors (200 + 201 + 202)
        let (code, j) = get(
            &h,
            "/query",
            &[
                ("topic", "/lrz/sys/rack0"),
                ("start", "0"),
                ("end", "100000000"),
                ("agg", "sum"),
                ("intervalMs", "1"),
            ],
        );
        assert_eq!(code, 200);
        let dp = j.get("datapoints").unwrap().as_arr().unwrap();
        assert_eq!(dp.len(), 100);
        assert_eq!(dp[0].idx(0).unwrap().as_f64(), Some(603.0));
    }

    #[test]
    fn aggregated_series_are_not_mean_downsampled() {
        let (_db, h) = handler();
        // 100 one-ms windows but maxDataPoints=10: the per-window maxima
        // must come back untouched, not averaged into buckets
        let (code, j) = get(
            &h,
            "/query",
            &[
                ("topic", "/lrz/sys/rack0/node2/power"),
                ("start", "0"),
                ("end", "100000000"),
                ("agg", "max"),
                ("intervalMs", "1"),
                ("maxDataPoints", "10"),
            ],
        );
        assert_eq!(code, 200);
        let dp = j.get("datapoints").unwrap().as_arr().unwrap();
        assert_eq!(dp.len(), 100, "explicit intervalMs wins over maxDataPoints");
        assert!(dp.iter().all(|p| p.idx(0).unwrap().as_f64() == Some(202.0)));
    }

    #[test]
    fn aggregation_window_defaults_to_max_points() {
        let (_db, h) = handler();
        let (code, j) = get(
            &h,
            "/query",
            &[
                ("topic", "/lrz/sys/rack0/node0/power"),
                ("start", "0"),
                ("end", "100000000"),
                ("agg", "max"),
                ("maxDataPoints", "5"),
            ],
        );
        assert_eq!(code, 200);
        assert!(j.get("datapoints").unwrap().as_arr().unwrap().len() <= 5);
    }

    #[test]
    fn group_by_returns_one_series_per_rack() {
        let (_db, h) = handler();
        let (code, j) = get(
            &h,
            "/query",
            &[
                ("topic", "/lrz/sys"),
                ("start", "0"),
                ("end", "100000000"),
                ("agg", "sum"),
                ("intervalMs", "1"),
                ("groupBy", "3"),
            ],
        );
        assert_eq!(code, 200);
        let series = j.as_arr().unwrap();
        assert_eq!(series.len(), 2, "{j:?}");
        let rack0 = &series[0];
        assert_eq!(rack0.get("group").unwrap().as_str(), Some("/lrz/sys/rack0"));
        assert_eq!(rack0.get("target").unwrap().as_str(), Some("/lrz/sys/rack0/+sum"));
        assert_eq!(rack0.get("sensors").unwrap().as_f64(), Some(3.0));
        let dp = rack0.get("datapoints").unwrap().as_arr().unwrap();
        assert_eq!(dp.len(), 100);
        // 200 + 201 + 202 per millisecond window
        assert_eq!(dp[0].idx(0).unwrap().as_f64(), Some(603.0));
        assert_eq!(series[1].get("group").unwrap().as_str(), Some("/lrz/sys/rack1"));
    }

    #[test]
    fn group_by_validation_errors_are_client_errors() {
        let (_db, h) = handler();
        let q = [("topic", "/lrz/sys"), ("agg", "avg"), ("groupBy", "bogus")];
        assert_eq!(get(&h, "/query", &q).0, 400);
        let q = [("topic", "/lrz/sys"), ("agg", "avg"), ("groupBy", "99")];
        assert_eq!(get(&h, "/query", &q).0, 400);
        // groupBy without an aggregation is rejected, not silently dropped
        let q = [("topic", "/lrz/sys"), ("groupBy", "2")];
        assert_eq!(get(&h, "/query", &q).0, 400);
    }

    #[test]
    fn mixed_units_rejected_with_a_clear_error() {
        let (db, h) = handler();
        db.set_meta(
            "/lrz/sys/rack0/node0/power",
            crate::api::SensorMeta::with_unit(crate::units::Unit::WATT),
        );
        db.set_meta(
            "/lrz/sys/rack0/node1/power",
            crate::api::SensorMeta::with_unit(crate::units::Unit::JOULE),
        );
        let (code, _) =
            get(&h, "/query", &[("topic", "/lrz/sys/rack0"), ("agg", "avg"), ("intervalMs", "10")]);
        assert_eq!(code, 400, "mixed W/J fan-in must not silently aggregate");
    }

    #[test]
    fn metrics_expose_prometheus_text() {
        let (db, h) = handler();
        db.query_aggregate("/lrz/sys/rack0", TimeRange::all(), 10_000_000, dcdb_query::AggFn::Avg)
            .unwrap();
        let req = Request {
            method: Method::Get,
            path: "/metrics".to_string(),
            query: HashMap::new(),
            params: HashMap::new(),
            headers: HashMap::new(),
            body: Vec::new(),
        };
        let resp = h(&req);
        assert_eq!(resp.status.code(), 200);
        // the Prometheus text exposition format version, so scrapers
        // negotiate the format instead of guessing
        assert_eq!(resp.content_type, "text/plain; version=0.0.4");
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("# TYPE dcdb_inserts_total counter"), "{text}");
        assert!(text.contains("# TYPE dcdb_query_stage_ns summary"), "{text}");
        assert!(text.contains("dcdb_query_stage_ns_count{stage=\"fold\"}"), "{text}");
        assert!(text.contains("dcdb_queries_total"), "{text}");
    }

    #[test]
    fn alerts_endpoint_tracks_engine_state() {
        let (db, h) = handler();
        // without an engine the endpoint answers an empty-but-valid shape
        let (code, j) = get(&h, "/alerts", &[]);
        assert_eq!(code, 200);
        assert!(j.get("alerts").unwrap().as_arr().unwrap().is_empty());
        let engine = Arc::new(crate::alerts::AlertEngine::new());
        engine.add_rule(crate::alerts::AlertRule::new(
            "hot",
            "/lrz/sys/+/+/power",
            crate::alerts::AlertCondition::Above(201.5),
        ));
        db.set_alert_engine(Arc::clone(&engine));
        engine.observe("/lrz/sys/rack0/node2/power", 1_000, 202.0);
        let (code, j) = get(&h, "/alerts", &[]);
        assert_eq!(code, 200);
        let alerts = j.get("alerts").unwrap().as_arr().unwrap();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].get("rule").unwrap().as_str(), Some("hot"));
        assert_eq!(alerts[0].get("state").unwrap().as_str(), Some("firing"));
        assert_eq!(alerts[0].get("topic").unwrap().as_str(), Some("/lrz/sys/rack0/node2/power"));
        assert_eq!(j.get("notifications").unwrap().as_f64(), Some(1.0));
        // and the firing instance shows up in the /metrics exposition
        let (_, _) = get(&h, "/metrics", &[]);
        let req = Request {
            method: Method::Get,
            path: "/metrics".to_string(),
            query: HashMap::new(),
            params: HashMap::new(),
            headers: HashMap::new(),
            body: Vec::new(),
        };
        let text = String::from_utf8(h(&req).body).unwrap();
        assert!(text.contains("ALERTS{alertname=\"hot\",state=\"firing\""), "{text}");
        assert!(text.contains("dcdb_alerts_notifications_total 1"), "{text}");
    }

    #[test]
    fn events_endpoint_pages_by_sequence() {
        let (db, h) = handler();
        let journal = db.events();
        journal.record(
            dcdb_obs::EventKind::ConfigChange,
            dcdb_obs::Severity::Info,
            "test",
            "first",
        );
        journal.record(
            dcdb_obs::EventKind::BackpressureStall,
            dcdb_obs::Severity::Warning,
            "store",
            "second",
        );
        let (code, j) = get(&h, "/events", &[]);
        assert_eq!(code, 200);
        let events = j.get("events").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("kind").unwrap().as_str(), Some("config_change"));
        assert_eq!(events[1].get("severity").unwrap().as_str(), Some("warning"));
        let last = j.get("lastSeq").unwrap().as_f64().unwrap();
        // paging from the first event's seq returns only the second
        let first_seq = events[0].get("seq").unwrap().as_f64().unwrap();
        let (_, j) = get(&h, "/events", &[("since", &format!("{first_seq}"))]);
        let events = j.get("events").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("message").unwrap().as_str(), Some("second"));
        // and from the last seq, nothing
        let (_, j) = get(&h, "/events", &[("since", &format!("{last}"))]);
        assert!(j.get("events").unwrap().as_arr().unwrap().is_empty());
    }

    #[test]
    fn slow_queries_endpoint_exposes_span_trees() {
        let (db, h) = handler();
        let (code, j) = get(&h, "/debug/slow_queries", &[]);
        assert_eq!(code, 200);
        assert_eq!(j.get("thresholdNs").unwrap().as_f64(), Some(0.0));
        assert!(j.get("queries").unwrap().as_arr().unwrap().is_empty());
        db.slow_queries().set_threshold_ns(1);
        db.query_aggregate("/lrz/sys/rack0", TimeRange::all(), 10_000_000, dcdb_query::AggFn::Avg)
            .unwrap();
        let (_, j) = get(&h, "/debug/slow_queries", &[]);
        let queries = j.get("queries").unwrap().as_arr().unwrap();
        assert_eq!(queries.len(), 1);
        let q = &queries[0];
        assert!(q.get("summary").unwrap().as_str().unwrap().contains("/lrz/sys/rack0"));
        let trace = q.get("trace").unwrap();
        assert_eq!(trace.get("stage").unwrap().as_str(), Some("execute"));
        let children = trace.get("children").unwrap().as_arr().unwrap();
        assert_eq!(children[0].get("stage").unwrap().as_str(), Some("plan"));
        assert!(q.get("rendered").unwrap().as_str().unwrap().contains("execute"));
    }

    #[test]
    fn stats_summarise_series() {
        let (_db, h) = handler();
        let (code, j) = get(&h, "/stats", &[("topic", "/lrz/sys/rack1/node2/power")]);
        assert_eq!(code, 200);
        assert_eq!(j.get("count").unwrap().as_f64(), Some(100.0));
        assert_eq!(j.get("avg").unwrap().as_f64(), Some(202.0));
    }

    #[test]
    fn virtual_sensors_visible_to_grafana() {
        let (db, h) = handler();
        db.define_virtual(
            "/v/rack0_power",
            "\"/lrz/sys/rack0/node0/power\" + \"/lrz/sys/rack0/node1/power\" + \"/lrz/sys/rack0/node2/power\"",
            crate::units::Unit::WATT,
        )
        .unwrap();
        let (code, j) = get(&h, "/query", &[("topic", "/v/rack0_power")]);
        assert_eq!(code, 200);
        let dp = j.get("datapoints").unwrap().as_arr().unwrap();
        assert_eq!(dp.len(), 100);
        assert_eq!(dp[0].idx(0).unwrap().as_f64(), Some(603.0));
    }
}
