//! The Grafana data-source API (paper §5.4, Fig. 3).
//!
//! Grafana has no Cassandra plugin, so the paper implements one on top of
//! libDCDB.  Its distinguishing feature — absent from other data sources —
//! is *hierarchical* metric selection: drop-down menus per hierarchy level
//! (system → rack → chassis → node) backed by the sensor tree.  This module
//! provides the same operations as a JSON/HTTP API:
//!
//! * `GET /search?prefix=/a/b&level=N` — children at one hierarchy level
//!   (fills one drop-down),
//! * `GET /query?topic=/a/b/c&start=NS&end=NS&maxDataPoints=N` — a series,
//!   downsampled for display,
//! * `GET /annotations` style stats: `GET /stats?topic=...` (min/max/avg of
//!   the plotted metric, like the panel legend).

use std::net::SocketAddr;
use std::sync::Arc;

use dcdb_http::json::Json;
use dcdb_http::server::{HttpServer, Method, Response, StatusCode};
use dcdb_http::Router;
use dcdb_store::reading::TimeRange;

use crate::api::SensorDb;
use crate::ops;

/// Build the data-source router over `db`.
pub fn router(db: Arc<SensorDb>) -> Router {
    let mut r = Router::new();

    let d = Arc::clone(&db);
    r.add(Method::Get, "/search", move |req| {
        let prefix = req.query_param("prefix").unwrap_or("/").to_string();
        let level: usize = req.query_param("level").and_then(|l| l.parse().ok()).unwrap_or(0);
        let children: Vec<Json> =
            d.registry().children_at(&prefix, level).into_iter().map(Json::Str).collect();
        Response::json(&Json::Arr(children))
    });

    let d = Arc::clone(&db);
    r.add(Method::Get, "/query", move |req| {
        let Some(topic) = req.query_param("topic") else {
            return Response::error(StatusCode::BadRequest, "missing topic");
        };
        let start: i64 = req.query_param("start").and_then(|v| v.parse().ok()).unwrap_or(0);
        let end: i64 = req.query_param("end").and_then(|v| v.parse().ok()).unwrap_or(i64::MAX);
        let max_points: usize =
            req.query_param("maxDataPoints").and_then(|v| v.parse().ok()).unwrap_or(1_000);
        if start >= end {
            return Response::error(StatusCode::BadRequest, "start must precede end");
        }
        match d.query(topic, TimeRange::new(start, end)) {
            Ok(series) => {
                let points = ops::downsample(&series.readings, max_points);
                let datapoints: Vec<Json> = points
                    .iter()
                    .map(|r| Json::Arr(vec![Json::Num(r.value), Json::Num(r.ts as f64)]))
                    .collect();
                Response::json(&Json::obj([
                    ("target", Json::str(series.topic)),
                    ("unit", Json::str(series.unit.name)),
                    ("datapoints", Json::Arr(datapoints)),
                ]))
            }
            Err(e) => Response::error(StatusCode::InternalError, &e.to_string()),
        }
    });

    let d = Arc::clone(&db);
    r.add(Method::Get, "/stats", move |req| {
        let Some(topic) = req.query_param("topic") else {
            return Response::error(StatusCode::BadRequest, "missing topic");
        };
        let start: i64 = req.query_param("start").and_then(|v| v.parse().ok()).unwrap_or(0);
        let end: i64 = req.query_param("end").and_then(|v| v.parse().ok()).unwrap_or(i64::MAX);
        match d.query(topic, TimeRange::new(start, end)) {
            Ok(series) => match ops::stats(&series.readings) {
                Some(st) => Response::json(&Json::obj([
                    ("count", Json::Num(st.count as f64)),
                    ("min", Json::Num(st.min)),
                    ("max", Json::Num(st.max)),
                    ("avg", Json::Num(st.mean)),
                ])),
                None => Response::error(StatusCode::NotFound, "no data in range"),
            },
            Err(e) => Response::error(StatusCode::InternalError, &e.to_string()),
        }
    });

    r
}

/// Serve the data source on `bind`.
///
/// # Errors
/// Propagates bind failures.
pub fn serve(db: Arc<SensorDb>, bind: SocketAddr) -> std::io::Result<HttpServer> {
    HttpServer::start(bind, router(db).into_handler())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdb_http::server::Request;
    use std::collections::HashMap;

    fn handler() -> (Arc<SensorDb>, dcdb_http::server::Handler) {
        let db = SensorDb::in_memory();
        for rack in 0..2 {
            for node in 0..3 {
                let t = format!("/lrz/sys/rack{rack}/node{node}/power");
                for ts in 0..100 {
                    db.insert(&t, ts * 1_000_000, 200.0 + node as f64).unwrap();
                }
            }
        }
        let h = router(Arc::clone(&db)).into_handler();
        (db, h)
    }

    fn get(h: &dcdb_http::server::Handler, path: &str, query: &[(&str, &str)]) -> (u16, Json) {
        let req = Request {
            method: Method::Get,
            path: path.to_string(),
            query: query.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            params: HashMap::new(),
            headers: HashMap::new(),
            body: Vec::new(),
        };
        let resp = h(&req);
        let body = String::from_utf8_lossy(&resp.body).into_owned();
        (resp.status.code(), Json::parse(&body).unwrap_or(Json::Null))
    }

    #[test]
    fn search_walks_hierarchy_levels() {
        let (_db, h) = handler();
        let (code, j) = get(&h, "/search", &[("prefix", "/lrz/sys"), ("level", "2")]);
        assert_eq!(code, 200);
        let racks: Vec<&str> = j.as_arr().unwrap().iter().filter_map(Json::as_str).collect();
        assert_eq!(racks, vec!["rack0", "rack1"]);
        let (_, j) = get(&h, "/search", &[("prefix", "/lrz/sys/rack0"), ("level", "3")]);
        assert_eq!(j.as_arr().unwrap().len(), 3);
    }

    #[test]
    fn query_returns_grafana_datapoints() {
        let (_db, h) = handler();
        let (code, j) = get(
            &h,
            "/query",
            &[("topic", "/lrz/sys/rack0/node1/power"), ("start", "0"), ("end", "100000000")],
        );
        assert_eq!(code, 200);
        assert_eq!(j.get("unit").unwrap().as_str(), Some(""));
        let dp = j.get("datapoints").unwrap().as_arr().unwrap();
        assert_eq!(dp.len(), 100);
        // [value, timestamp] pairs
        assert_eq!(dp[0].idx(0).unwrap().as_f64(), Some(201.0));
    }

    #[test]
    fn query_downsamples() {
        let (_db, h) = handler();
        let (_, j) =
            get(&h, "/query", &[("topic", "/lrz/sys/rack0/node0/power"), ("maxDataPoints", "10")]);
        assert!(j.get("datapoints").unwrap().as_arr().unwrap().len() <= 10);
    }

    #[test]
    fn bad_requests_rejected() {
        let (_db, h) = handler();
        assert_eq!(get(&h, "/query", &[]).0, 400);
        assert_eq!(get(&h, "/query", &[("topic", "/x"), ("start", "9"), ("end", "1")]).0, 400);
        assert_eq!(get(&h, "/stats", &[("topic", "/nope/x")]).0, 404);
    }

    #[test]
    fn stats_summarise_series() {
        let (_db, h) = handler();
        let (code, j) = get(&h, "/stats", &[("topic", "/lrz/sys/rack1/node2/power")]);
        assert_eq!(code, 200);
        assert_eq!(j.get("count").unwrap().as_f64(), Some(100.0));
        assert_eq!(j.get("avg").unwrap().as_f64(), Some(202.0));
    }

    #[test]
    fn virtual_sensors_visible_to_grafana() {
        let (db, h) = handler();
        db.define_virtual(
            "/v/rack0_power",
            "\"/lrz/sys/rack0/node0/power\" + \"/lrz/sys/rack0/node1/power\" + \"/lrz/sys/rack0/node2/power\"",
            crate::units::Unit::WATT,
        )
        .unwrap();
        let (code, j) = get(&h, "/query", &[("topic", "/v/rack0_power")]);
        assert_eq!(code, 200);
        let dp = j.get("datapoints").unwrap().as_arr().unwrap();
        assert_eq!(dp.len(), 100);
        assert_eq!(dp[0].idx(0).unwrap().as_f64(), Some(603.0));
    }
}
