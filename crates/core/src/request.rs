//! The unified typed query API: [`QueryRequest`] in, [`QueryResponse`] out.
//!
//! The paper's pitch is *one query surface over the whole sensor tree*
//! (§3.2, §4.3); this module is that surface.  Every consumer — the Grafana
//! data source, the Collect Agent's REST API, `dcdbquery`, the analytics
//! operators — builds a [`QueryRequest`] and hands it to
//! [`SensorDb::execute`](crate::SensorDb::execute); the legacy
//! `query`/`query_subtree`/`query_aggregate`/`aggregate_subtree` methods are
//! thin wrappers over the same path.
//!
//! A request names a *target* (exact topic, hierarchy prefix, or
//! auto-detect), a [`TimeRange`], and optionally:
//!
//! * an aggregation ([`AggFn`]) with a window (`window_ns`) for windowed
//!   pushdown aggregation, or without one for interpolated union-grid
//!   aggregation (the old `aggregate_subtree` semantics, generalised beyond
//!   `sum`),
//! * a `group_by` hierarchy level: instead of fanning the whole sub-tree
//!   into one series, sensors partition by their topic's first `level`
//!   components and every group aggregates into its own series —
//!   evaluated **concurrently** on `dcdb-query`'s scoped thread pool,
//! * a per-series `limit` (keep the most recent `n` readings) and a
//!   response ordering ([`SeriesOrder`]).
//!
//! ```
//! use dcdb_core::{QueryRequest, SensorDb};
//! use dcdb_query::AggFn;
//! use dcdb_store::reading::TimeRange;
//!
//! let db = SensorDb::in_memory();
//! for rack in 0..2 {
//!     for node in 0..4 {
//!         for ts in 0..60i64 {
//!             db.insert(
//!                 &format!("/sys/rack{rack}/node{node}/power"),
//!                 ts * 1_000_000_000,
//!                 200.0 + node as f64,
//!             )
//!             .unwrap();
//!         }
//!     }
//! }
//! // average power per rack, 1-minute windows, one series per rack
//! let req = QueryRequest::new("/sys")
//!     .range(TimeRange::new(0, 60_000_000_000))
//!     .aggregate(AggFn::Avg, 60_000_000_000)
//!     .group_by(2);
//! let resp = db.execute(&req).unwrap();
//! assert_eq!(resp.series.len(), 2);
//! assert_eq!(resp.series[0].key.as_deref(), Some("/sys/rack0"));
//! assert_eq!(resp.series[0].sensors, 4);
//! ```

use std::fmt;

use dcdb_query::AggFn;
use dcdb_store::reading::TimeRange;

use crate::api::Series;
use crate::vsensor::VsError;

/// How a request's target string resolves to sensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TargetMode {
    /// Exact topic only — an unknown topic yields an empty series, never a
    /// sub-tree fan-out (the behaviour of the legacy `query`).
    Exact,
    /// Exact topic when one is registered under the target, else fan out
    /// over the sub-tree below it (the behaviour of the legacy
    /// `query_aggregate`).
    #[default]
    Auto,
    /// Always fan out over the sub-tree below the target, even when the
    /// target itself names a sensor (the behaviour of the legacy
    /// `query_subtree`).  Virtual sensors live outside the physical
    /// hierarchy and are not consulted.
    Subtree,
}

/// How sensor units combine when several sensors fan into one series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnitMode {
    /// `Unit::NONE` (no metadata) is compatible with anything; two distinct
    /// *concrete* units in one group are a [`QueryError::MixedUnits`] error
    /// instead of a silently wrong unit label.
    #[default]
    Strict,
    /// The pre-redesign behaviour: the first sensor's unit wins, silently.
    /// Only the legacy wrappers use this.
    Lenient,
}

/// Ordering of the series in a [`QueryResponse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeriesOrder {
    /// By group key (or topic), ascending — the deterministic default.
    #[default]
    Key,
    /// Hottest first: by each series' mean value, descending ("which rack
    /// draws the most power").
    MeanDesc,
}

/// A typed query over the sensor tree, built with a fluent builder and
/// executed by [`SensorDb::execute`](crate::SensorDb::execute).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Topic or hierarchy prefix the query targets.
    pub target: String,
    /// How `target` resolves ([`TargetMode::Auto`] by default).
    pub mode: TargetMode,
    /// Half-open time range `[start, end)`.
    pub range: TimeRange,
    /// Aggregation; `None` returns raw readings.
    pub agg: Option<AggFn>,
    /// Window size for windowed aggregation.  With `agg` set but no window,
    /// sensors interpolate onto the union of their timestamps and `agg`
    /// folds the samples per grid point (the one-shot "rack power right
    /// now" aggregate).
    pub window_ns: Option<i64>,
    /// Partition the resolved sensors by their topic's first `n` hierarchy
    /// components; each group becomes one response series.  Requires `agg`.
    pub group_by: Option<usize>,
    /// Keep only the most recent `n` readings of every series.
    pub limit: Option<usize>,
    /// Response series ordering.
    pub order: SeriesOrder,
    /// Unit handling under fan-in.
    pub units: UnitMode,
    /// Opt into per-stage tracing: the response carries a
    /// [`TraceSpan`](dcdb_obs::TraceSpan) tree (stage wall times, blocks
    /// decoded, cache hits) — `dcdbquery --explain`.  Traced execution is
    /// bit-identical to untraced.
    pub trace: bool,
}

impl QueryRequest {
    /// A request targeting `topic_or_prefix` with [`TargetMode::Auto`]
    /// resolution over all time.
    pub fn new(topic_or_prefix: &str) -> QueryRequest {
        QueryRequest {
            target: topic_or_prefix.to_string(),
            mode: TargetMode::Auto,
            range: TimeRange::all(),
            agg: None,
            window_ns: None,
            group_by: None,
            limit: None,
            order: SeriesOrder::Key,
            units: UnitMode::Strict,
            trace: false,
        }
    }

    /// A request for exactly one topic ([`TargetMode::Exact`]).
    pub fn topic(topic: &str) -> QueryRequest {
        QueryRequest { mode: TargetMode::Exact, ..QueryRequest::new(topic) }
    }

    /// A request fanning over the sub-tree below `prefix`
    /// ([`TargetMode::Subtree`]).
    pub fn subtree(prefix: &str) -> QueryRequest {
        QueryRequest { mode: TargetMode::Subtree, ..QueryRequest::new(prefix) }
    }

    /// Restrict to `[start, end)`.
    pub fn range(mut self, range: TimeRange) -> QueryRequest {
        self.range = range;
        self
    }

    /// Windowed aggregation: `agg` over fixed `window_ns` windows.
    pub fn aggregate(mut self, agg: AggFn, window_ns: i64) -> QueryRequest {
        self.agg = Some(agg);
        self.window_ns = Some(window_ns);
        self
    }

    /// Union-grid aggregation: interpolate every sensor onto the union of
    /// their timestamps and fold `agg` over the samples at each grid point
    /// (the legacy `aggregate_subtree`, generalised beyond `sum`).
    pub fn aggregate_interpolated(mut self, agg: AggFn) -> QueryRequest {
        self.agg = Some(agg);
        self.window_ns = None;
        self
    }

    /// Group the fan-in by the topics' first `level` hierarchy components.
    pub fn group_by(mut self, level: usize) -> QueryRequest {
        self.group_by = Some(level);
        self
    }

    /// Keep only the most recent `n` readings per series.
    pub fn limit(mut self, n: usize) -> QueryRequest {
        self.limit = Some(n);
        self
    }

    /// Order the response series.
    pub fn order(mut self, order: SeriesOrder) -> QueryRequest {
        self.order = order;
        self
    }

    /// Use the legacy first-unit-wins behaviour under fan-in.
    pub fn lenient_units(mut self) -> QueryRequest {
        self.units = UnitMode::Lenient;
        self
    }

    /// Return a per-stage [`TraceSpan`](dcdb_obs::TraceSpan) tree with the
    /// response (`dcdbquery --explain`).  Results stay bit-identical.
    pub fn traced(mut self) -> QueryRequest {
        self.trace = true;
        self
    }

    /// Check the request's internal consistency (ranges, windows, group-by
    /// prerequisites).  [`SensorDb::execute`](crate::SensorDb::execute)
    /// calls this first, so every surface rejects malformed requests with
    /// the same typed error.
    ///
    /// # Errors
    /// Returns [`QueryError::InvalidRequest`] describing the first problem.
    pub fn validate(&self) -> Result<(), QueryError> {
        if let Some(w) = self.window_ns {
            if self.agg.is_none() {
                return Err(QueryError::InvalidRequest("a window needs an aggregation".into()));
            }
            if w <= 0 {
                return Err(QueryError::InvalidRequest("window must be positive".into()));
            }
        }
        if let Some(level) = self.group_by {
            if self.agg.is_none() {
                return Err(QueryError::InvalidRequest("group_by needs an aggregation".into()));
            }
            if level == 0 || level > dcdb_sid::LEVELS {
                return Err(QueryError::InvalidRequest(format!(
                    "group_by level {level} outside 1..={}",
                    dcdb_sid::LEVELS
                )));
            }
        }
        if self.agg == Some(AggFn::Rate) && self.window_ns.is_none() {
            return Err(QueryError::InvalidRequest(
                "rate needs a window (interpolated rate is undefined)".into(),
            ));
        }
        Ok(())
    }
}

/// Errors produced by [`SensorDb::execute`](crate::SensorDb::execute).
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// A fan-in group mixes distinct concrete units (e.g. W and J): the
    /// aggregate would be physically meaningless, and the old API silently
    /// labelled it with the first sensor's unit.
    MixedUnits {
        /// The group key (or fan-in prefix) whose sensors disagree.
        group: String,
        /// The distinct unit names found, in first-seen order.
        units: Vec<&'static str>,
    },
    /// The request is self-contradictory (bad range/window/group-by).
    InvalidRequest(String),
    /// Virtual-sensor evaluation failed.
    Virtual(VsError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::MixedUnits { group, units } => {
                write!(f, "mixed units under {group:?}: {}", units.join(" vs "))
            }
            QueryError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            QueryError::Virtual(e) => write!(f, "virtual sensor: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<VsError> for QueryError {
    fn from(e: VsError) -> Self {
        QueryError::Virtual(e)
    }
}

/// One series of a [`QueryResponse`]: the data plus where it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSeries {
    /// The group key (the topic prefix naming the group) for grouped
    /// queries; `None` for ungrouped single-series results and raw
    /// per-sensor series.
    pub key: Option<String>,
    /// Number of sensors fanned into this series.
    pub sensors: usize,
    /// The series itself (topic, readings, unit).
    pub series: Series,
}

/// The result of [`SensorDb::execute`](crate::SensorDb::execute): one or
/// more series, each tagged with its group key and unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResponse {
    /// Result series, in the requested [`SeriesOrder`].
    pub series: Vec<GroupSeries>,
    /// The per-stage span tree, present iff the request set
    /// [`QueryRequest::traced`].
    pub trace: Option<dcdb_obs::TraceSpan>,
}

impl QueryResponse {
    /// Total readings across all series.
    pub fn len(&self) -> usize {
        self.series.iter().map(|s| s.series.readings.len()).sum()
    }

    /// True when no series (or only empty series) came back.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Collapse into a single [`Series`] — the shape of the legacy
    /// single-series APIs.  Panics are avoided: an empty response yields an
    /// empty default series.
    pub fn into_single(mut self) -> Series {
        if self.series.is_empty() {
            return Series { topic: String::new(), readings: Vec::new(), unit: Default::default() };
        }
        self.series.swap_remove(0).series
    }

    /// Unwrap into plain series, dropping group tags (legacy
    /// `query_subtree` shape).
    pub fn into_series(self) -> Vec<Series> {
        self.series.into_iter().map(|g| g.series).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes() {
        let req = QueryRequest::new("/sys")
            .range(TimeRange::new(0, 100))
            .aggregate(AggFn::Avg, 10)
            .group_by(2)
            .limit(5)
            .order(SeriesOrder::MeanDesc);
        assert_eq!(req.mode, TargetMode::Auto);
        assert_eq!(req.agg, Some(AggFn::Avg));
        assert_eq!(req.window_ns, Some(10));
        assert_eq!(req.group_by, Some(2));
        assert_eq!(req.limit, Some(5));
        assert!(req.validate().is_ok());
        assert_eq!(QueryRequest::topic("/a").mode, TargetMode::Exact);
        assert_eq!(QueryRequest::subtree("/a").mode, TargetMode::Subtree);
    }

    #[test]
    fn validation_catches_contradictions() {
        // a degenerate range is valid — it just matches nothing (the
        // legacy behaviour every wrapper relies on)
        assert!(QueryRequest::new("/a").range(TimeRange::new(5, 5)).validate().is_ok());
        let groupby_raw = QueryRequest::new("/a").group_by(2);
        assert!(groupby_raw.validate().is_err());
        let zero_window = QueryRequest::new("/a").aggregate(AggFn::Avg, 0);
        assert!(zero_window.validate().is_err());
        let deep = QueryRequest::new("/a").aggregate(AggFn::Avg, 1).group_by(99);
        assert!(deep.validate().is_err());
        let interp_rate = QueryRequest::new("/a").aggregate_interpolated(AggFn::Rate);
        assert!(interp_rate.validate().is_err());
        let ok = QueryRequest::new("/a").aggregate_interpolated(AggFn::Sum);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn errors_render() {
        let e = QueryError::MixedUnits { group: "/r0".into(), units: vec!["W", "J"] };
        assert_eq!(e.to_string(), "mixed units under \"/r0\": W vs J");
        assert!(QueryError::InvalidRequest("x".into()).to_string().contains("x"));
    }
}
