//! Virtual sensors.
//!
//! "DCDB supports the definition of virtual sensors, which supply a layer of
//! abstraction over raw sensor data [...].  They are generated according to
//! user-specified arithmetic expressions of arbitrary length, whose operands
//! may either be sensors or virtual sensors themselves." (paper §3.2)
//!
//! * expressions: `+ - * / ^`, unary minus, parentheses, numeric literals,
//!   sensor operands as quoted topics (`"/sys/node0/power"`), and the
//!   aggregation functions `min max avg sum abs`,
//! * units of operands are converted automatically to the virtual sensor's
//!   unit (within a dimension),
//! * different sampling frequencies are reconciled by linear interpolation
//!   on the union of operand timestamps,
//! * evaluation is lazy — only on query and only for the queried period —
//!   and results are written back to the Storage Backend so subsequent
//!   queries of a covered period are served from the store.

use std::fmt;
use std::sync::Arc;

use dcdb_store::reading::{Reading, TimeRange};
use parking_lot::Mutex;

use crate::api::{SensorDb, Series};
use crate::interp;
use crate::units::Unit;

/// Virtual sensor errors.
#[derive(Debug, Clone, PartialEq)]
pub enum VsError {
    /// Expression failed to parse (byte offset + message).
    Parse { pos: usize, message: String },
    /// An operand's unit cannot convert to the virtual sensor's unit.
    UnitMismatch { operand: String },
    /// Evaluation recursed too deep (virtual sensor cycle).
    CycleDetected,
}

impl fmt::Display for VsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VsError::Parse { pos, message } => {
                write!(f, "expression error at byte {pos}: {message}")
            }
            VsError::UnitMismatch { operand } => {
                write!(f, "operand {operand:?} has an incompatible unit")
            }
            VsError::CycleDetected => write!(f, "virtual sensor cycle detected"),
        }
    }
}

impl std::error::Error for VsError {}

// ------------------------------------------------------------------ lexer

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    Sensor(String),
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    LParen,
    RParen,
    Comma,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, VsError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '+' => {
                toks.push((Tok::Plus, i));
                i += 1;
            }
            '-' => {
                toks.push((Tok::Minus, i));
                i += 1;
            }
            '*' => {
                toks.push((Tok::Star, i));
                i += 1;
            }
            '/' => {
                toks.push((Tok::Slash, i));
                i += 1;
            }
            '^' => {
                toks.push((Tok::Caret, i));
                i += 1;
            }
            '(' => {
                toks.push((Tok::LParen, i));
                i += 1;
            }
            ')' => {
                toks.push((Tok::RParen, i));
                i += 1;
            }
            ',' => {
                toks.push((Tok::Comma, i));
                i += 1;
            }
            '"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                while i < bytes.len() && bytes[i] != b'"' {
                    s.push(bytes[i] as char);
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(VsError::Parse {
                        pos: start,
                        message: "unterminated sensor reference".into(),
                    });
                }
                i += 1;
                toks.push((Tok::Sensor(s), start));
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < bytes.len()
                    && matches!(bytes[i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
                {
                    // only allow +/- right after an exponent marker
                    if matches!(bytes[i], b'+' | b'-') && !matches!(bytes[i - 1], b'e' | b'E') {
                        break;
                    }
                    i += 1;
                }
                let text = &src[start..i];
                let n: f64 = text.parse().map_err(|_| VsError::Parse {
                    pos: start,
                    message: format!("bad number {text:?}"),
                })?;
                toks.push((Tok::Num(n), start));
            }
            c if c.is_ascii_alphabetic() => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push((Tok::Ident(src[start..i].to_string()), start));
            }
            other => {
                return Err(VsError::Parse {
                    pos: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(toks)
}

// ------------------------------------------------------------------ parser

/// Aggregation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Func {
    Min,
    Max,
    Avg,
    Sum,
    Abs,
}

#[derive(Debug, Clone, PartialEq)]
enum Expr {
    Num(f64),
    Sensor(String),
    Neg(Box<Expr>),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Div(Box<Expr>, Box<Expr>),
    Pow(Box<Expr>, Box<Expr>),
    Call(Func, Vec<Expr>),
}

struct Parser<'a> {
    toks: &'a [(Tok, usize)],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn here(&self) -> usize {
        self.toks.get(self.pos).map_or(usize::MAX, |(_, p)| *p)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), VsError> {
        if self.peek() == Some(&tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(VsError::Parse { pos: self.here(), message: format!("expected {what}") })
        }
    }

    // precedence climbing: expr := term (('+'|'-') term)*
    fn parse_expr(&mut self) -> Result<Expr, VsError> {
        let mut lhs = self.parse_term()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.pos += 1;
                    lhs = Expr::Add(Box::new(lhs), Box::new(self.parse_term()?));
                }
                Some(Tok::Minus) => {
                    self.pos += 1;
                    lhs = Expr::Sub(Box::new(lhs), Box::new(self.parse_term()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_term(&mut self) -> Result<Expr, VsError> {
        let mut lhs = self.parse_power()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.pos += 1;
                    lhs = Expr::Mul(Box::new(lhs), Box::new(self.parse_power()?));
                }
                Some(Tok::Slash) => {
                    self.pos += 1;
                    lhs = Expr::Div(Box::new(lhs), Box::new(self.parse_power()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    // right-associative '^'
    fn parse_power(&mut self) -> Result<Expr, VsError> {
        let base = self.parse_unary()?;
        if self.peek() == Some(&Tok::Caret) {
            self.pos += 1;
            let exp = self.parse_power()?;
            return Ok(Expr::Pow(Box::new(base), Box::new(exp)));
        }
        Ok(base)
    }

    fn parse_unary(&mut self) -> Result<Expr, VsError> {
        if self.peek() == Some(&Tok::Minus) {
            self.pos += 1;
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        self.parse_atom()
    }

    fn parse_atom(&mut self) -> Result<Expr, VsError> {
        let pos = self.here();
        match self.bump() {
            Some(Tok::Num(n)) => Ok(Expr::Num(n)),
            Some(Tok::Sensor(s)) => Ok(Expr::Sensor(s)),
            Some(Tok::LParen) => {
                let e = self.parse_expr()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                let func = match name.as_str() {
                    "min" => Func::Min,
                    "max" => Func::Max,
                    "avg" => Func::Avg,
                    "sum" => Func::Sum,
                    "abs" => Func::Abs,
                    _ => {
                        return Err(VsError::Parse {
                            pos,
                            message: format!("unknown function {name:?}"),
                        })
                    }
                };
                self.expect(Tok::LParen, "'(' after function name")?;
                let mut args = vec![self.parse_expr()?];
                while self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                    args.push(self.parse_expr()?);
                }
                self.expect(Tok::RParen, "')'")?;
                if func == Func::Abs && args.len() != 1 {
                    return Err(VsError::Parse {
                        pos,
                        message: "abs takes exactly one argument".into(),
                    });
                }
                Ok(Expr::Call(func, args))
            }
            _ => Err(VsError::Parse { pos, message: "expected operand".into() }),
        }
    }
}

fn parse_expression(src: &str) -> Result<Expr, VsError> {
    let toks = lex(src)?;
    let mut p = Parser { toks: &toks, pos: 0 };
    let expr = p.parse_expr()?;
    if p.pos != toks.len() {
        return Err(VsError::Parse { pos: p.here(), message: "trailing tokens".into() });
    }
    Ok(expr)
}

fn collect_sensors(expr: &Expr, out: &mut Vec<String>) {
    match expr {
        Expr::Sensor(s) => {
            if !out.contains(s) {
                out.push(s.clone());
            }
        }
        Expr::Neg(e) => collect_sensors(e, out),
        Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) | Expr::Pow(a, b) => {
            collect_sensors(a, out);
            collect_sensors(b, out);
        }
        Expr::Call(_, args) => {
            for a in args {
                collect_sensors(a, out);
            }
        }
        Expr::Num(_) => {}
    }
}

fn eval_at(expr: &Expr, lookup: &dyn Fn(&str) -> f64) -> f64 {
    match expr {
        Expr::Num(n) => *n,
        Expr::Sensor(s) => lookup(s),
        Expr::Neg(e) => -eval_at(e, lookup),
        Expr::Add(a, b) => eval_at(a, lookup) + eval_at(b, lookup),
        Expr::Sub(a, b) => eval_at(a, lookup) - eval_at(b, lookup),
        Expr::Mul(a, b) => eval_at(a, lookup) * eval_at(b, lookup),
        Expr::Div(a, b) => eval_at(a, lookup) / eval_at(b, lookup),
        Expr::Pow(a, b) => eval_at(a, lookup).powf(eval_at(b, lookup)),
        Expr::Call(func, args) => {
            let vals: Vec<f64> = args.iter().map(|a| eval_at(a, lookup)).collect();
            match func {
                Func::Min => vals.iter().copied().fold(f64::INFINITY, f64::min),
                Func::Max => vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                Func::Sum => vals.iter().sum(),
                Func::Avg => vals.iter().sum::<f64>() / vals.len() as f64,
                Func::Abs => vals[0].abs(),
            }
        }
    }
}

// ------------------------------------------------------------- the sensor

thread_local! {
    static EVAL_DEPTH: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

const MAX_EVAL_DEPTH: usize = 16;

/// A compiled virtual sensor.
pub struct VirtualSensor {
    topic: String,
    expr: Expr,
    unit: Unit,
    operands: Vec<String>,
    /// Time ranges already evaluated and written back to the store.
    cached: Mutex<Vec<TimeRange>>,
}

impl VirtualSensor {
    /// Compile `expression` for the virtual sensor `topic`.
    ///
    /// # Errors
    /// Returns parse errors with positions.
    pub fn compile(topic: &str, expression: &str, unit: Unit) -> Result<VirtualSensor, VsError> {
        let expr = parse_expression(expression)?;
        let mut operands = Vec::new();
        collect_sensors(&expr, &mut operands);
        Ok(VirtualSensor {
            topic: dcdb_sid::topic::normalize(topic),
            expr,
            unit,
            operands,
            cached: Mutex::new(Vec::new()),
        })
    }

    /// The virtual sensor's own topic.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// Topics of the operand sensors.
    pub fn operands(&self) -> &[String] {
        &self.operands
    }

    /// Number of evaluations served from the write-back cache (testing).
    pub fn cached_ranges(&self) -> usize {
        self.cached.lock().len()
    }

    fn is_cached(&self, range: &TimeRange) -> bool {
        self.cached.lock().iter().any(|c| c.start <= range.start && range.end <= c.end)
    }

    fn add_cached(&self, range: TimeRange) {
        let mut cached = self.cached.lock();
        cached.push(range);
        // merge overlapping/adjacent ranges
        cached.sort_by_key(|r| r.start);
        let mut merged: Vec<TimeRange> = Vec::with_capacity(cached.len());
        for r in cached.drain(..) {
            match merged.last_mut() {
                Some(last) if r.start <= last.end => {
                    last.end = last.end.max(r.end);
                }
                _ => merged.push(r),
            }
        }
        *cached = merged;
    }

    /// Evaluate over `range`, reading operands through `db`.
    ///
    /// Results of previous evaluations are reused from the store; new
    /// results are written back (paper §3.2).
    ///
    /// # Errors
    /// Unit mismatches and cycles are reported.
    pub fn evaluate(&self, db: &Arc<SensorDb>, range: TimeRange) -> Result<Series, VsError> {
        // cached path: the whole range was evaluated before
        if self.is_cached(&range) {
            if let Some(sid) = db.registry().get(&self.topic) {
                let readings = db.store().query(sid, range);
                return Ok(Series { topic: self.topic.clone(), readings, unit: self.unit });
            }
        }

        let depth = EVAL_DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        let result = (|| {
            if depth >= MAX_EVAL_DEPTH {
                return Err(VsError::CycleDetected);
            }
            // fetch + unit-convert every operand
            let mut operand_series: Vec<(String, Vec<Reading>)> = Vec::new();
            for op in &self.operands {
                let series = db.query(op, range)?;
                let mut readings = series.readings;
                if series.unit != self.unit {
                    for r in &mut readings {
                        r.value = series
                            .unit
                            .convert(r.value, &self.unit)
                            .ok_or_else(|| VsError::UnitMismatch { operand: op.clone() })?;
                    }
                }
                operand_series.push((op.clone(), readings));
            }
            // align on the union of operand timestamps
            let slices: Vec<&[Reading]> =
                operand_series.iter().map(|(_, s)| s.as_slice()).collect();
            let grid = interp::timestamp_union(&slices);
            let mut readings = Vec::with_capacity(grid.len());
            for ts in grid {
                let lookup = |name: &str| -> f64 {
                    operand_series
                        .iter()
                        .find(|(op, _)| op == name)
                        .and_then(|(_, s)| interp::sample_at(s, ts))
                        .unwrap_or(f64::NAN)
                };
                let value = eval_at(&self.expr, &lookup);
                if value.is_finite() {
                    readings.push(Reading { ts, value });
                }
            }
            Ok(readings)
        })();
        EVAL_DEPTH.with(|d| d.set(depth));

        let readings = result?;
        // write back for reuse
        if let Ok(sid) = db.registry().resolve(&self.topic) {
            db.store().insert_batch(sid, &readings);
            self.add_cached(range);
        }
        Ok(Series { topic: self.topic.clone(), readings, unit: self.unit })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_power() -> Arc<SensorDb> {
        let db = SensorDb::in_memory();
        for node in 0..3 {
            let topic = format!("/sys/n{node}/power");
            for ts in 0..10 {
                db.insert(&topic, ts * 1_000, 100.0 * (node + 1) as f64).unwrap();
            }
            db.set_meta(&topic, crate::api::SensorMeta::with_unit(Unit::WATT));
        }
        db
    }

    #[test]
    fn parses_arithmetic() {
        for (src, ok) in [
            ("1 + 2 * 3", true),
            ("(\"/a/b\" + \"/c/d\") / 2", true),
            ("-\"/a/b\" ^ 2", true),
            ("min(\"/a/b\", \"/c/d\", 5)", true),
            ("1 +", false),
            ("foo(1)", false),
            ("\"unterminated", false),
            ("1 2", false),
            ("abs(1, 2)", false),
        ] {
            let r = VirtualSensor::compile("/v/x", src, Unit::NONE);
            assert_eq!(r.is_ok(), ok, "{src}: {:?}", r.err());
        }
    }

    #[test]
    fn constant_expression() {
        let db = db_with_power();
        let vs = VirtualSensor::compile("/v/c", "2 ^ 3 + 1", Unit::NONE).unwrap();
        // no operands → empty grid → empty series
        let s = vs.evaluate(&db, TimeRange::all()).unwrap();
        assert!(s.readings.is_empty());
        assert!(vs.operands().is_empty());
    }

    #[test]
    fn aggregates_node_power() {
        let db = db_with_power();
        db.define_virtual(
            "/v/total_power",
            "\"/sys/n0/power\" + \"/sys/n1/power\" + \"/sys/n2/power\"",
            Unit::WATT,
        )
        .unwrap();
        let s = db.query("/v/total_power", TimeRange::new(0, 10_000)).unwrap();
        assert_eq!(s.readings.len(), 10);
        assert!(s.readings.iter().all(|r| (r.value - 600.0).abs() < 1e-9));
    }

    #[test]
    fn unit_conversion_of_operands() {
        let db = SensorDb::in_memory();
        db.insert("/a/p_w", 0, 1500.0).unwrap();
        db.insert("/a/p_kw", 0, 2.0).unwrap();
        db.set_meta("/a/p_w", crate::api::SensorMeta::with_unit(Unit::WATT));
        db.set_meta("/a/p_kw", crate::api::SensorMeta::with_unit(Unit::KILOWATT));
        db.define_virtual("/v/sum_kw", "\"/a/p_w\" + \"/a/p_kw\"", Unit::KILOWATT).unwrap();
        let s = db.query("/v/sum_kw", TimeRange::all()).unwrap();
        assert_eq!(s.readings.len(), 1);
        assert!((s.readings[0].value - 3.5).abs() < 1e-9);
    }

    #[test]
    fn incompatible_units_error() {
        let db = SensorDb::in_memory();
        db.insert("/a/temp", 0, 30.0).unwrap();
        db.set_meta("/a/temp", crate::api::SensorMeta::with_unit(Unit::CELSIUS));
        db.define_virtual("/v/bad", "\"/a/temp\" * 2", Unit::WATT).unwrap();
        let err = db.query("/v/bad", TimeRange::all()).unwrap_err();
        assert!(matches!(err, VsError::UnitMismatch { .. }));
    }

    #[test]
    fn interpolation_aligns_frequencies() {
        let db = SensorDb::in_memory();
        // fast sensor every 1000, slow sensor every 4000
        for ts in (0..=8_000).step_by(1_000) {
            db.insert("/a/fast", ts, ts as f64).unwrap();
        }
        for ts in (0..=8_000).step_by(4_000) {
            db.insert("/a/slow", ts, (ts * 10) as f64).unwrap();
        }
        db.define_virtual("/v/mix", "\"/a/slow\" - 10 * \"/a/fast\"", Unit::NONE).unwrap();
        let s = db.query("/v/mix", TimeRange::new(0, 9_000)).unwrap();
        // slow interpolates linearly to 10×fast everywhere → difference 0
        assert_eq!(s.readings.len(), 9);
        assert!(s.readings.iter().all(|r| r.value.abs() < 1e-9), "{:?}", s.readings);
    }

    #[test]
    fn virtual_over_virtual() {
        let db = db_with_power();
        db.define_virtual("/v/a", "\"/sys/n0/power\" * 2", Unit::WATT).unwrap();
        db.define_virtual("/v/b", "\"/v/a\" + 100", Unit::WATT).unwrap();
        let s = db.query("/v/b", TimeRange::new(0, 10_000)).unwrap();
        assert!(s.readings.iter().all(|r| (r.value - 300.0).abs() < 1e-9));
    }

    #[test]
    fn cycle_is_detected() {
        let db = db_with_power();
        db.define_virtual("/v/x", "\"/v/y\" + 1", Unit::NONE).unwrap();
        db.define_virtual("/v/y", "\"/v/x\" + 1", Unit::NONE).unwrap();
        let err = db.query("/v/x", TimeRange::new(0, 1_000)).unwrap_err();
        assert_eq!(err, VsError::CycleDetected);
    }

    #[test]
    fn write_back_cache_reuses_results() {
        let db = db_with_power();
        db.define_virtual("/v/sum", "\"/sys/n0/power\" + \"/sys/n1/power\"", Unit::WATT).unwrap();
        let r = TimeRange::new(0, 5_000);
        let first = db.query("/v/sum", r).unwrap();
        // second query of the same range is served from the store
        let second = db.query("/v/sum", r).unwrap();
        assert_eq!(first.readings, second.readings);
        // the store now physically holds the virtual sensor's readings
        let sid = db.registry().get("/v/sum").unwrap();
        assert_eq!(db.store().query(sid, r).len(), first.readings.len());
    }

    #[test]
    fn lazy_evaluation_only_covers_queried_period() {
        let db = db_with_power();
        db.define_virtual("/v/lazy", "\"/sys/n0/power\"", Unit::WATT).unwrap();
        db.query("/v/lazy", TimeRange::new(0, 2_000)).unwrap();
        let sid = db.registry().get("/v/lazy").unwrap();
        // only the queried period was materialised
        assert_eq!(db.store().query(sid, TimeRange::all()).len(), 2);
    }

    #[test]
    fn functions_evaluate() {
        let db = db_with_power();
        db.define_virtual(
            "/v/peak",
            "max(\"/sys/n0/power\", \"/sys/n1/power\", \"/sys/n2/power\")",
            Unit::WATT,
        )
        .unwrap();
        let s = db.query("/v/peak", TimeRange::new(0, 1_000)).unwrap();
        assert_eq!(s.readings[0].value, 300.0);
        db.define_virtual(
            "/v/mean",
            "avg(\"/sys/n0/power\", \"/sys/n1/power\", \"/sys/n2/power\")",
            Unit::WATT,
        )
        .unwrap();
        let s = db.query("/v/mean", TimeRange::new(0, 1_000)).unwrap();
        assert_eq!(s.readings[0].value, 200.0);
    }
}
