//! Property tests for libDCDB: interpolation, ops, units and virtual-sensor
//! evaluation invariants.

use std::sync::Arc;

use dcdb_core::{interp, ops, SensorDb, SensorMeta, Unit};
use dcdb_store::reading::{Reading, TimeRange};
use proptest::prelude::*;

fn series_strategy() -> impl Strategy<Value = Vec<Reading>> {
    prop::collection::btree_map(0i64..100_000, -1e6f64..1e6, 1..100)
        .prop_map(|m| m.into_iter().map(|(ts, value)| Reading { ts, value }).collect())
}

proptest! {
    #[test]
    fn interpolation_bounded_by_neighbours(series in series_strategy(), ts in 0i64..100_000) {
        let v = interp::sample_at(&series, ts).unwrap();
        let lo = series.iter().map(|r| r.value).fold(f64::INFINITY, f64::min);
        let hi = series.iter().map(|r| r.value).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{v} outside [{lo}, {hi}]");
    }

    #[test]
    fn interpolation_exact_at_sample_points(series in series_strategy()) {
        for r in &series {
            prop_assert_eq!(interp::sample_at(&series, r.ts), Some(r.value));
        }
    }

    #[test]
    fn integral_sign_of_positive_series(series in series_strategy()) {
        let positive: Vec<Reading> =
            series.iter().map(|r| Reading { ts: r.ts, value: r.value.abs() }).collect();
        prop_assert!(ops::integral(&positive) >= 0.0);
    }

    #[test]
    fn derivative_of_cumsum_recovers_rate(rate in 1.0f64..1e3, n in 2usize..50) {
        // energy counter growing at a constant rate → derivative == rate
        let series: Vec<Reading> = (0..n as i64)
            .map(|i| Reading { ts: i * 1_000_000_000, value: rate * i as f64 })
            .collect();
        let d = ops::derivative(&series);
        prop_assert_eq!(d.len(), n - 1);
        for r in d {
            prop_assert!((r.value - rate).abs() < 1e-6);
        }
    }

    #[test]
    fn downsample_means_within_range(series in series_strategy(), k in 1usize..20) {
        let d = ops::downsample(&series, k);
        prop_assert!(d.len() <= k.max(series.len().min(k)));
        let lo = series.iter().map(|r| r.value).fold(f64::INFINITY, f64::min);
        let hi = series.iter().map(|r| r.value).fold(f64::NEG_INFINITY, f64::max);
        for r in &d {
            prop_assert!(r.value >= lo - 1e-9 && r.value <= hi + 1e-9);
        }
        // timestamps stay sorted
        prop_assert!(d.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn unit_conversion_roundtrips(v in -1e9f64..1e9) {
        for (a, b) in [
            (Unit::WATT, Unit::KILOWATT),
            (Unit::JOULE, Unit::KILOWATTHOUR),
            (Unit::CELSIUS, Unit::FAHRENHEIT),
            (Unit::BYTE, Unit::GIGABYTE),
            (Unit::MILLISECOND, Unit::NANOSECOND),
        ] {
            let there = a.convert(v, &b).unwrap();
            let back = b.convert(there, &a).unwrap();
            prop_assert!((back - v).abs() <= v.abs() * 1e-12 + 1e-9, "{a:?}→{b:?}: {v} → {back}");
        }
    }

    #[test]
    fn vsensor_linearity(values in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 1..30),
                         ka in -5.0f64..5.0, kb in -5.0f64..5.0) {
        // query(k_a·A + k_b·B) == k_a·query(A) + k_b·query(B) pointwise
        let db = SensorDb::in_memory();
        for (i, (a, b)) in values.iter().enumerate() {
            db.insert("/p/a", i as i64 * 1000, *a).unwrap();
            db.insert("/p/b", i as i64 * 1000, *b).unwrap();
        }
        db.define_virtual(
            "/v/lin",
            &format!("{ka} * \"/p/a\" + {kb} * \"/p/b\""),
            Unit::NONE,
        ).unwrap();
        let got = db.query("/v/lin", TimeRange::all()).unwrap();
        prop_assert_eq!(got.readings.len(), values.len());
        for (r, (a, b)) in got.readings.iter().zip(&values) {
            let want = ka * a + kb * b;
            prop_assert!((r.value - want).abs() < 1e-6, "{} vs {}", r.value, want);
        }
    }

    #[test]
    fn vsensor_cache_consistent_with_fresh_eval(values in prop::collection::vec(-1e3f64..1e3, 2..40)) {
        let db = SensorDb::in_memory();
        for (i, v) in values.iter().enumerate() {
            db.insert("/c/s", i as i64 * 100, *v).unwrap();
        }
        db.set_meta("/c/s", SensorMeta::with_unit(Unit::WATT));
        db.define_virtual("/v/c", "\"/c/s\" * 2", Unit::WATT).unwrap();
        let range = TimeRange::new(0, values.len() as i64 * 100);
        let first = db.query("/v/c", range).unwrap();
        let second = db.query("/v/c", range).unwrap(); // served from write-back
        prop_assert_eq!(first.readings, second.readings);
    }
}

#[test]
fn timestamp_union_is_sorted_superset() {
    let a: Vec<Reading> = (0..10).map(|i| Reading { ts: i * 7, value: 0.0 }).collect();
    let b: Vec<Reading> = (0..10).map(|i| Reading { ts: i * 11, value: 0.0 }).collect();
    let u = interp::timestamp_union(&[&a, &b]);
    assert!(u.windows(2).all(|w| w[0] < w[1]));
    for r in a.iter().chain(b.iter()) {
        assert!(u.contains(&r.ts));
    }
}

#[test]
fn sensordb_shared_between_threads() {
    let db = SensorDb::in_memory();
    let mut handles = Vec::new();
    for t in 0..4 {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            for i in 0..500 {
                db.insert(&format!("/mt/t{t}/s"), i, i as f64).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for t in 0..4 {
        let s = db.query(&format!("/mt/t{t}/s"), TimeRange::all()).unwrap();
        assert_eq!(s.readings.len(), 500);
    }
}
