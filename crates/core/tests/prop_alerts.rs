//! Alert state-machine properties.
//!
//! 1. **No skipped states**: with `for_ns > 0` the machine never jumps
//!    straight to `firing` — every `Firing` transition leaves `pending`,
//!    and every transition obeys the documented legality table.
//! 2. **Resolution is unconditional**: from `firing`, the first step with
//!    the condition clear always yields `Resolved` — no hysteresis, no
//!    renotify interval, no `for`-duration can suppress it.
//! 3. **Deterministic replay**: the same `(ts, active)` sequence on a
//!    fresh machine reproduces the exact transition trace, so journalled
//!    alert histories can be re-derived from raw sensor data.

use dcdb_core::alerts::{AlertState, StateMachine, Transition};
use proptest::prelude::*;

/// A monotone evaluation schedule: strictly increasing timestamps with
/// irregular gaps (sensors report unevenly), each paired with whether the
/// rule condition held.
fn schedule() -> impl Strategy<Value = Vec<(i64, bool)>> {
    prop::collection::vec((1i64..5_000_000_000, any::<bool>()), 1..200).prop_map(|steps| {
        let mut ts = 0i64;
        steps
            .into_iter()
            .map(|(dt, active)| {
                ts += dt;
                (ts, active)
            })
            .collect()
    })
}

fn params() -> impl Strategy<Value = (i64, i64)> {
    // for_ns / renotify_ns: zero (disabled) or in the same range as the
    // schedule's gaps, so both "held long enough" and "cleared early"
    // paths are exercised.
    (prop_oneof![Just(0i64), 1i64..10_000_000_000], prop_oneof![Just(0i64), 1i64..10_000_000_000])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn transitions_never_skip_states((for_ns, renotify_ns) in params(), steps in schedule()) {
        let mut sm = StateMachine::new();
        for &(ts, active) in &steps {
            let before = sm.state();
            let taken = sm.step(ts, active, for_ns, renotify_ns);
            let after = sm.state();
            match taken {
                Some(Transition::Pending) => {
                    prop_assert!(for_ns > 0, "pending only exists with a for-duration");
                    prop_assert!(matches!(before, AlertState::Inactive | AlertState::Resolved));
                    prop_assert_eq!(after, AlertState::Pending);
                }
                Some(Transition::Firing) => {
                    // the core property: for > 0 forces the pending stop
                    if for_ns > 0 {
                        prop_assert_eq!(before, AlertState::Pending);
                    } else {
                        prop_assert!(matches!(
                            before,
                            AlertState::Inactive | AlertState::Resolved
                        ));
                    }
                    prop_assert_eq!(after, AlertState::Firing);
                }
                Some(Transition::Renotify) => {
                    prop_assert!(renotify_ns > 0);
                    prop_assert_eq!(before, AlertState::Firing);
                    prop_assert_eq!(after, AlertState::Firing);
                }
                Some(Transition::Resolved) => {
                    prop_assert_eq!(before, AlertState::Firing);
                    prop_assert_eq!(after, AlertState::Resolved);
                }
                Some(Transition::Reset) => {
                    prop_assert!(matches!(
                        before,
                        AlertState::Pending | AlertState::Resolved
                    ));
                    prop_assert_eq!(after, AlertState::Inactive);
                }
                None => prop_assert_eq!(before, after, "no transition, no state change"),
            }
        }
    }

    #[test]
    fn firing_always_resolves_when_condition_clears(
        (for_ns, renotify_ns) in params(),
        steps in schedule(),
    ) {
        let mut sm = StateMachine::new();
        for &(ts, active) in &steps {
            let was_firing = sm.state() == AlertState::Firing;
            let taken = sm.step(ts, active, for_ns, renotify_ns);
            if was_firing && !active {
                prop_assert_eq!(taken, Some(Transition::Resolved));
                prop_assert_eq!(sm.state(), AlertState::Resolved);
            }
        }
    }

    #[test]
    fn replay_is_deterministic((for_ns, renotify_ns) in params(), steps in schedule()) {
        let mut a = StateMachine::new();
        let mut b = StateMachine::new();
        for &(ts, active) in &steps {
            let ta = a.step(ts, active, for_ns, renotify_ns);
            let tb = b.step(ts, active, for_ns, renotify_ns);
            prop_assert_eq!(ta, tb);
            prop_assert_eq!(a.state(), b.state());
        }
    }
}
