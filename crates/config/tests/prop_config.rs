//! Property tests: property trees round-trip through their text form and
//! the parser never panics.

use dcdb_config::{parse, Node};
use proptest::prelude::*;

fn key_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_]{0,11}"
}

fn value_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-zA-Z0-9_./:@-]{1,16}",
        "[a-zA-Z0-9 ]{1,20}", // values with spaces get quoted
    ]
}

fn node_strategy() -> impl Strategy<Value = Node> {
    let leaf = prop_oneof![Just(Node::new()), value_strategy().prop_map(Node::leaf),];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop::collection::vec((key_strategy(), inner), 0..5).prop_map(|children| {
            let mut n = Node::new();
            for (k, c) in children {
                n.push(k, c);
            }
            n
        })
    })
    .prop_map(|mut n| {
        // root scalar values are not representable in the text form
        n.value = None;
        n
    })
}

/// Normalise: trim trailing whitespace in values (the format joins words
/// with single spaces, so runs of spaces collapse).
fn canonical(node: &Node) -> Node {
    let mut out = Node::new();
    out.value = node
        .value
        .as_ref()
        .map(|v| v.split_whitespace().collect::<Vec<_>>().join(" "))
        .filter(|v| !v.is_empty());
    for (k, c) in &node.children {
        out.push(k.clone(), canonical(c));
    }
    out
}

proptest! {
    #[test]
    fn roundtrip_through_text(node in node_strategy()) {
        let canon = canonical(&node);
        let text = canon.to_text();
        let parsed = parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(canonical(&parsed), canon, "text was:\n{}", text);
    }

    #[test]
    fn parser_never_panics(text in ".{0,512}") {
        let _ = parse(&text);
    }

    #[test]
    fn getters_never_panic(node in node_strategy(), path in "[a-z.]{0,20}") {
        let _ = node.get_str(&path);
        let _ = node.get_u64(&path);
        let _ = node.get_f64(&path);
        let _ = node.get_bool(&path);
        let _ = node.at(&path);
    }
}
