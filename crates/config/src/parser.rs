//! Tokeniser and recursive-descent parser for the INFO-like format.

use std::fmt;

use crate::tree::Node;

/// Parse failures, with 1-based line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Underlying I/O problem (only from [`crate::from_file`]).
    Io(String),
    /// Unterminated quoted string.
    UnterminatedString { line: usize },
    /// A `}` without a matching `{`.
    UnbalancedClose { line: usize },
    /// End of input reached with unclosed blocks.
    UnclosedBlock { opened_line: usize },
    /// A `{` with no key before it.
    BlockWithoutKey { line: usize },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "io error: {e}"),
            ParseError::UnterminatedString { line } => {
                write!(f, "line {line}: unterminated string")
            }
            ParseError::UnbalancedClose { line } => {
                write!(f, "line {line}: unexpected '}}'")
            }
            ParseError::UnclosedBlock { opened_line } => {
                write!(f, "block opened on line {opened_line} never closed")
            }
            ParseError::BlockWithoutKey { line } => {
                write!(f, "line {line}: '{{' without preceding key")
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    Open,
    Close,
    Newline,
}

fn tokenize(text: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\n' => {
                toks.push((Tok::Newline, line));
                line += 1;
            }
            ' ' | '\t' | '\r' => {}
            ';' => {
                // comment to end of line
                for c2 in chars.by_ref() {
                    if c2 == '\n' {
                        toks.push((Tok::Newline, line));
                        line += 1;
                        break;
                    }
                }
            }
            '{' => toks.push((Tok::Open, line)),
            '}' => toks.push((Tok::Close, line)),
            '"' => {
                let start = line;
                let mut s = String::new();
                let mut closed = false;
                while let Some(c2) = chars.next() {
                    match c2 {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\\' => match chars.next() {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some(other) => s.push(other),
                            None => break,
                        },
                        '\n' => {
                            line += 1;
                            s.push('\n');
                        }
                        other => s.push(other),
                    }
                }
                if !closed {
                    return Err(ParseError::UnterminatedString { line: start });
                }
                toks.push((Tok::Word(s), line));
            }
            other => {
                let mut s = String::new();
                s.push(other);
                while let Some(&c2) = chars.peek() {
                    if c2.is_whitespace() || matches!(c2, '{' | '}' | ';' | '"') {
                        break;
                    }
                    s.push(c2);
                    chars.next();
                }
                toks.push((Tok::Word(s), line));
            }
        }
    }
    Ok(toks)
}

/// Parse INFO-like text into a property tree, applying `default`-key template
/// inheritance (see crate docs).
pub fn parse(text: &str) -> Result<Node, ParseError> {
    let toks = tokenize(text)?;
    let mut pos = 0usize;
    let mut root = parse_block(&toks, &mut pos, None)?;
    if pos < toks.len() {
        // parse_block stops at a stray Close
        let (_, line) = toks[pos];
        return Err(ParseError::UnbalancedClose { line });
    }
    apply_templates(&mut root);
    Ok(root)
}

// When parsing stops at a Close token inside parse_block at depth 0 we report
// the error from `parse`; `opened` carries the line of the enclosing `{`.
fn parse_block(
    toks: &[(Tok, usize)],
    pos: &mut usize,
    opened: Option<usize>,
) -> Result<Node, ParseError> {
    let mut node = Node::new();
    // words accumulated on the current line: [key, value...]
    let mut pending: Vec<(String, usize)> = Vec::new();

    fn flush(node: &mut Node, pending: &mut Vec<(String, usize)>) {
        if pending.is_empty() {
            return;
        }
        let key = pending[0].0.clone();
        let value = if pending.len() > 1 {
            Some(pending[1..].iter().map(|(w, _)| w.as_str()).collect::<Vec<_>>().join(" "))
        } else {
            None
        };
        let mut child = Node::new();
        child.value = value;
        node.push(key, child);
        pending.clear();
    }

    while *pos < toks.len() {
        let (tok, line_ref) = &toks[*pos];
        let line = *line_ref;
        *pos += 1;
        match tok {
            Tok::Word(w) => pending.push((w.clone(), line)),
            Tok::Newline => {
                // Allow `{` on the line after the key (Boost INFO style):
                // keep the pending key when the next non-blank token opens a block.
                let next_opens = toks[*pos..]
                    .iter()
                    .find(|(t, _)| !matches!(t, Tok::Newline))
                    .is_some_and(|(t, _)| matches!(t, Tok::Open));
                if !next_opens || pending.is_empty() {
                    flush(&mut node, &mut pending);
                }
            }
            Tok::Open => {
                if pending.is_empty() {
                    return Err(ParseError::BlockWithoutKey { line });
                }
                let key = pending[0].0.clone();
                let value = if pending.len() > 1 {
                    Some(pending[1..].iter().map(|(w, _)| w.as_str()).collect::<Vec<_>>().join(" "))
                } else {
                    None
                };
                pending.clear();
                let mut child = parse_block(toks, pos, Some(line))?;
                child.value = value;
                node.push(key, child);
            }
            Tok::Close => {
                if opened.is_none() {
                    // stray close at top level: rewind so `parse` reports it
                    *pos -= 1;
                    flush(&mut node, &mut pending);
                    return Ok(node);
                }
                flush(&mut node, &mut pending);
                return Ok(node);
            }
        }
    }
    if let Some(opened_line) = opened {
        return Err(ParseError::UnclosedBlock { opened_line });
    }
    flush(&mut node, &mut pending);
    Ok(node)
}

/// Resolve `default <template-name>` references: a block containing
/// `default foo` inherits the children of the sibling block
/// `template_<kind> foo` (where `<kind>` is the block's own key name).
fn apply_templates(root: &mut Node) {
    // collect templates: name -> node, per kind
    let mut templates: Vec<(String, String, Node)> = Vec::new(); // (kind, name, node)
    for (key, child) in &root.children {
        if let Some(kind) = key.strip_prefix("template_") {
            if let Some(name) = &child.value {
                templates.push((kind.to_string(), name.clone(), child.clone()));
            }
        }
    }
    fn walk(node: &mut Node, templates: &[(String, String, Node)]) {
        for (key, child) in node.children.iter_mut() {
            if let Some(def) = child.child("default").and_then(|d| d.value.clone()) {
                if let Some((_, _, tmpl)) =
                    templates.iter().find(|(kind, name, _)| key == kind && *name == def)
                {
                    child.merge_defaults(tmpl);
                }
            }
            walk(child, templates);
        }
    }
    walk(root, &templates);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_keys() {
        let n = parse("a 1\nb hello\nc \"two words\"\n").unwrap();
        assert_eq!(n.get_u64("a").unwrap(), 1);
        assert_eq!(n.get_str("b").unwrap(), "hello");
        assert_eq!(n.get_str("c").unwrap(), "two words");
    }

    #[test]
    fn parses_nested_blocks() {
        let text = r#"
global {
    mqttBroker localhost:1883
    threads 2
}
group cpu {
    interval 1000
    sensor instr {
        mqttsuffix /instr
    }
}
"#;
        let n = parse(text).unwrap();
        assert_eq!(n.get_str("global.mqttBroker").unwrap(), "localhost:1883");
        assert_eq!(n.get_u64("group.interval").unwrap(), 1000);
        assert_eq!(n.child("group").unwrap().value.as_deref(), Some("cpu"));
        assert_eq!(n.get_str("group.sensor.mqttsuffix").unwrap(), "/instr");
    }

    #[test]
    fn comments_are_ignored() {
        let n = parse("a 1 ; trailing comment\n; full line\nb 2\n").unwrap();
        assert_eq!(n.get_u64("a").unwrap(), 1);
        assert_eq!(n.get_u64("b").unwrap(), 2);
    }

    #[test]
    fn brace_on_same_line_or_next() {
        let n = parse("blk {\n x 1\n}\n").unwrap();
        assert_eq!(n.get_u64("blk.x").unwrap(), 1);
        let n2 = parse("blk\n{\n x 1\n}\n").unwrap();
        assert_eq!(n2.get_u64("blk.x").unwrap(), 1);
    }

    #[test]
    fn error_positions() {
        assert_eq!(parse("a \"oops\n"), Err(ParseError::UnterminatedString { line: 1 }));
        assert_eq!(parse("}\n"), Err(ParseError::UnbalancedClose { line: 1 }));
        assert_eq!(parse("a {\nb 1\n"), Err(ParseError::UnclosedBlock { opened_line: 1 }));
        assert_eq!(parse("{\n}\n"), Err(ParseError::BlockWithoutKey { line: 1 }));
    }

    #[test]
    fn template_inheritance() {
        let text = r#"
template_group cpu {
    interval 1000
    minValues 3
}
group cpu0 {
    default cpu
    interval 100
}
"#;
        let n = parse(text).unwrap();
        let g = n.child("group").unwrap();
        assert_eq!(g.get_u64("interval").unwrap(), 100); // own key wins
        assert_eq!(g.get_u64("minValues").unwrap(), 3); // inherited
    }

    #[test]
    fn multiword_values_joined() {
        let n = parse("cmd run --fast --now\n").unwrap();
        assert_eq!(n.get_str("cmd").unwrap(), "run --fast --now");
    }

    #[test]
    fn roundtrip_through_to_text() {
        let text = "global {\n    broker localhost\n}\nkey value\n";
        let n = parse(text).unwrap();
        let n2 = parse(&n.to_text()).unwrap();
        assert_eq!(n, n2);
    }

    #[test]
    fn escaped_strings() {
        let n = parse("s \"a\\\"b\\nc\"\n").unwrap();
        assert_eq!(n.get_str("s").unwrap(), "a\"b\nc");
    }
}
