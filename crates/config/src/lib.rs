//! # dcdb-config
//!
//! DCDB's Pushers and Collect Agents are configured with Boost property-tree
//! files in the INFO format: an "intuitive property tree format" of nested
//! `key value` pairs and `{ ... }` blocks (paper §4.1).  This crate is a
//! self-contained work-alike:
//!
//! ```text
//! global {
//!     mqttBroker   localhost:1883
//!     threads      2
//! }
//! template_group cpu {
//!     interval     1000
//! }
//! group cpu0 {
//!     default      cpu          ; inherit from template_group cpu
//!     sensor instructions {
//!         mqttsuffix /instructions
//!     }
//! }
//! ```
//!
//! * `;` starts a line comment,
//! * values may be bare words or `"quoted strings"`,
//! * `default <name>` in a block merges the keys of the named
//!   `template_<kind>` block (DCDB's template/default inheritance),
//! * typed getters ([`Node::get_u64`], [`Node::get_f64`], [`Node::get_bool`],
//!   [`Node::get_str`]) with helpful error messages.

pub mod parser;
pub mod tree;

pub use parser::{parse, ParseError};
pub use tree::{ConfigError, Node};

/// Parse a configuration file from disk.
///
/// # Errors
/// Returns [`ParseError`] on syntax errors, with line information, or an
/// `Io` variant when the file cannot be read.
pub fn from_file(path: &std::path::Path) -> Result<Node, ParseError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ParseError::Io(format!("{}: {e}", path.display())))?;
    parse(&text)
}

/// Parse configuration text.
pub fn from_str(text: &str) -> Result<Node, ParseError> {
    parse(text)
}
