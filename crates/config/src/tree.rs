//! The property tree itself.

use std::fmt;

/// Errors raised by typed accessors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The requested key does not exist.
    Missing(String),
    /// The key exists but its value failed to parse as the requested type.
    Type { key: String, value: String, wanted: &'static str },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Missing(k) => write!(f, "missing config key {k:?}"),
            ConfigError::Type { key, value, wanted } => {
                write!(f, "config key {key:?}: {value:?} is not a valid {wanted}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// One node of the property tree.
///
/// A node has an optional scalar `value` and an ordered list of named
/// children.  Child names are not unique (DCDB configs repeat `sensor` and
/// `group` blocks), so lookups return the *first* match and
/// [`Node::children_named`] returns all of them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Node {
    /// The scalar value attached to this node, if any.
    pub value: Option<String>,
    /// Ordered `(name, child)` pairs.
    pub children: Vec<(String, Node)>,
}

impl Node {
    /// An empty node.
    pub fn new() -> Self {
        Self::default()
    }

    /// A leaf node carrying `value`.
    pub fn leaf<S: Into<String>>(value: S) -> Self {
        Node { value: Some(value.into()), children: Vec::new() }
    }

    /// Append a child.
    pub fn push<S: Into<String>>(&mut self, name: S, child: Node) -> &mut Self {
        self.children.push((name.into(), child));
        self
    }

    /// First child with the given name.
    pub fn child(&self, name: &str) -> Option<&Node> {
        self.children.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }

    /// All children with the given name, in document order.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Node> + 'a {
        self.children.iter().filter(move |(n, _)| n == name).map(|(_, c)| c)
    }

    /// Resolve a dotted path (`"global.mqttBroker"`) to a node.
    pub fn at(&self, path: &str) -> Option<&Node> {
        let mut cur = self;
        for seg in path.split('.') {
            cur = cur.child(seg)?;
        }
        Some(cur)
    }

    /// The scalar value at a dotted path.
    pub fn get_str(&self, path: &str) -> Result<&str, ConfigError> {
        self.at(path)
            .and_then(|n| n.value.as_deref())
            .ok_or_else(|| ConfigError::Missing(path.to_string()))
    }

    /// The scalar at `path`, or `default` when absent.
    pub fn get_str_or<'a>(&'a self, path: &str, default: &'a str) -> &'a str {
        self.at(path).and_then(|n| n.value.as_deref()).unwrap_or(default)
    }

    /// Unsigned integer accessor.
    pub fn get_u64(&self, path: &str) -> Result<u64, ConfigError> {
        let s = self.get_str(path)?;
        s.parse().map_err(|_| ConfigError::Type {
            key: path.to_string(),
            value: s.to_string(),
            wanted: "unsigned integer",
        })
    }

    /// Unsigned integer accessor with default.
    pub fn get_u64_or(&self, path: &str, default: u64) -> u64 {
        match self.get_u64(path) {
            Ok(v) => v,
            Err(_) => default,
        }
    }

    /// Float accessor.
    pub fn get_f64(&self, path: &str) -> Result<f64, ConfigError> {
        let s = self.get_str(path)?;
        s.parse().map_err(|_| ConfigError::Type {
            key: path.to_string(),
            value: s.to_string(),
            wanted: "float",
        })
    }

    /// Float accessor with default.
    pub fn get_f64_or(&self, path: &str, default: f64) -> f64 {
        self.get_f64(path).unwrap_or(default)
    }

    /// Boolean accessor: accepts `true/false/on/off/1/0/yes/no`.
    pub fn get_bool(&self, path: &str) -> Result<bool, ConfigError> {
        let s = self.get_str(path)?;
        match s.to_ascii_lowercase().as_str() {
            "true" | "on" | "1" | "yes" => Ok(true),
            "false" | "off" | "0" | "no" => Ok(false),
            _ => Err(ConfigError::Type {
                key: path.to_string(),
                value: s.to_string(),
                wanted: "boolean",
            }),
        }
    }

    /// Boolean accessor with default.
    pub fn get_bool_or(&self, path: &str, default: bool) -> bool {
        self.get_bool(path).unwrap_or(default)
    }

    /// Merge keys from `template` into `self`: keys already present in
    /// `self` win, template-only keys are appended.  Used by the `default`
    /// inheritance mechanism.
    pub fn merge_defaults(&mut self, template: &Node) {
        for (name, child) in &template.children {
            if self.child(name).is_none() {
                self.children.push((name.clone(), child.clone()));
            }
        }
        if self.value.is_none() {
            self.value = template.value.clone();
        }
    }

    /// Serialise back to the INFO-like text form (stable round-trip form).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write_children(&mut out, 0);
        out
    }

    fn write_children(&self, out: &mut String, indent: usize) {
        for (name, child) in &self.children {
            for _ in 0..indent {
                out.push_str("    ");
            }
            out.push_str(name);
            if let Some(v) = &child.value {
                out.push(' ');
                if v.is_empty() || v.contains(char::is_whitespace) {
                    out.push('"');
                    out.push_str(&v.replace('\\', "\\\\").replace('"', "\\\""));
                    out.push('"');
                } else {
                    out.push_str(v);
                }
            }
            if !child.children.is_empty() {
                out.push_str(" {\n");
                child.write_children(out, indent + 1);
                for _ in 0..indent {
                    out.push_str("    ");
                }
                out.push_str("}\n");
            } else {
                out.push('\n');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Node {
        let mut root = Node::new();
        let mut global = Node::new();
        global.push("mqttBroker", Node::leaf("localhost:1883"));
        global.push("threads", Node::leaf("2"));
        global.push("verbose", Node::leaf("on"));
        global.push("scale", Node::leaf("0.5"));
        root.push("global", global);
        root
    }

    #[test]
    fn typed_getters() {
        let n = sample();
        assert_eq!(n.get_str("global.mqttBroker").unwrap(), "localhost:1883");
        assert_eq!(n.get_u64("global.threads").unwrap(), 2);
        assert!(n.get_bool("global.verbose").unwrap());
        assert_eq!(n.get_f64("global.scale").unwrap(), 0.5);
    }

    #[test]
    fn missing_and_type_errors() {
        let n = sample();
        assert_eq!(n.get_str("global.nothing"), Err(ConfigError::Missing("global.nothing".into())));
        assert!(matches!(n.get_u64("global.mqttBroker"), Err(ConfigError::Type { .. })));
        assert_eq!(n.get_u64_or("global.nothing", 7), 7);
        assert_eq!(n.get_str_or("global.nothing", "dflt"), "dflt");
        assert!(n.get_bool_or("global.nothing", true));
        assert_eq!(n.get_f64_or("global.nothing", 1.5), 1.5);
    }

    #[test]
    fn repeated_children() {
        let mut root = Node::new();
        root.push("sensor", Node::leaf("a"));
        root.push("sensor", Node::leaf("b"));
        let all: Vec<_> = root.children_named("sensor").collect();
        assert_eq!(all.len(), 2);
        assert_eq!(root.child("sensor").unwrap().value.as_deref(), Some("a"));
    }

    #[test]
    fn merge_defaults_prefers_existing() {
        let mut g = Node::new();
        g.push("interval", Node::leaf("100"));
        let mut tmpl = Node::new();
        tmpl.push("interval", Node::leaf("1000"));
        tmpl.push("minValues", Node::leaf("3"));
        g.merge_defaults(&tmpl);
        assert_eq!(g.get_u64("interval").unwrap(), 100);
        assert_eq!(g.get_u64("minValues").unwrap(), 3);
    }

    #[test]
    fn to_text_quotes_when_needed() {
        let mut root = Node::new();
        root.push("name", Node::leaf("hello world"));
        root.push("plain", Node::leaf("x"));
        let text = root.to_text();
        assert!(text.contains("\"hello world\""));
        assert!(text.contains("plain x"));
    }
}
