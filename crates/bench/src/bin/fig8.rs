//! Regenerates Figure 8: Collect Agent CPU load (real pipeline execution).

// CLI binary / example: stdout is the product.
#![allow(clippy::print_stdout)]
fn main() {
    println!("Figure 8: Collect Agent per-core CPU load (measured on this machine)\n");
    let full = std::env::args().any(|a| a == "--full");
    let pts = if full {
        dcdb_bench::experiments::fig8::run_full()
    } else {
        println!("(reduced grid; pass --full for the paper's 6×5 grid)\n");
        dcdb_bench::experiments::fig8::run_reduced()
    };
    print!("{}", dcdb_bench::experiments::fig8::render(&pts));
    dcdb_bench::report::write_csv(
        "fig8",
        &["hosts", "sensors", "rate", "cpu_load_percent"],
        &pts.iter()
            .map(|p| {
                vec![
                    p.hosts.to_string(),
                    p.sensors.to_string(),
                    format!("{:.0}", p.rate),
                    format!("{:.2}", p.cpu_load_percent),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
