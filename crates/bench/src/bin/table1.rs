//! Regenerates Table 1 of the paper.

// CLI binary / example: stdout is the product.
#![allow(clippy::print_stdout)]
fn main() {
    let rows = dcdb_bench::experiments::table1::run();
    println!("Table 1: production environments, Pusher configurations and overhead vs HPL\n");
    print!("{}", dcdb_bench::experiments::table1::render(&rows));
    dcdb_bench::report::write_csv(
        "table1",
        &[
            "system",
            "arch",
            "sensors",
            "overhead_percent",
            "paper_percent",
            "memory_mb",
            "cpu_load_percent",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.system.to_string(),
                    r.arch.to_string(),
                    r.sensors.to_string(),
                    format!("{:.3}", r.overhead_percent),
                    format!("{:.3}", r.paper_overhead_percent),
                    format!("{:.1}", r.memory_mb),
                    format!("{:.2}", r.cpu_load_percent),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
