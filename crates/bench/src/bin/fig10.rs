//! Regenerates Figure 10 (use case 2): application characterisation.

// CLI binary / example: stdout is the product.
#![allow(clippy::print_stdout)]
fn main() {
    println!("Figure 10: instructions-per-Watt densities of the CORAL-2 apps (KNL, 100 ms)\n");
    let apps = dcdb_bench::experiments::fig10::run(30);
    print!("{}", dcdb_bench::experiments::fig10::render(&apps));
    dcdb_bench::report::write_csv(
        "fig10",
        &["app", "mean_instr_per_watt", "modes"],
        &apps
            .iter()
            .map(|a| vec![a.workload.to_string(), format!("{:.1}", a.mean), a.modes.to_string()])
            .collect::<Vec<_>>(),
    );
}
