//! Regenerates Figure 5: overhead heat maps on the three architectures.

// CLI binary / example: stdout is the product.
#![allow(clippy::print_stdout)]
fn main() {
    println!("Figure 5: Pusher overhead heat maps (tester plugin, vs HPL)\n");
    for map in dcdb_bench::experiments::fig5::run() {
        println!("{}", dcdb_bench::experiments::fig5::render(&map));
    }
}
