//! Prints the hot-block cache study (cold versus warm dashboard refreshes)
//! and the intra-group fan-in thread-scaling curve, emitting
//! machine-readable results to `results/BENCH_cache.json`.

// CLI binary / example: stdout is the product.
#![allow(clippy::print_stdout)]
use std::fmt::Write as _;

fn main() {
    let r = dcdb_bench::experiments::cache::run_refresh();
    println!(
        "Dashboard refresh study: 1 h / 1 min panel over {} readings, {} warm refreshes\n",
        r.readings,
        dcdb_bench::experiments::cache::REFRESHES,
    );
    print!("{}", dcdb_bench::experiments::cache::render_refresh(&r));
    println!(
        "\nwarm refresh: {} blocks decoded ({} when cold), {:.1}x faster than uncached | \
         results identical: {}",
        r.blocks_warm,
        r.blocks_cold,
        r.warm_speedup(),
        if r.identical { "yes" } else { "NO" }
    );
    assert!(r.identical, "cached aggregation diverged from uncached");
    assert_eq!(r.blocks_warm, 0, "warm refreshes must decode nothing");
    // the acceptance bar: a warm refresh skips every decode, so it must be
    // clearly faster.  Shared CI runners can throttle below the bar without
    // a code defect, so missing it only warns unless BENCH_STRICT=1.
    if r.warm_speedup() < 5.0 {
        let msg = format!("expected >= 5x warm-refresh speedup, got {:.2}x", r.warm_speedup());
        assert!(std::env::var_os("BENCH_STRICT").is_none(), "{msg}");
        eprintln!("warning: {msg} (set BENCH_STRICT=1 to fail on this)");
    }

    let f = dcdb_bench::experiments::cache::run_fanin();
    println!("\nFan-in scaling study: one {}-sensor group, 1 day / 5 min windows\n", f.sensors,);
    print!("{}", dcdb_bench::experiments::cache::render_fanin(&f));
    println!(
        "\nsingle-group fan-in speedup: {:.2}x at {} available cores | \
         all thread counts identical: {}",
        f.max_speedup(),
        f.available_parallelism,
        if f.points.iter().all(|p| p.identical) { "yes" } else { "NO" }
    );
    assert!(f.points.iter().all(|p| p.identical), "parallel fan-in diverged from serial");
    if f.available_parallelism >= 4 && f.max_speedup() < 2.0 {
        let msg = format!(
            "expected >= 2x single-group fan-in speedup on {} cores, got {:.2}x",
            f.available_parallelism,
            f.max_speedup()
        );
        assert!(std::env::var_os("BENCH_STRICT").is_none(), "{msg}");
        eprintln!("warning: {msg} (set BENCH_STRICT=1 to fail on this)");
    }

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"refresh\": {{\"readings\": {}, \"blocks_total\": {}, \"blocks_uncached\": {}, \
         \"blocks_cold\": {}, \"blocks_warm\": {}, \"uncached_us\": {:.1}, \"cold_us\": {:.1}, \
         \"warm_us\": {:.1}, \"warm_speedup\": {:.2}, \"cache_hits\": {}, \"cache_misses\": {}, \
         \"cache_hit_rate\": {:.3}, \"identical\": {}}},",
        r.readings,
        r.blocks_total,
        r.blocks_uncached,
        r.blocks_cold,
        r.blocks_warm,
        r.uncached_s * 1e6,
        r.cold_s * 1e6,
        r.warm_s * 1e6,
        r.warm_speedup(),
        r.cache.hits,
        r.cache.misses,
        r.cache.hit_rate(),
        r.identical,
    );
    let _ = writeln!(
        json,
        "  \"fanin\": {{\"sensors\": {}, \"readings\": {}, \"available_parallelism\": {}, \
         \"max_speedup\": {:.2}, \"points\": [",
        f.sensors,
        f.readings,
        f.available_parallelism,
        f.max_speedup(),
    );
    for (i, p) in f.points.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"threads\": {}, \"latency_ms\": {:.2}, \"identical\": {}}}{}",
            p.threads,
            p.latency_s * 1e3,
            p.identical,
            if i + 1 < f.points.len() { "," } else { "" },
        );
    }
    json.push_str("  ]}\n}\n");
    dcdb_bench::report::write_json("BENCH_cache", &json);
    dcdb_bench::report::write_csv(
        "cache_fanin",
        &["threads", "latency_ms", "identical"],
        &f.points
            .iter()
            .map(|p| {
                vec![
                    p.threads.to_string(),
                    format!("{:.3}", p.latency_s * 1e3),
                    p.identical.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
