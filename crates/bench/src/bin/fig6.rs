//! Regenerates Figure 6: Pusher CPU load and memory usage grid.

// CLI binary / example: stdout is the product.
#![allow(clippy::print_stdout)]
fn main() {
    let pts = dcdb_bench::experiments::fig6::run();
    println!("Figure 6: Pusher per-core CPU load and memory usage (Skylake)\n");
    print!("{}", dcdb_bench::experiments::fig6::render(&pts));
    dcdb_bench::report::write_csv(
        "fig6",
        &["sensors", "interval_ms", "cpu_load_percent", "memory_mb"],
        &pts.iter()
            .map(|p| {
                vec![
                    p.sensors.to_string(),
                    p.interval_ms.to_string(),
                    format!("{:.4}", p.cpu_load_percent),
                    format!("{:.1}", p.memory_mb),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
