//! Prints the alert-engine-overhead study (sustained Collect Agent ingest
//! with a live rule set evaluating on-stream versus no engine), emitting
//! machine-readable results to `results/BENCH_alerts.json`.

// CLI binary / example: stdout is the product.
#![allow(clippy::print_stdout)]
use std::fmt::Write as _;

fn main() {
    let r = dcdb_bench::experiments::alerts::run();
    println!(
        "Alert-engine-overhead study: {} readings in {}-reading publishes, \
         flush every {}, {} interleaved reps per arm, best-of compared\n",
        dcdb_bench::experiments::alerts::TOTAL_READINGS,
        dcdb_bench::experiments::alerts::BATCH,
        dcdb_bench::experiments::alerts::FLUSH_ENTRIES,
        dcdb_bench::experiments::alerts::REPS,
    );
    print!("{}", dcdb_bench::experiments::alerts::render(&r));
    println!(
        "\nengine cost: {:.2} ns/reading = {:+.2}% of ingest \
         (A/B wall delta {:+.2}%, {} host threads) | contents identical: {}",
        r.engine_ns_per_reading,
        r.overhead() * 100.0,
        r.overhead_wall() * 100.0,
        r.host_threads,
        if r.identical() { "yes" } else { "NO" },
    );
    assert!(r.identical(), "alerting changed stored contents");
    // the acceptance bar: on-stream rule evaluation must cost < 2 % of
    // ingest wall time, judged on the directly measured engine cost over
    // the measured ingest cost (the A/B wall delta drowns in scheduler
    // noise on shared runners at this effect size and is reported as
    // context).  Missing the bar only warns unless BENCH_STRICT=1.
    if r.overhead() >= 0.02 {
        let msg = format!("expected < 2% alerting overhead, got {:+.2}%", r.overhead() * 100.0);
        assert!(std::env::var_os("BENCH_STRICT").is_none(), "{msg}");
        eprintln!("warning: {msg} (set BENCH_STRICT=1 to fail on this)");
    }

    let mut json = String::from("{\n");
    for (key, a) in [("on", &r.on), ("off", &r.off)] {
        let walls: Vec<String> = a.walls_s.iter().map(|w| format!("{w:.4}")).collect();
        let _ = writeln!(
            json,
            "  \"{key}\": {{\"wall_s\": {:.4}, \"walls_s\": [{}], \
             \"throughput_rps\": {:.0}, \"transitions\": {}, \
             \"fingerprint\": \"{:016x}\"}},",
            a.wall_s,
            walls.join(", "),
            a.throughput,
            a.transitions,
            a.fingerprint,
        );
    }
    let _ = writeln!(
        json,
        "  \"engine_ns_per_reading\": {:.2}, \"overhead_pct\": {:.3}, \
         \"overhead_wall_pct\": {:.3}, \"identical\": {}, \"host_threads\": {}\n}}",
        r.engine_ns_per_reading,
        r.overhead() * 100.0,
        r.overhead_wall() * 100.0,
        r.identical(),
        r.host_threads,
    );
    dcdb_bench::report::write_json("BENCH_alerts", &json);
    dcdb_bench::report::write_csv(
        "alerts_overhead",
        &["alerting", "wall_s", "throughput_rps", "transitions"],
        &[&r.on, &r.off]
            .iter()
            .map(|a| {
                vec![
                    if a.enabled { "on".to_string() } else { "off".to_string() },
                    format!("{:.4}", a.wall_s),
                    format!("{:.0}", a.throughput),
                    a.transitions.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
