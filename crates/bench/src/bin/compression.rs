//! Prints the compression study: ratio and throughput of the Gorilla codec
//! on simulated device series (see `experiments::compression`).

// CLI binary / example: stdout is the product.
#![allow(clippy::print_stdout)]
fn main() {
    let reports = dcdb_bench::experiments::compression::run();
    println!(
        "Compression study: dcdb-compress on {} simulated 1 Hz series of {} readings\n",
        reports.len(),
        dcdb_bench::experiments::compression::SERIES_LEN,
    );
    print!("{}", dcdb_bench::experiments::compression::render(&reports));
    let min_sstable = reports.iter().map(|r| r.sstable_ratio()).fold(f64::INFINITY, f64::min);
    let min_power = reports
        .iter()
        .filter(|r| r.sensor == "power_w")
        .map(|r| r.payload_ratio())
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nworst ratio vs. v1 SSTable format: {min_sstable:.1}x \
         | worst power-series payload ratio: {min_power:.1}x (acceptance floor: 4x)"
    );
    dcdb_bench::report::write_csv(
        "compression",
        &[
            "workload",
            "sensor",
            "readings",
            "fixed_payload_bytes",
            "compressed_bytes",
            "payload_ratio",
            "sstable_v1_bytes",
            "sstable_v2_bytes",
            "sstable_ratio",
            "encode_per_s",
            "decode_per_s",
        ],
        &reports
            .iter()
            .map(|r| {
                vec![
                    r.workload.to_string(),
                    r.sensor.to_string(),
                    r.readings.to_string(),
                    r.fixed_payload_bytes.to_string(),
                    r.compressed_bytes.to_string(),
                    format!("{:.2}", r.payload_ratio()),
                    r.sstable_v1_bytes.to_string(),
                    r.sstable_v2_bytes.to_string(),
                    format!("{:.2}", r.sstable_ratio()),
                    format!("{:.0}", r.encode_per_s),
                    format!("{:.0}", r.decode_per_s),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
