//! Prints the observability-overhead study (sustained ingest with the
//! metrics layer's timed instrumentation on versus off), emitting
//! machine-readable results to `results/BENCH_obs.json`.

// CLI binary / example: stdout is the product.
#![allow(clippy::print_stdout)]
use std::fmt::Write as _;

fn main() {
    let r = dcdb_bench::experiments::obs::run();
    println!(
        "Observability-overhead study: {} readings in {}-reading batches, \
         flush every {}, {} interleaved reps per arm, best-of compared\n",
        dcdb_bench::experiments::obs::TOTAL_READINGS,
        dcdb_bench::experiments::obs::BATCH,
        dcdb_bench::experiments::obs::FLUSH_ENTRIES,
        dcdb_bench::experiments::obs::REPS,
    );
    print!("{}", dcdb_bench::experiments::obs::render(&r));
    println!(
        "\ninstrumentation overhead: {:+.2}% wall ({} host threads) | \
         contents identical: {}",
        r.overhead() * 100.0,
        r.host_threads,
        if r.identical() { "yes" } else { "NO" },
    );
    assert!(r.identical(), "instrumentation changed stored contents");
    assert!(r.on.insert_observations > 0, "enabled arm recorded no insert latencies");
    assert_eq!(r.off.insert_observations, 0, "disabled arm still recorded latencies");
    // the acceptance bar: always-on instrumentation must cost < 1 % of
    // ingest wall time.  Shared CI runners are noisy enough to breach the
    // bar without a code defect, so missing it only warns unless
    // BENCH_STRICT=1.
    if r.overhead() >= 0.01 {
        let msg =
            format!("expected < 1% instrumentation overhead, got {:+.2}%", r.overhead() * 100.0);
        assert!(std::env::var_os("BENCH_STRICT").is_none(), "{msg}");
        eprintln!("warning: {msg} (set BENCH_STRICT=1 to fail on this)");
    }

    let mut json = String::from("{\n");
    for (key, a) in [("on", &r.on), ("off", &r.off)] {
        let walls: Vec<String> = a.walls_s.iter().map(|w| format!("{w:.4}")).collect();
        let _ = writeln!(
            json,
            "  \"{key}\": {{\"wall_s\": {:.4}, \"walls_s\": [{}], \
             \"throughput_rps\": {:.0}, \"insert_observations\": {}, \
             \"fingerprint\": \"{:016x}\"}},",
            a.wall_s,
            walls.join(", "),
            a.throughput,
            a.insert_observations,
            a.fingerprint,
        );
    }
    let _ = writeln!(
        json,
        "  \"overhead_pct\": {:.3}, \"identical\": {}, \"host_threads\": {}\n}}",
        r.overhead() * 100.0,
        r.identical(),
        r.host_threads,
    );
    dcdb_bench::report::write_json("BENCH_obs", &json);
    dcdb_bench::report::write_csv(
        "obs_overhead",
        &["timing", "wall_s", "throughput_rps", "insert_observations"],
        &[&r.on, &r.off]
            .iter()
            .map(|a| {
                vec![
                    if a.enabled { "on".to_string() } else { "off".to_string() },
                    format!("{:.4}", a.wall_s),
                    format!("{:.0}", a.throughput),
                    a.insert_observations.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
