//! Prints the background-maintenance study (sustained-ingest insert/query
//! latency, synchronous versus background flush/compaction), emitting
//! machine-readable results to `results/BENCH_maintenance.json`.

// CLI binary / example: stdout is the product.
#![allow(clippy::print_stdout)]
use std::fmt::Write as _;

fn main() {
    let r = dcdb_bench::experiments::maintenance::run();
    println!(
        "Sustained-ingest study: {} readings in {}-reading batches, \
         flush every {}, merge every {} runs, concurrent trailing-window reader\n",
        dcdb_bench::experiments::maintenance::TOTAL_READINGS,
        dcdb_bench::experiments::maintenance::BATCH,
        dcdb_bench::experiments::maintenance::FLUSH_ENTRIES,
        dcdb_bench::experiments::maintenance::COMPACTION_THRESHOLD,
    );
    print!("{}", dcdb_bench::experiments::maintenance::render(&r));
    println!(
        "\ninsert p99: {:.0} us sync -> {:.0} us background ({:.1}x) | \
         contents identical: {}",
        r.sync.insert_us.p99,
        r.background.insert_us.p99,
        r.insert_p99_speedup(),
        if r.identical() { "yes" } else { "NO" },
    );
    assert!(r.identical(), "background maintenance changed stored contents");
    assert_eq!(r.background.maintenance.pending_flushes, 0, "quiesce left flushes pending");
    // the acceptance bar: handing flush+merge to the pool must shorten the
    // ingest tail.  Shared CI runners can throttle below the bar without a
    // code defect, so missing it only warns unless BENCH_STRICT=1.
    if r.insert_p99_speedup() < 1.2 {
        let msg = format!(
            "expected background maintenance to improve insert p99 by >= 1.2x, got {:.2}x",
            r.insert_p99_speedup()
        );
        assert!(std::env::var_os("BENCH_STRICT").is_none(), "{msg}");
        eprintln!("warning: {msg} (set BENCH_STRICT=1 to fail on this)");
    }

    let mut json = String::from("{\n");
    for (key, i) in [("sync", &r.sync), ("background", &r.background)] {
        let _ = writeln!(
            json,
            "  \"{key}\": {{\"threads\": {}, \"readings\": {}, \"wall_s\": {:.3}, \
             \"insert_p50_us\": {:.1}, \"insert_p99_us\": {:.1}, \"insert_max_us\": {:.1}, \
             \"query_p50_us\": {:.1}, \"query_p99_us\": {:.1}, \"query_max_us\": {:.1}, \
             \"queries\": {}, \"flushes\": {}, \"compactions\": {}, \
             \"compactions_coalesced\": {}, \"compaction_ms\": {:.1}, \"stalls\": {}, \
             \"stall_ms\": {:.1}}},",
            i.threads,
            i.readings,
            i.wall_s,
            i.insert_us.p50,
            i.insert_us.p99,
            i.insert_us.max,
            i.query_us.p50,
            i.query_us.p99,
            i.query_us.max,
            i.queries,
            i.maintenance.flushes,
            i.maintenance.compactions,
            i.maintenance.compactions_coalesced,
            i.maintenance.compaction_ns as f64 / 1e6,
            i.maintenance.stalls,
            i.maintenance.stall_ns as f64 / 1e6,
        );
    }
    let _ = writeln!(
        json,
        "  \"insert_p99_speedup\": {:.2}, \"identical\": {}\n}}",
        r.insert_p99_speedup(),
        r.identical(),
    );
    dcdb_bench::report::write_json("BENCH_maintenance", &json);
    dcdb_bench::report::write_csv(
        "maintenance_ingest",
        &["mode", "insert_p50_us", "insert_p99_us", "insert_max_us", "query_p99_us", "stalls"],
        &[&r.sync, &r.background]
            .iter()
            .map(|i| {
                vec![
                    if i.threads == 0 { "sync".to_string() } else { "background".to_string() },
                    format!("{:.1}", i.insert_us.p50),
                    format!("{:.1}", i.insert_us.p99),
                    format!("{:.1}", i.insert_us.max),
                    format!("{:.1}", i.query_us.p99),
                    i.maintenance.stalls.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
