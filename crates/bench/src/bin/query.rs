//! Prints the query pushdown study (windowed-aggregation latency with lazy
//! block decode versus the full-decode baseline) and the group-by study
//! (per-rack grouped aggregation, serial versus parallel group execution),
//! emitting machine-readable results to `results/BENCH_query.json`.

// CLI binary / example: stdout is the product.
#![allow(clippy::print_stdout)]
use std::fmt::Write as _;

fn main() {
    let reports = dcdb_bench::experiments::query::run();
    println!(
        "Query pushdown study: 1 h / 1 min windows over {} readings per sensor\n",
        dcdb_bench::experiments::query::SERIES_LEN,
    );
    print!("{}", dcdb_bench::experiments::query::render(&reports));
    let min_speedup = reports.iter().map(|r| r.speedup()).fold(f64::INFINITY, f64::min);
    let all_identical = reports.iter().all(|r| r.identical);
    println!(
        "\nworst pushdown speedup vs. full decode: {min_speedup:.1}x | \
         results identical: {}",
        if all_identical { "yes" } else { "NO" }
    );
    assert!(all_identical, "pushdown and full-decode aggregates diverged");

    let g = dcdb_bench::experiments::query::run_groupby();
    println!(
        "\nGroup-by study: per-rack avg over 1 day / 5 min windows, \
         {} racks x {} sensors\n",
        g.racks, g.nodes_per_rack,
    );
    print!("{}", dcdb_bench::experiments::query::render_groupby(&g));
    let cores = dcdb_query::exec::default_parallelism();
    // on an effectively serial host (one worker) a "speedup" is scheduler
    // noise around 1.0, not a measurement: report it as absent and skip the
    // acceptance bar entirely
    let effectively_serial = g.threads < 2;
    if effectively_serial {
        println!(
            "\nhost is effectively serial ({} worker thread): no parallel speedup to \
             measure | grouped results identical: {}",
            g.threads,
            if g.identical { "yes" } else { "NO" }
        );
    } else {
        println!(
            "\nparallel group execution speedup vs. serial: {:.2}x on {} threads | \
             grouped results identical: {}",
            g.parallel_speedup(),
            g.threads,
            if g.identical { "yes" } else { "NO" }
        );
    }
    assert!(g.identical, "parallel grouped aggregation diverged from serial");
    // the acceptance bar: parallel group execution wins >= 2x on a machine
    // with at least 4 cores (single-core boxes run the serial path, ~1x).
    // Shared CI runners can throttle below the bar without a code defect,
    // so missing it only warns unless BENCH_STRICT=1 makes it fatal.
    if g.threads >= 4 && g.parallel_speedup() < 2.0 {
        let msg = format!(
            "expected >= 2x parallel group-execution speedup on {} threads, got {:.2}x",
            g.threads,
            g.parallel_speedup()
        );
        assert!(std::env::var_os("BENCH_STRICT").is_none(), "{msg}");
        eprintln!("warning: {msg} (set BENCH_STRICT=1 to fail on this)");
    }

    let mut json = String::from("{\n  \"pushdown\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"sensor\": \"{}\", \"readings\": {}, \
             \"blocks_total\": {}, \"blocks_pushdown\": {}, \"blocks_full\": {}, \
             \"pushdown_us\": {:.1}, \"full_us\": {:.1}, \"speedup\": {:.2}, \
             \"identical\": {}}}{}",
            r.workload,
            r.sensor,
            r.readings,
            r.blocks_total,
            r.blocks_pushdown,
            r.blocks_full,
            r.pushdown_s * 1e6,
            r.full_s * 1e6,
            r.speedup(),
            r.identical,
            if i + 1 < reports.len() { "," } else { "" },
        );
    }
    let speedup_json = if effectively_serial {
        "null".to_string()
    } else {
        format!("{:.2}", g.parallel_speedup())
    };
    let _ = writeln!(
        json,
        "  ],\n  \"groupby\": {{\"racks\": {}, \"nodes_per_rack\": {}, \"readings\": {}, \
         \"threads\": {}, \"available_parallelism\": {cores}, \"serial_ms\": {:.2}, \
         \"parallel_ms\": {:.2}, \"parallel_speedup\": {speedup_json}, \"fanin_ms\": {:.2}, \
         \"blocks_grouped\": {}, \"blocks_fanin\": {}, \"identical\": {}}}\n}}",
        g.racks,
        g.nodes_per_rack,
        g.readings,
        g.threads,
        g.serial_s * 1e3,
        g.parallel_s * 1e3,
        g.fanin_s * 1e3,
        g.blocks_grouped,
        g.blocks_fanin,
        g.identical,
    );
    dcdb_bench::report::write_json("BENCH_query", &json);
    dcdb_bench::report::write_csv(
        "query",
        &[
            "workload",
            "sensor",
            "readings",
            "blocks_total",
            "blocks_pushdown",
            "blocks_full",
            "pushdown_us",
            "full_us",
            "speedup",
            "readings_per_s",
        ],
        &reports
            .iter()
            .map(|r| {
                vec![
                    r.workload.to_string(),
                    r.sensor.to_string(),
                    r.readings.to_string(),
                    r.blocks_total.to_string(),
                    r.blocks_pushdown.to_string(),
                    r.blocks_full.to_string(),
                    format!("{:.1}", r.pushdown_s * 1e6),
                    format!("{:.1}", r.full_s * 1e6),
                    format!("{:.2}", r.speedup()),
                    format!("{:.0}", r.readings_per_s()),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
