//! Prints the query pushdown study: windowed-aggregation latency with lazy
//! block decode versus the full-decode baseline (see `experiments::query`).
fn main() {
    let reports = dcdb_bench::experiments::query::run();
    println!(
        "Query pushdown study: 1 h / 1 min windows over {} readings per sensor\n",
        dcdb_bench::experiments::query::SERIES_LEN,
    );
    print!("{}", dcdb_bench::experiments::query::render(&reports));
    let min_speedup = reports.iter().map(|r| r.speedup()).fold(f64::INFINITY, f64::min);
    let all_identical = reports.iter().all(|r| r.identical);
    println!(
        "\nworst pushdown speedup vs. full decode: {min_speedup:.1}x | \
         results identical: {}",
        if all_identical { "yes" } else { "NO" }
    );
    assert!(all_identical, "pushdown and full-decode aggregates diverged");
    dcdb_bench::report::write_csv(
        "query",
        &[
            "workload",
            "sensor",
            "readings",
            "blocks_total",
            "blocks_pushdown",
            "blocks_full",
            "pushdown_us",
            "full_us",
            "speedup",
            "readings_per_s",
        ],
        &reports
            .iter()
            .map(|r| {
                vec![
                    r.workload.to_string(),
                    r.sensor.to_string(),
                    r.readings.to_string(),
                    r.blocks_total.to_string(),
                    r.blocks_pushdown.to_string(),
                    r.blocks_full.to_string(),
                    format!("{:.1}", r.pushdown_s * 1e6),
                    format!("{:.1}", r.full_s * 1e6),
                    format!("{:.2}", r.speedup()),
                    format!("{:.0}", r.readings_per_s()),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
