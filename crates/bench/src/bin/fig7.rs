//! Regenerates Figure 7 + Equation 1: CPU load scaling model.

// CLI binary / example: stdout is the product.
#![allow(clippy::print_stdout)]
fn main() {
    let curves = dcdb_bench::experiments::fig7::run();
    println!("Figure 7: CPU load vs sensor rate, with least-squares fits\n");
    print!("{}", dcdb_bench::experiments::fig7::render(&curves));
    println!("Equation 1 check (interpolate 5000 sensors from 1000 and 10000):");
    for arch in dcdb_sim::Arch::ALL {
        let (interp, direct) = dcdb_bench::experiments::fig7::eq1_check(arch, 1000, 10000, 5000);
        println!("  {arch}: Eq.1 → {interp:.4}%, model → {direct:.4}%");
    }
}
