//! Regenerates the design ablations of DESIGN.md §5.

// CLI binary / example: stdout is the product.
#![allow(clippy::print_stdout)]
fn main() {
    println!("Ablation 1: storage partitioning (query fan-out of node-level queries)\n");
    let p = dcdb_bench::experiments::ablations::partition_ablation(8, 64, 100);
    println!(
        "  {} servers: prefix partitioner touches {:.2} server(s)/query, random {:.2}",
        p.servers, p.prefix_fanout, p.random_fanout
    );
    println!(
        "\nAblation 2: push vs pull read-timestamp alignment (50 hosts, 1 h since NTP sync)\n"
    );
    let t = dcdb_bench::experiments::ablations::timing_ablation(50, 1000, 10);
    println!(
        "  push spread {:.1} ms vs pull spread {:.1} ms",
        t.push_spread_ns as f64 / 1e6,
        t.pull_spread_ns as f64 / 1e6
    );
}
