//! Regenerates Figure 4: Pusher overhead on CORAL-2 benchmarks, weak scaling.

// CLI binary / example: stdout is the product.
#![allow(clippy::print_stdout)]
fn main() {
    let pts = dcdb_bench::experiments::fig4::run();
    println!("Figure 4: Pusher overhead on CORAL-2 MPI benchmarks (SuperMUC-NG)\n");
    print!("{}", dcdb_bench::experiments::fig4::render(&pts));
    let (cont, burst) = dcdb_bench::experiments::fig4::amg_burst_ablation();
    println!("\nAMG@1024 send-policy ablation: continuous {cont:.2}% vs 2/min bursts {burst:.2}%");
    dcdb_bench::report::write_csv(
        "fig4",
        &["benchmark", "nodes", "total_percent", "core_percent"],
        &pts.iter()
            .map(|p| {
                vec![
                    p.workload.to_string(),
                    p.nodes.to_string(),
                    format!("{:.3}", p.total_percent),
                    format!("{:.3}", p.core_percent),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
