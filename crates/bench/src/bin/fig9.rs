//! Regenerates Figure 9 (use case 1): efficiency of heat removal.

// CLI binary / example: stdout is the product.
#![allow(clippy::print_stdout)]
fn main() {
    println!("Figure 9: CooLMUC-3 heat-removal efficiency (full pipeline, 24 h)\n");
    let cs = dcdb_bench::experiments::fig9::run(60.0);
    print!("{}", dcdb_bench::experiments::fig9::render(&cs));
    dcdb_bench::report::write_csv(
        "fig9",
        &["hour", "power_kw", "heat_removed_kw", "inlet_c"],
        &cs.series
            .iter()
            .map(|(h, p, q, t)| {
                vec![format!("{h:.3}"), format!("{p:.2}"), format!("{q:.2}"), format!("{t:.2}")]
            })
            .collect::<Vec<_>>(),
    );
}
