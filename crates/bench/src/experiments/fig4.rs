//! **Figure 4**: Pusher overhead on the CORAL-2 MPI benchmarks on
//! SuperMUC-NG, weak-scaling 128 → 1024 nodes, with the production plugin
//! set (`total`) and a tester configuration of equal sensor count (`core`).
//!
//! Expected shape: LAMMPS/Quicksilver/Kripke stay below 3% with minimal
//! growth; AMG grows roughly linearly with node count and peaks near 9% at
//! 1024 nodes, with the tester runs showing that AMG's overhead is mostly
//! network interference while the others' is mostly sampling cost.

use dcdb_sim::overhead::{mpi_overhead_percent, PusherConfig, SendPolicy};
use dcdb_sim::{Arch, Workload};

use super::measurement_noise;

/// Node counts of the paper's weak-scaling study.
pub const NODE_COUNTS: [usize; 4] = [128, 256, 512, 1024];

/// One measurement.
#[derive(Debug, Clone)]
pub struct Point {
    /// Benchmark.
    pub workload: Workload,
    /// Node count.
    pub nodes: usize,
    /// Production-config overhead, percent (`total`).
    pub total_percent: f64,
    /// Tester-config overhead, percent (`core`).
    pub core_percent: f64,
}

/// Run the full sweep (deterministic seed).
pub fn run() -> Vec<Point> {
    let arch = Arch::Skylake;
    let total_cfg = PusherConfig::production(arch);
    let core_cfg = PusherConfig::tester(total_cfg.total_sensors(), 1000);
    let mut out = Vec::new();
    for workload in Workload::CORAL2 {
        for (i, &nodes) in NODE_COUNTS.iter().enumerate() {
            let seed = (workload as u64 + 1) * 1000 + i as u64;
            let noise = measurement_noise(seed, 0.15);
            out.push(Point {
                workload,
                nodes,
                total_percent: mpi_overhead_percent(workload, nodes, &total_cfg, arch, noise),
                core_percent: mpi_overhead_percent(workload, nodes, &core_cfg, arch, noise * 0.5),
            });
        }
    }
    out
}

/// The burst-policy ablation for AMG (paper §6.2.1: bursts twice per minute
/// performed best for AMG).  Returns `(continuous, burst)` overhead at
/// 1024 nodes.
pub fn amg_burst_ablation() -> (f64, f64) {
    let arch = Arch::Skylake;
    let mut cfg = PusherConfig::production(arch);
    let cont = mpi_overhead_percent(Workload::Amg, 1024, &cfg, arch, 0.0);
    cfg.policy = SendPolicy::Burst { per_minute: 2 };
    let burst = mpi_overhead_percent(Workload::Amg, 1024, &cfg, arch, 0.0);
    (cont, burst)
}

/// Render the figure as a table.
pub fn render(points: &[Point]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.workload.to_string(),
                p.nodes.to_string(),
                format!("{:.2}", p.total_percent),
                format!("{:.2}", p.core_percent),
            ]
        })
        .collect();
    crate::report::table(&["benchmark", "nodes", "total [%]", "core [%]"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points_for(w: Workload) -> Vec<Point> {
        run().into_iter().filter(|p| p.workload == w).collect()
    }

    #[test]
    fn amg_grows_and_peaks_near_nine_percent() {
        let amg = points_for(Workload::Amg);
        for w in amg.windows(2) {
            assert!(w[1].total_percent > w[0].total_percent, "AMG must grow with nodes");
        }
        let peak = amg.last().unwrap().total_percent;
        assert!((6.0..12.0).contains(&peak), "AMG@1024 = {peak:.2}%");
    }

    #[test]
    fn other_benchmarks_stay_low_and_flat() {
        for w in [Workload::Lammps, Workload::Kripke, Workload::Quicksilver] {
            let pts = points_for(w);
            for p in &pts {
                assert!(p.total_percent < 3.0, "{w}@{} = {:.2}%", p.nodes, p.total_percent);
            }
            let growth = pts.last().unwrap().total_percent - pts.first().unwrap().total_percent;
            assert!(growth < 1.0, "{w} grows {growth:.2}% over the sweep");
        }
    }

    #[test]
    fn core_config_reveals_network_share() {
        // AMG: core ≈ total (network-dominated); Kripke: core ≪ total.
        let amg = points_for(Workload::Amg).pop().unwrap();
        assert!(amg.core_percent > 0.5 * amg.total_percent);
        let kripke = points_for(Workload::Kripke).pop().unwrap();
        assert!(kripke.core_percent < 0.5 * kripke.total_percent);
    }

    #[test]
    fn bursting_reduces_amg_interference() {
        let (cont, burst) = amg_burst_ablation();
        assert!(burst < cont, "burst {burst:.2}% !< continuous {cont:.2}%");
        assert!(burst > 0.0);
    }

    #[test]
    fn full_grid_rendered() {
        let pts = run();
        assert_eq!(pts.len(), 4 * NODE_COUNTS.len());
        let text = render(&pts);
        assert!(text.contains("amg") && text.contains("1024"));
    }
}
