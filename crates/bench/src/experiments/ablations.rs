//! Design-choice ablations (DESIGN.md §5) — experiments the paper argues
//! qualitatively, quantified here:
//!
//! * **SID-prefix vs random partitioning**: DCDB routes a sensor sub-tree to
//!   one storage server to avoid inter-server traffic (§4.3).  The ablation
//!   counts how many distinct servers a node-level query fan-out touches.
//! * **Push vs pull timing**: push-based monitoring samples on a
//!   synchronised grid; a pull-based server polls hosts with per-host phase
//!   offsets, so readings of the same round scatter in time (§4.1, §8's
//!   LDMS critique).  The ablation measures the cross-host timestamp spread.

use std::sync::Arc;

use dcdb_sid::{PartitionMap, SensorId};
use dcdb_sim::clock::align_up;
use dcdb_sim::{NodeClock, SimClock, NS_PER_MS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Partitioning ablation result.
#[derive(Debug, Clone)]
pub struct PartitionAblation {
    /// Storage servers in the cluster.
    pub servers: usize,
    /// Mean distinct servers touched when querying all sensors of one node
    /// with hierarchical (prefix) partitioning.
    pub prefix_fanout: f64,
    /// Same with the random partitioner.
    pub random_fanout: f64,
}

/// Query fan-out of node-level queries under both partitioners.
pub fn partition_ablation(
    servers: usize,
    nodes: usize,
    sensors_per_node: usize,
) -> PartitionAblation {
    let prefix = PartitionMap::prefix(servers, 3);
    let random = PartitionMap::random(servers);
    let fanout = |map: &PartitionMap| -> f64 {
        let mut total = 0usize;
        for n in 0..nodes {
            let mut touched = std::collections::HashSet::new();
            for s in 0..sensors_per_node {
                let sid = SensorId::from_topic(&format!("/sys/rack{}/node{n}/s{s}", n % 8))
                    .expect("generated topic is well-formed");
                touched.insert(map.node_for(sid));
            }
            total += touched.len();
        }
        total as f64 / nodes as f64
    };
    PartitionAblation { servers, prefix_fanout: fanout(&prefix), random_fanout: fanout(&random) }
}

/// Push-vs-pull timing ablation result.
#[derive(Debug, Clone)]
pub struct TimingAblation {
    /// Hosts sampled.
    pub hosts: usize,
    /// Max spread of same-round read timestamps under push (grid-aligned,
    /// NTP-synchronised), ns.
    pub push_spread_ns: i64,
    /// Max spread under pull (server polls hosts sequentially), ns.
    pub pull_spread_ns: i64,
}

/// Measure timestamp alignment across `hosts` for one sampling round.
///
/// Push: every host reads at the grid tick of its NTP-disciplined clock.
/// Pull: a central server polls hosts one after another at `poll_gap_ms`
/// spacing (the fundamental serialisation of pull-based collection).
pub fn timing_ablation(hosts: usize, interval_ms: i64, poll_gap_ms: i64) -> TimingAblation {
    let base = SimClock::new();
    let mut rng = StdRng::seed_from_u64(42);
    let clocks: Vec<NodeClock> =
        (0..hosts).map(|_| NodeClock::new(Arc::clone(&base), rng.gen_range(-20.0..20.0))).collect();
    // an hour since the last NTP sync accrues realistic drift
    base.advance(3600 * 1_000_000_000);

    let grid = align_up(base.now(), interval_ms * NS_PER_MS);
    // push: each host reads when its local clock shows the grid time; the
    // true time of that read differs only by the residual clock error
    let push_times: Vec<i64> = clocks.iter().map(|c| grid + (grid - c.now())).collect();
    // pull: the server reaches host i at grid + i·gap
    let pull_times: Vec<i64> =
        (0..hosts).map(|i| grid + i as i64 * poll_gap_ms * NS_PER_MS).collect();

    let spread =
        |v: &[i64]| v.iter().max().expect("hosts > 0") - v.iter().min().expect("hosts > 0");
    TimingAblation {
        hosts,
        push_spread_ns: spread(&push_times),
        pull_spread_ns: spread(&pull_times),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_partitioning_keeps_queries_local() {
        let a = partition_ablation(8, 64, 100);
        assert_eq!(a.prefix_fanout, 1.0, "node sub-tree must live on one server");
        assert!(a.random_fanout > 6.0, "random partitioning scatters: fan-out {}", a.random_fanout);
    }

    #[test]
    fn single_server_degenerate_case() {
        let a = partition_ablation(1, 8, 10);
        assert_eq!(a.prefix_fanout, 1.0);
        assert_eq!(a.random_fanout, 1.0);
    }

    #[test]
    fn push_aligns_better_than_pull() {
        let t = timing_ablation(50, 1000, 10);
        // pull spreads reads across hosts × gap = 490 ms
        assert!(t.pull_spread_ns >= 400 * NS_PER_MS);
        // push spread is bounded by clock drift (±20 ppm over an hour ≈ ±72 ms)
        assert!(t.push_spread_ns < 200 * NS_PER_MS);
        assert!(
            t.push_spread_ns * 2 < t.pull_spread_ns,
            "push {} vs pull {}",
            t.push_spread_ns,
            t.pull_spread_ns
        );
    }

    #[test]
    fn ntp_sync_shrinks_push_spread_further() {
        // right after a sync, residual error is ~0
        let base = SimClock::new();
        let clocks: Vec<NodeClock> =
            (0..10).map(|i| NodeClock::new(Arc::clone(&base), i as f64)).collect();
        base.advance(3600 * 1_000_000_000);
        for c in &clocks {
            c.ntp_sync();
        }
        let errs: Vec<i64> = clocks.iter().map(|c| c.error_ns()).collect();
        assert!(errs.iter().all(|e| *e == 0));
    }
}
