//! **Figure 5**: heat maps of Pusher overhead vs HPL for 25 tester-plugin
//! configurations (sampling interval × sensor count) on each of the three
//! architectures.
//!
//! Expected shape: everything with ≤1000 sensors stays below 1%; gradients
//! increase toward many sensors at short intervals; Skylake stays nearly
//! flat, Knights Landing shows the steepest gradient with a worst case of a
//! few percent; many cells read exactly 0 (median monitored run not slower).

use dcdb_sim::overhead::{hpl_overhead_percent, PusherConfig};
use dcdb_sim::Arch;

use super::measurement_noise;

/// Sensor counts on the x axis.
pub const SENSORS: [usize; 5] = [10, 100, 1000, 5000, 10000];

/// Sampling intervals (ms) on the y axis.
pub const INTERVALS_MS: [u64; 5] = [100, 250, 500, 1000, 10000];

/// One architecture's heat map: `values[interval_idx][sensor_idx]`, percent.
#[derive(Debug, Clone)]
pub struct HeatMap {
    /// Architecture.
    pub arch: Arch,
    /// Overhead values in percent.
    pub values: Vec<Vec<f64>>,
}

/// Compute the three heat maps.
pub fn run() -> Vec<HeatMap> {
    Arch::ALL
        .iter()
        .map(|&arch| {
            let values = INTERVALS_MS
                .iter()
                .enumerate()
                .map(|(yi, &interval)| {
                    SENSORS
                        .iter()
                        .enumerate()
                        .map(|(xi, &sensors)| {
                            let cfg = PusherConfig::tester(sensors, interval);
                            let seed = (arch as u64) << 16 | (yi as u64) << 8 | xi as u64;
                            // jitter comparable to the paper's cell scatter
                            let noise = measurement_noise(seed, 0.25);
                            hpl_overhead_percent(&cfg, arch, noise)
                        })
                        .collect()
                })
                .collect();
            HeatMap { arch, values }
        })
        .collect()
}

/// Render one heat map.
pub fn render(map: &HeatMap) -> String {
    crate::report::heatmap(
        &format!("Overhead [%] on the {} architecture (tester plugin, vs HPL)", map.arch),
        &SENSORS.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &INTERVALS_MS.iter().map(|i| format!("{i}ms")).collect::<Vec<_>>(),
        &map.values,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_for(arch: Arch) -> HeatMap {
        run().into_iter().find(|m| m.arch == arch).unwrap()
    }

    #[test]
    fn small_configs_below_one_percent() {
        // paper: "in all configurations with 1,000 sensors or less ... below 1%"
        for m in run() {
            for row in &m.values {
                for (xi, v) in row.iter().enumerate() {
                    if SENSORS[xi] <= 1000 {
                        assert!(*v < 1.0, "{:?}: {} sensors → {v:.2}%", m.arch, SENSORS[xi]);
                    }
                }
            }
        }
    }

    #[test]
    fn knl_has_steepest_corner() {
        // worst cell = most sensors (x=4) at shortest interval (y=0)
        let knl = map_for(Arch::KnightsLanding).values[0][4];
        let sky = map_for(Arch::Skylake).values[0][4];
        let has = map_for(Arch::Haswell).values[0][4];
        assert!(knl > has && has > sky, "corner: knl {knl:.2} has {has:.2} sky {sky:.2}");
        assert!((2.0..5.0).contains(&knl), "KNL worst case {knl:.2}%");
        assert!(sky < 1.0, "Skylake stays flat: {sky:.2}%");
    }

    #[test]
    fn gradient_along_both_axes() {
        let knl = map_for(Arch::KnightsLanding);
        // more sensors at fixed interval → no less overhead (model+noise: compare extremes)
        assert!(knl.values[0][4] > knl.values[0][0]);
        // longer interval at fixed sensors → less overhead
        assert!(knl.values[0][4] > knl.values[4][4]);
    }

    #[test]
    fn some_cells_are_zero() {
        // the paper's maps are full of exact zeros
        let zeros: usize =
            run().iter().flat_map(|m| m.values.iter().flatten()).filter(|v| **v == 0.0).count();
        assert!(zeros >= 5, "only {zeros} zero cells");
    }

    #[test]
    fn render_shows_axes() {
        let text = render(&map_for(Arch::Skylake));
        assert!(text.contains("10000"));
        assert!(text.contains("100ms"));
    }
}
