//! One module per paper artefact; see the crate docs for the index.

pub mod ablations;
pub mod alerts;
pub mod cache;
pub mod compression;
pub mod fig10;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod maintenance;
pub mod obs;
pub mod query;
pub mod table1;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic measurement jitter for the overhead heat maps: the paper's
/// cells scatter around the model value and clamp at zero (a monitored run
/// is often not measurably slower than the median reference run).
pub fn measurement_noise(seed: u64, magnitude: f64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    rng.gen_range(-magnitude..magnitude)
}
