//! Query pushdown study: windowed-aggregation latency with lazy block
//! decode versus the pre-`dcdb-query` full-decode path.
//!
//! A day of simulated 1 Hz sensor data (per workload: the power and
//! instruction sensors of a `dcdb-sim` node) is flushed into several
//! SSTable runs of compressed [`dcdb_store::sstable::BLOCK_LEN`]-reading
//! blocks.  A
//! dashboard-style query — one hour of the day, 1-minute windows — then
//! runs two ways:
//!
//! * **pushdown** — [`QueryEngine::aggregate_sid`]: only blocks whose
//!   `(min_ts, max_ts)` headers intersect the hour are decompressed,
//! * **full decode** — what the store did before this subsystem existed:
//!   materialise the *entire* series (`query_range` over all time, decoding
//!   every block), slice the hour out, aggregate.
//!
//! Expected shape: both produce bit-identical window values; pushdown
//! decodes ~4–5% of the blocks and wins latency by roughly the same factor
//! (the decode-counter columns make the mechanism visible, the timing
//! columns the effect).

use std::sync::Arc;
use std::time::Instant;

use dcdb_query::{window_aggregate, AggFn, QueryEngine, SensorGroup};
use dcdb_sim::workloads::BehaviorTrace;
use dcdb_sim::{Arch, Workload};
use dcdb_store::reading::TimeRange;
use dcdb_store::{NodeConfig, StoreCluster};

/// Sampling interval of the simulated sensors (1 s).
pub const INTERVAL_NS: i64 = 1_000_000_000;
/// Readings per series: one day at 1 Hz.
pub const SERIES_LEN: usize = 86_400;
/// Queried slice: one hour of the day.
pub const QUERY_LEN: usize = 3_600;
/// Aggregation window: one minute.
pub const WINDOW_NS: i64 = 60 * INTERVAL_NS;
/// Timing repetitions (best-of to shrug off scheduler noise).
const REPS: usize = 5;

/// Results for one simulated sensor series.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// Workload driving the simulated node.
    pub workload: &'static str,
    /// Which sensor of the node was recorded.
    pub sensor: &'static str,
    /// Readings stored for the sensor.
    pub readings: usize,
    /// Compressed blocks the sensor's runs hold.
    pub blocks_total: u64,
    /// Blocks decompressed by the pushdown aggregate.
    pub blocks_pushdown: u64,
    /// Blocks decompressed by the full-decode baseline.
    pub blocks_full: u64,
    /// Pushdown aggregate latency, seconds (best of `REPS` repetitions).
    pub pushdown_s: f64,
    /// Full-decode aggregate latency, seconds (best of `REPS` repetitions).
    pub full_s: f64,
    /// Output windows produced.
    pub windows: usize,
    /// Window values identical between the two paths?
    pub identical: bool,
}

impl QueryReport {
    /// Latency win of pushdown over full decode.
    pub fn speedup(&self) -> f64 {
        self.full_s.max(1e-12) / self.pushdown_s.max(1e-12)
    }

    /// Readings the pushdown path effectively serves per second (the whole
    /// stored series divided by the query latency).
    pub fn readings_per_s(&self) -> f64 {
        self.readings as f64 / self.pushdown_s.max(1e-12)
    }
}

fn measure(workload: Workload, name: &'static str) -> Vec<QueryReport> {
    let mut trace = BehaviorTrace::new(workload, Arch::Skylake.spec(), INTERVAL_NS, 11);
    let samples = trace.take(SERIES_LEN);
    let power: Vec<f64> = samples.iter().map(|s| s.power_w.round()).collect();
    let instr: Vec<f64> = samples.iter().map(|s| s.instructions_per_core.round()).collect();
    vec![measure_series(name, "power_w", &power), measure_series(name, "instructions", &instr)]
}

fn measure_series(workload: &'static str, sensor: &'static str, values: &[f64]) -> QueryReport {
    // several runs, like a live node that flushed a few times over the day
    let cluster = Arc::new(StoreCluster::new(
        NodeConfig { memtable_flush_entries: SERIES_LEN / 4, ..Default::default() },
        dcdb_sid::PartitionMap::prefix(1, 3),
        1,
    ));
    let sid = dcdb_sid::SensorId::from_fields(&[2]).expect("static sid");
    for (i, &v) in values.iter().enumerate() {
        cluster.insert(sid, i as i64 * INTERVAL_NS, v);
    }
    cluster.node(0).flush();

    // the dashboard hour: 20:00–21:00 of the simulated day
    let start = (20 * 3600) as i64 * INTERVAL_NS;
    let range = TimeRange::new(start, start + QUERY_LEN as i64 * INTERVAL_NS);
    let engine = QueryEngine::new(Arc::clone(&cluster));

    let mut pushdown_s = f64::INFINITY;
    let mut pushed = Vec::new();
    let base = cluster.blocks_decoded();
    for _ in 0..REPS {
        let t = Instant::now();
        pushed = engine.aggregate_sid(sid, range, WINDOW_NS, AggFn::Avg);
        pushdown_s = pushdown_s.min(t.elapsed().as_secs_f64());
    }
    let blocks_pushdown = (cluster.blocks_decoded() - base) / REPS as u64;

    let mut full_s = f64::INFINITY;
    let mut full = Vec::new();
    let base = cluster.blocks_decoded();
    for _ in 0..REPS {
        let t = Instant::now();
        // the pre-pushdown query path: decode the whole series, then window
        let everything = cluster.query(sid, TimeRange::all());
        full = window_aggregate(
            everything.into_iter().filter(|r| range.contains(r.ts)),
            WINDOW_NS,
            AggFn::Avg,
        );
        full_s = full_s.min(t.elapsed().as_secs_f64());
    }
    let blocks_full = (cluster.blocks_decoded() - base) / REPS as u64;

    let identical = pushed.len() == full.len()
        && pushed
            .iter()
            .zip(&full)
            .all(|(a, b)| a.ts == b.ts && a.value.to_bits() == b.value.to_bits());

    QueryReport {
        workload,
        sensor,
        readings: values.len(),
        blocks_total: cluster.block_count() as u64,
        blocks_pushdown,
        blocks_full,
        pushdown_s,
        full_s,
        windows: pushed.len(),
        identical,
    }
}

/// Run the study across the workload suite.
pub fn run() -> Vec<QueryReport> {
    let mut out = Vec::new();
    out.extend(measure(Workload::Hpl, "HPL"));
    out.extend(measure(Workload::Lammps, "LAMMPS"));
    out
}

/// Racks in the group-by study.
pub const GROUPBY_RACKS: usize = 8;
/// Nodes (power sensors) per rack.
pub const GROUPBY_NODES: usize = 4;

/// Results of the group-by study: per-rack grouped aggregation over the
/// 1-day sim workload, serial versus parallel group execution, against the
/// ungrouped whole-tree fan-in.
#[derive(Debug, Clone)]
pub struct GroupByReport {
    /// Racks (= groups).
    pub racks: usize,
    /// Power sensors per rack.
    pub nodes_per_rack: usize,
    /// Total readings stored.
    pub readings: usize,
    /// Worker threads the parallel run used.
    pub threads: usize,
    /// Grouped aggregation, groups evaluated serially (best-of reps), s.
    pub serial_s: f64,
    /// Grouped aggregation, groups evaluated in parallel, s.
    pub parallel_s: f64,
    /// Ungrouped whole-tree fan-in (one series), s.
    pub fanin_s: f64,
    /// Blocks decoded by one grouped run.
    pub blocks_grouped: u64,
    /// Blocks decoded by one ungrouped fan-in run.
    pub blocks_fanin: u64,
    /// Parallel results bit-identical to serial?
    pub identical: bool,
}

impl GroupByReport {
    /// Speedup of parallel over serial group execution.
    pub fn parallel_speedup(&self) -> f64 {
        self.serial_s.max(1e-12) / self.parallel_s.max(1e-12)
    }
}

/// Run the group-by study: a [`GROUPBY_RACKS`]×[`GROUPBY_NODES`] sensor
/// tree with one simulated day of 1 Hz power data per sensor, queried as
/// "average power per rack over the day in 5-minute windows".
pub fn run_groupby() -> GroupByReport {
    // one day-long HPL power trace, offset per node so series differ
    let mut trace = BehaviorTrace::new(Workload::Hpl, Arch::Skylake.spec(), INTERVAL_NS, 23);
    let power: Vec<f64> = trace.take(SERIES_LEN).iter().map(|s| s.power_w.round()).collect();

    let cluster = Arc::new(StoreCluster::new(
        NodeConfig { memtable_flush_entries: SERIES_LEN, ..Default::default() },
        dcdb_sid::PartitionMap::prefix(1, 2),
        1,
    ));
    let sid = |rack: usize, node: usize| {
        dcdb_sid::SensorId::from_fields(&[5, rack as u16 + 1, node as u16 + 1]).expect("static sid")
    };
    for rack in 0..GROUPBY_RACKS {
        for node in 0..GROUPBY_NODES {
            let offset = (rack * GROUPBY_NODES + node) as f64;
            for (i, &v) in power.iter().enumerate() {
                cluster.insert(sid(rack, node), i as i64 * INTERVAL_NS, v + offset);
            }
            cluster.node(0).flush();
        }
    }

    let engine = QueryEngine::new(Arc::clone(&cluster));
    let range = TimeRange::new(0, SERIES_LEN as i64 * INTERVAL_NS);
    let window = 300 * INTERVAL_NS; // 5-minute windows
    let groups: Vec<SensorGroup<usize>> = (0..GROUPBY_RACKS)
        .map(|rack| SensorGroup {
            key: rack,
            sids: (0..GROUPBY_NODES).map(|node| (sid(rack, node), 1.0)).collect(),
        })
        .collect();
    let threads = dcdb_query::exec::default_parallelism();

    let mut serial_s = f64::INFINITY;
    let mut serial = Vec::new();
    for _ in 0..3 {
        let t = Instant::now();
        serial = engine.aggregate_grouped_on(groups.clone(), range, window, AggFn::Avg, 1);
        serial_s = serial_s.min(t.elapsed().as_secs_f64());
    }
    let base = cluster.blocks_decoded();
    let mut parallel_s = f64::INFINITY;
    let mut parallel = Vec::new();
    for _ in 0..3 {
        let t = Instant::now();
        parallel = engine.aggregate_grouped(groups.clone(), range, window, AggFn::Avg);
        parallel_s = parallel_s.min(t.elapsed().as_secs_f64());
    }
    let blocks_grouped = (cluster.blocks_decoded() - base) / 3;

    let all: Vec<(dcdb_sid::SensorId, f64)> =
        groups.iter().flat_map(|g| g.sids.iter().copied()).collect();
    let base = cluster.blocks_decoded();
    let mut fanin_s = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        engine.aggregate(&all, range, window, AggFn::Avg);
        fanin_s = fanin_s.min(t.elapsed().as_secs_f64());
    }
    let blocks_fanin = (cluster.blocks_decoded() - base) / 3;

    let identical = serial.len() == parallel.len()
        && serial.iter().zip(&parallel).all(|((ka, a), (kb, b))| {
            ka == kb
                && a.len() == b.len()
                && a.iter()
                    .zip(b)
                    .all(|(x, y)| x.ts == y.ts && x.value.to_bits() == y.value.to_bits())
        });

    GroupByReport {
        racks: GROUPBY_RACKS,
        nodes_per_rack: GROUPBY_NODES,
        readings: GROUPBY_RACKS * GROUPBY_NODES * SERIES_LEN,
        threads,
        serial_s,
        parallel_s,
        fanin_s,
        blocks_grouped,
        blocks_fanin,
        identical,
    }
}

/// Render the group-by report.
pub fn render_groupby(r: &GroupByReport) -> String {
    let rows = vec![vec![
        format!("{}x{}", r.racks, r.nodes_per_rack),
        r.readings.to_string(),
        r.threads.to_string(),
        format!("{:.1}", r.serial_s * 1e3),
        format!("{:.1}", r.parallel_s * 1e3),
        format!("{:.2}x", r.parallel_speedup()),
        format!("{:.1}", r.fanin_s * 1e3),
        r.blocks_grouped.to_string(),
        r.blocks_fanin.to_string(),
        if r.identical { "yes" } else { "NO" }.to_string(),
    ]];
    crate::report::table(
        &[
            "racks",
            "readings",
            "threads",
            "serial ms",
            "parallel ms",
            "speedup",
            "fan-in ms",
            "blk grp",
            "blk fan",
            "identical",
        ],
        &rows,
    )
}

/// Render the report table.
pub fn render(reports: &[QueryReport]) -> String {
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.workload.to_string(),
                r.sensor.to_string(),
                r.readings.to_string(),
                r.blocks_total.to_string(),
                r.blocks_pushdown.to_string(),
                r.blocks_full.to_string(),
                format!("{:.0}", r.pushdown_s * 1e6),
                format!("{:.0}", r.full_s * 1e6),
                format!("{:.1}x", r.speedup()),
                format!("{:.0}", r.readings_per_s() / 1e6),
                if r.identical { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    crate::report::table(
        &[
            "workload",
            "sensor",
            "readings",
            "blocks",
            "dec push",
            "dec full",
            "push us",
            "full us",
            "speedup",
            "Mr/s",
            "identical",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdb_store::sstable::BLOCK_LEN;

    #[test]
    fn pushdown_decodes_a_fraction_of_the_blocks() {
        let reports = run();
        assert_eq!(reports.len(), 4);
        for r in &reports {
            assert!(r.identical, "{}/{}: pushdown diverged from full decode", r.workload, r.sensor);
            assert_eq!(r.windows, QUERY_LEN / 60, "{}/{}", r.workload, r.sensor);
            // one day at 1 Hz: four flushed runs of BLOCK_LEN-reading blocks
            let expected = 4 * (SERIES_LEN / 4).div_ceil(BLOCK_LEN) as u64;
            assert_eq!(r.blocks_total, expected);
            // the full path decodes every block, pushdown only the hour's
            assert_eq!(r.blocks_full, r.blocks_total);
            let max_intersecting = (QUERY_LEN / BLOCK_LEN + 2) as u64;
            assert!(
                r.blocks_pushdown <= max_intersecting,
                "{}/{}: pushdown decoded {} blocks, expected ≤ {max_intersecting}",
                r.workload,
                r.sensor,
                r.blocks_pushdown
            );
            assert!(r.blocks_pushdown * 10 <= r.blocks_full, "no real pushdown win");
        }
    }

    #[test]
    fn groupby_parallel_is_exact_and_preserves_pushdown() {
        let r = run_groupby();
        assert!(r.identical, "parallel grouped results diverged from serial");
        assert_eq!(r.blocks_grouped, r.blocks_fanin, "grouping changed the decoded-block count");
        assert_eq!(r.readings, GROUPBY_RACKS * GROUPBY_NODES * SERIES_LEN);
        // no wall-clock assertion here: this runs unoptimised under
        // `cargo test` next to other test binaries, where timing bars
        // flake.  The release `query` bench bin (a dedicated CI step)
        // enforces the >= 2x parallel speedup on >= 4 cores.
    }

    #[test]
    fn pushdown_is_measurably_faster() {
        let reports = run();
        // 10x fewer blocks decoded must show up as wall-clock speedup;
        // the margin is generous so scheduler noise cannot flake the test
        for r in &reports {
            assert!(
                r.speedup() > 1.5,
                "{}/{}: pushdown {:.1}us vs full {:.1}us — no speedup",
                r.workload,
                r.sensor,
                r.pushdown_s * 1e6,
                r.full_s * 1e6
            );
        }
    }
}
