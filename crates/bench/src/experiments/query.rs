//! Query pushdown study: windowed-aggregation latency with lazy block
//! decode versus the pre-`dcdb-query` full-decode path.
//!
//! A day of simulated 1 Hz sensor data (per workload: the power and
//! instruction sensors of a `dcdb-sim` node) is flushed into several
//! SSTable runs of compressed [`BLOCK_LEN`]-reading blocks.  A
//! dashboard-style query — one hour of the day, 1-minute windows — then
//! runs two ways:
//!
//! * **pushdown** — [`QueryEngine::aggregate_sid`]: only blocks whose
//!   `(min_ts, max_ts)` headers intersect the hour are decompressed,
//! * **full decode** — what the store did before this subsystem existed:
//!   materialise the *entire* series (`query_range` over all time, decoding
//!   every block), slice the hour out, aggregate.
//!
//! Expected shape: both produce bit-identical window values; pushdown
//! decodes ~4–5% of the blocks and wins latency by roughly the same factor
//! (the decode-counter columns make the mechanism visible, the timing
//! columns the effect).

use std::sync::Arc;
use std::time::Instant;

use dcdb_query::{window_aggregate, AggFn, QueryEngine};
use dcdb_sim::workloads::BehaviorTrace;
use dcdb_sim::{Arch, Workload};
use dcdb_store::reading::TimeRange;
use dcdb_store::{NodeConfig, StoreCluster};

/// Sampling interval of the simulated sensors (1 s).
pub const INTERVAL_NS: i64 = 1_000_000_000;
/// Readings per series: one day at 1 Hz.
pub const SERIES_LEN: usize = 86_400;
/// Queried slice: one hour of the day.
pub const QUERY_LEN: usize = 3_600;
/// Aggregation window: one minute.
pub const WINDOW_NS: i64 = 60 * INTERVAL_NS;
/// Timing repetitions (best-of to shrug off scheduler noise).
const REPS: usize = 5;

/// Results for one simulated sensor series.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// Workload driving the simulated node.
    pub workload: &'static str,
    /// Which sensor of the node was recorded.
    pub sensor: &'static str,
    /// Readings stored for the sensor.
    pub readings: usize,
    /// Compressed blocks the sensor's runs hold.
    pub blocks_total: u64,
    /// Blocks decompressed by the pushdown aggregate.
    pub blocks_pushdown: u64,
    /// Blocks decompressed by the full-decode baseline.
    pub blocks_full: u64,
    /// Pushdown aggregate latency, seconds (best of [`REPS`]).
    pub pushdown_s: f64,
    /// Full-decode aggregate latency, seconds (best of [`REPS`]).
    pub full_s: f64,
    /// Output windows produced.
    pub windows: usize,
    /// Window values identical between the two paths?
    pub identical: bool,
}

impl QueryReport {
    /// Latency win of pushdown over full decode.
    pub fn speedup(&self) -> f64 {
        self.full_s.max(1e-12) / self.pushdown_s.max(1e-12)
    }

    /// Readings the pushdown path effectively serves per second (the whole
    /// stored series divided by the query latency).
    pub fn readings_per_s(&self) -> f64 {
        self.readings as f64 / self.pushdown_s.max(1e-12)
    }
}

fn measure(workload: Workload, name: &'static str) -> Vec<QueryReport> {
    let mut trace = BehaviorTrace::new(workload, Arch::Skylake.spec(), INTERVAL_NS, 11);
    let samples = trace.take(SERIES_LEN);
    let power: Vec<f64> = samples.iter().map(|s| s.power_w.round()).collect();
    let instr: Vec<f64> = samples.iter().map(|s| s.instructions_per_core.round()).collect();
    vec![measure_series(name, "power_w", &power), measure_series(name, "instructions", &instr)]
}

fn measure_series(workload: &'static str, sensor: &'static str, values: &[f64]) -> QueryReport {
    // several runs, like a live node that flushed a few times over the day
    let cluster = Arc::new(StoreCluster::new(
        NodeConfig { memtable_flush_entries: SERIES_LEN / 4, ..Default::default() },
        dcdb_sid::PartitionMap::prefix(1, 3),
        1,
    ));
    let sid = dcdb_sid::SensorId::from_fields(&[2]).expect("static sid");
    for (i, &v) in values.iter().enumerate() {
        cluster.insert(sid, i as i64 * INTERVAL_NS, v);
    }
    cluster.node(0).flush();

    // the dashboard hour: 20:00–21:00 of the simulated day
    let start = (20 * 3600) as i64 * INTERVAL_NS;
    let range = TimeRange::new(start, start + QUERY_LEN as i64 * INTERVAL_NS);
    let engine = QueryEngine::new(Arc::clone(&cluster));

    let mut pushdown_s = f64::INFINITY;
    let mut pushed = Vec::new();
    let base = cluster.blocks_decoded();
    for _ in 0..REPS {
        let t = Instant::now();
        pushed = engine.aggregate_sid(sid, range, WINDOW_NS, AggFn::Avg);
        pushdown_s = pushdown_s.min(t.elapsed().as_secs_f64());
    }
    let blocks_pushdown = (cluster.blocks_decoded() - base) / REPS as u64;

    let mut full_s = f64::INFINITY;
    let mut full = Vec::new();
    let base = cluster.blocks_decoded();
    for _ in 0..REPS {
        let t = Instant::now();
        // the pre-pushdown query path: decode the whole series, then window
        let everything = cluster.query(sid, TimeRange::all());
        full = window_aggregate(
            everything.into_iter().filter(|r| range.contains(r.ts)),
            WINDOW_NS,
            AggFn::Avg,
        );
        full_s = full_s.min(t.elapsed().as_secs_f64());
    }
    let blocks_full = (cluster.blocks_decoded() - base) / REPS as u64;

    let identical = pushed.len() == full.len()
        && pushed
            .iter()
            .zip(&full)
            .all(|(a, b)| a.ts == b.ts && a.value.to_bits() == b.value.to_bits());

    QueryReport {
        workload,
        sensor,
        readings: values.len(),
        blocks_total: cluster.block_count() as u64,
        blocks_pushdown,
        blocks_full,
        pushdown_s,
        full_s,
        windows: pushed.len(),
        identical,
    }
}

/// Run the study across the workload suite.
pub fn run() -> Vec<QueryReport> {
    let mut out = Vec::new();
    out.extend(measure(Workload::Hpl, "HPL"));
    out.extend(measure(Workload::Lammps, "LAMMPS"));
    out
}

/// Render the report table.
pub fn render(reports: &[QueryReport]) -> String {
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.workload.to_string(),
                r.sensor.to_string(),
                r.readings.to_string(),
                r.blocks_total.to_string(),
                r.blocks_pushdown.to_string(),
                r.blocks_full.to_string(),
                format!("{:.0}", r.pushdown_s * 1e6),
                format!("{:.0}", r.full_s * 1e6),
                format!("{:.1}x", r.speedup()),
                format!("{:.0}", r.readings_per_s() / 1e6),
                if r.identical { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    crate::report::table(
        &[
            "workload",
            "sensor",
            "readings",
            "blocks",
            "dec push",
            "dec full",
            "push us",
            "full us",
            "speedup",
            "Mr/s",
            "identical",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdb_store::sstable::BLOCK_LEN;

    #[test]
    fn pushdown_decodes_a_fraction_of_the_blocks() {
        let reports = run();
        assert_eq!(reports.len(), 4);
        for r in &reports {
            assert!(r.identical, "{}/{}: pushdown diverged from full decode", r.workload, r.sensor);
            assert_eq!(r.windows, QUERY_LEN / 60, "{}/{}", r.workload, r.sensor);
            // one day at 1 Hz: four flushed runs of BLOCK_LEN-reading blocks
            let expected = 4 * (SERIES_LEN / 4).div_ceil(BLOCK_LEN) as u64;
            assert_eq!(r.blocks_total, expected);
            // the full path decodes every block, pushdown only the hour's
            assert_eq!(r.blocks_full, r.blocks_total);
            let max_intersecting = (QUERY_LEN / BLOCK_LEN + 2) as u64;
            assert!(
                r.blocks_pushdown <= max_intersecting,
                "{}/{}: pushdown decoded {} blocks, expected ≤ {max_intersecting}",
                r.workload,
                r.sensor,
                r.blocks_pushdown
            );
            assert!(r.blocks_pushdown * 10 <= r.blocks_full, "no real pushdown win");
        }
    }

    #[test]
    fn pushdown_is_measurably_faster() {
        let reports = run();
        // 10x fewer blocks decoded must show up as wall-clock speedup;
        // the margin is generous so scheduler noise cannot flake the test
        for r in &reports {
            assert!(
                r.speedup() > 1.5,
                "{}/{}: pushdown {:.1}us vs full {:.1}us — no speedup",
                r.workload,
                r.sensor,
                r.pushdown_s * 1e6,
                r.full_s * 1e6
            );
        }
    }
}
