//! Observability-overhead study: sustained ingest with the metrics layer's
//! timed instrumentation on versus off.
//!
//! The registry's design claim is that self-monitoring is effectively
//! free: counters are single relaxed atomic adds, and every latency
//! histogram checks one shared `AtomicBool` before touching a clock.  This
//! experiment runs the same sustained-ingest workload as the maintenance
//! study — batched inserts through the instrumented `insert_batch` path,
//! with background flush/compaction running — once with timing enabled
//! (the default) and once disabled, alternating arms to spread thermal and
//! scheduler drift fairly.  The acceptance bar is **< 1 % wall-clock
//! overhead**; both arms must settle to bit-identical store contents.

use std::sync::Arc;
use std::time::Instant;

use dcdb_sim::workloads::BehaviorTrace;
use dcdb_sim::{Arch, Workload};
use dcdb_store::reading::{Reading, TimeRange};
use dcdb_store::{NodeConfig, StoreCluster};

/// Sampling interval of the simulated sensor (1 s).
pub const INTERVAL_NS: i64 = 1_000_000_000;
/// Readings ingested per run.
pub const TOTAL_READINGS: usize = 256 * 1024;
/// Readings per ingest batch (one MQTT publish worth).
pub const BATCH: usize = 64;
/// Memtable budget (flushes happen, but rarely enough that the arms
/// measure the instrumented fast path, not merge scheduling noise).
pub const FLUSH_ENTRIES: usize = 16 * 1024;
/// Interleaved repetitions per arm; the best run of each arm is compared
/// (the minimum is the least-noisy estimator of the true cost).
pub const REPS: usize = 3;

/// One arm of the study (timing enabled or disabled).
#[derive(Debug, Clone)]
pub struct ObsArm {
    /// Timed instrumentation state.
    pub enabled: bool,
    /// Wall seconds of every repetition, in run order.
    pub walls_s: Vec<f64>,
    /// Best (minimum) wall seconds across repetitions.
    pub wall_s: f64,
    /// Readings per second at the best wall time.
    pub throughput: f64,
    /// XOR fingerprint of the settled store contents.
    pub fingerprint: u64,
    /// Observations the insert-latency histogram collected (0 when off).
    pub insert_observations: u64,
}

fn sensor() -> dcdb_sid::SensorId {
    dcdb_sid::SensorId::from_fields(&[11, 1]).expect("static sid")
}

/// One ingest run with the registry's timed instrumentation set to
/// `enabled`; returns `(wall_s, fingerprint, insert_observations)`.
fn run_once(values: &[f64], enabled: bool) -> (f64, u64, u64) {
    let cluster = Arc::new(StoreCluster::new(
        NodeConfig {
            memtable_flush_entries: FLUSH_ENTRIES,
            maintenance_threads: 2,
            ..Default::default()
        },
        dcdb_sid::PartitionMap::prefix(1, 2),
        1,
    ));
    cluster.metrics().set_enabled(enabled);
    let s = sensor();
    let wall = Instant::now();
    for (b, chunk) in values.chunks(BATCH).enumerate() {
        let base = b * BATCH;
        let batch: Vec<Reading> = chunk
            .iter()
            .enumerate()
            .map(|(i, &v)| Reading::new((base + i) as i64 * INTERVAL_NS, v))
            .collect();
        cluster.insert_batch(s, &batch);
    }
    let wall_s = wall.elapsed().as_secs_f64();
    cluster.quiesce();
    cluster.maintain();
    let all = cluster.query(s, TimeRange::all());
    assert_eq!(all.len(), values.len(), "ingest lost readings (enabled={enabled})");
    let fingerprint =
        all.iter().fold(0u64, |acc, r| acc ^ r.value.to_bits().rotate_left((r.ts % 63) as u32));
    let observations = match cluster.metrics().snapshot().get("dcdb_insert_latency_ns") {
        Some(dcdb_obs::MetricValue::Histogram(h)) => h.count,
        _ => 0,
    };
    (wall_s, fingerprint, observations)
}

/// The full study.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Timing-enabled arm.
    pub on: ObsArm,
    /// Timing-disabled arm.
    pub off: ObsArm,
    /// Host parallelism the run saw (results are host-shaped).
    pub host_threads: usize,
}

impl ObsReport {
    /// Fractional wall-clock overhead of enabled over disabled
    /// instrumentation (0.01 = 1 %); negative when noise favours the
    /// instrumented arm.
    pub fn overhead(&self) -> f64 {
        self.on.wall_s / self.off.wall_s.max(1e-9) - 1.0
    }

    /// Both arms settled to bit-identical contents.
    pub fn identical(&self) -> bool {
        self.on.fingerprint == self.off.fingerprint
    }
}

/// Run both arms, interleaved rep by rep.
pub fn run() -> ObsReport {
    let mut trace = BehaviorTrace::new(Workload::Hpl, Arch::Skylake.spec(), INTERVAL_NS, 31);
    let values: Vec<f64> = trace.take(TOTAL_READINGS).iter().map(|s| s.power_w).collect();

    let mut arms: Vec<ObsArm> = [true, false]
        .into_iter()
        .map(|enabled| ObsArm {
            enabled,
            walls_s: Vec::new(),
            wall_s: f64::INFINITY,
            throughput: 0.0,
            fingerprint: 0,
            insert_observations: 0,
        })
        .collect();
    for _ in 0..REPS {
        for arm in &mut arms {
            let (wall_s, fingerprint, observations) = run_once(&values, arm.enabled);
            arm.walls_s.push(wall_s);
            arm.wall_s = arm.wall_s.min(wall_s);
            arm.fingerprint = fingerprint;
            arm.insert_observations = observations;
        }
    }
    for arm in &mut arms {
        arm.throughput = TOTAL_READINGS as f64 / arm.wall_s;
    }
    let off = arms.pop().expect("two arms");
    let on = arms.pop().expect("two arms");
    ObsReport {
        on,
        off,
        host_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

/// Render the two arms side by side.
pub fn render(r: &ObsReport) -> String {
    let row = |a: &ObsArm| {
        vec![
            if a.enabled { "on".to_string() } else { "off".to_string() },
            format!("{:.3}", a.wall_s),
            format!("{:.0}", a.throughput / 1e3),
            a.walls_s.iter().map(|w| format!("{w:.3}")).collect::<Vec<_>>().join(" "),
            a.insert_observations.to_string(),
        ]
    };
    crate::report::table(
        &["timing", "best wall s", "kread/s", "all walls s", "insert obs"],
        &[row(&r.on), row(&r.off)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rep_arms_hold_identical_data() {
        // a tiny smoke version of the study; the full run is the release
        // bin's job (debug timings would be meaningless)
        let mut trace = BehaviorTrace::new(Workload::Amg, Arch::Skylake.spec(), INTERVAL_NS, 7);
        let values: Vec<f64> = trace.take(2 * BATCH).iter().map(|s| s.power_w).collect();
        let (_, fp_on, obs_on) = run_once(&values, true);
        let (_, fp_off, obs_off) = run_once(&values, false);
        assert_eq!(fp_on, fp_off, "instrumentation changed stored contents");
        assert!(obs_on >= 2, "enabled arm should observe insert latency");
        assert_eq!(obs_off, 0, "disabled arm must not observe");
    }
}
