//! Background-maintenance study: sustained ingest with and without the
//! flush/compaction worker pool.
//!
//! The scenario the subsystem exists for: a Collect Agent ingesting a
//! steady stream of batches while a dashboard queries the most recent
//! window.  With **synchronous** maintenance (threads 0) the batch that
//! fills the memtable pays for the SSTable encode inline and — every
//! `compaction_threshold` flushes — for the full k-way merge too, so the
//! insert-latency tail is the merge duration.  With **background**
//! maintenance the insert hands the frozen memtable to the pool and
//! returns; its tail is a hash-queue push (or, at worst, a counted
//! backpressure stall).
//!
//! Reported per mode: insert-latency percentiles over every batch, query
//! latency of the concurrent reader, and the maintenance counters
//! (flushes, merges, merge time, stalls).  Both runs ingest identical data
//! and must end with identical query results — checked, not assumed.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dcdb_sim::workloads::BehaviorTrace;
use dcdb_sim::{Arch, Workload};
use dcdb_store::reading::{Reading, TimeRange};
use dcdb_store::{MaintenanceSnapshot, NodeConfig, StoreCluster};

/// Sampling interval of the simulated sensor (1 s).
pub const INTERVAL_NS: i64 = 1_000_000_000;
/// Readings ingested per run.
pub const TOTAL_READINGS: usize = 256 * 1024;
/// Readings per ingest batch (one MQTT publish worth).
pub const BATCH: usize = 64;
/// Memtable budget: small enough that flush/merge-affected batches are
/// **more than 1 % of all batches** — the synchronous maintenance cost
/// must land inside the p99, not hide above it.
pub const FLUSH_ENTRIES: usize = 4 * 1024;
/// Runs that trigger a merge.
pub const COMPACTION_THRESHOLD: usize = 2;
/// Readings the concurrent dashboard query scans per refresh.
pub const QUERY_SPAN: usize = 4 * 1024;

/// Latency distribution in microseconds.
#[derive(Debug, Clone, Copy)]
pub struct LatencyUs {
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Worst observed.
    pub max: f64,
}

fn percentiles(mut samples: Vec<f64>) -> LatencyUs {
    if samples.is_empty() {
        return LatencyUs { p50: 0.0, p99: 0.0, max: 0.0 };
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let at = |q: f64| samples[((samples.len() - 1) as f64 * q).round() as usize];
    LatencyUs { p50: at(0.50), p99: at(0.99), max: *samples.last().expect("non-empty") }
}

/// One sustained-ingest run.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Maintenance worker threads (0 = synchronous).
    pub threads: usize,
    /// Readings ingested.
    pub readings: usize,
    /// Wall-clock seconds for the whole ingest.
    pub wall_s: f64,
    /// Per-batch insert latency.
    pub insert_us: LatencyUs,
    /// Concurrent dashboard-query latency.
    pub query_us: LatencyUs,
    /// Queries the reader completed during the run.
    pub queries: usize,
    /// Maintenance counters at the end of the run.
    pub maintenance: MaintenanceSnapshot,
    /// Fingerprint of the settled store contents (XOR of value bits) —
    /// must agree across modes.
    pub fingerprint: u64,
}

fn sensor() -> dcdb_sid::SensorId {
    dcdb_sid::SensorId::from_fields(&[9, 1]).expect("static sid")
}

/// One sustained-ingest run: a writer thread streams batches while a
/// reader refreshes a trailing window, then the store is settled and
/// fingerprinted.
pub fn run_ingest(threads: usize) -> IngestReport {
    let cluster = Arc::new(StoreCluster::new(
        NodeConfig {
            memtable_flush_entries: FLUSH_ENTRIES,
            compaction_threshold: COMPACTION_THRESHOLD,
            maintenance_threads: threads,
            ..Default::default()
        },
        dcdb_sid::PartitionMap::prefix(1, 2),
        1,
    ));
    let mut trace = BehaviorTrace::new(Workload::Hpl, Arch::Skylake.spec(), INTERVAL_NS, 23);
    let values: Vec<f64> = trace.take(TOTAL_READINGS).iter().map(|s| s.power_w).collect();

    let progress = Arc::new(AtomicUsize::new(0));
    let done = Arc::new(AtomicBool::new(false));
    let reader = {
        let cluster = Arc::clone(&cluster);
        let progress = Arc::clone(&progress);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let s = sensor();
            let mut lat = Vec::new();
            while !done.load(Ordering::Relaxed) {
                let head = progress.load(Ordering::Relaxed);
                if head < QUERY_SPAN {
                    std::thread::yield_now();
                    continue;
                }
                let range = TimeRange::new(
                    (head - QUERY_SPAN) as i64 * INTERVAL_NS,
                    head as i64 * INTERVAL_NS,
                );
                let t = Instant::now();
                let got = cluster.query(s, range);
                lat.push(t.elapsed().as_secs_f64() * 1e6);
                assert!(!got.is_empty(), "trailing-window query found nothing");
            }
            lat
        })
    };

    let s = sensor();
    let mut insert_lat = Vec::with_capacity(TOTAL_READINGS / BATCH);
    let wall = Instant::now();
    for (b, chunk) in values.chunks(BATCH).enumerate() {
        let base = b * BATCH;
        let batch: Vec<Reading> = chunk
            .iter()
            .enumerate()
            .map(|(i, &v)| Reading::new((base + i) as i64 * INTERVAL_NS, v))
            .collect();
        let t = Instant::now();
        cluster.insert_batch(s, &batch);
        insert_lat.push(t.elapsed().as_secs_f64() * 1e6);
        progress.store(base + chunk.len(), Ordering::Relaxed);
    }
    let wall_s = wall.elapsed().as_secs_f64();
    done.store(true, Ordering::Relaxed);
    let query_lat = reader.join().expect("reader thread");
    let queries = query_lat.len();

    // settle and fingerprint: both modes must hold identical data
    cluster.quiesce();
    cluster.maintain();
    let all = cluster.query(s, TimeRange::all());
    assert_eq!(all.len(), TOTAL_READINGS, "ingest lost readings (threads={threads})");
    let fingerprint =
        all.iter().fold(0u64, |acc, r| acc ^ r.value.to_bits().rotate_left((r.ts % 63) as u32));

    IngestReport {
        threads,
        readings: TOTAL_READINGS,
        wall_s,
        insert_us: percentiles(insert_lat),
        query_us: percentiles(query_lat),
        queries,
        maintenance: cluster.maintenance_stats(),
        fingerprint,
    }
}

/// The full study: synchronous versus background maintenance.
#[derive(Debug, Clone)]
pub struct MaintReport {
    /// Threads-0 run.
    pub sync: IngestReport,
    /// Background run.
    pub background: IngestReport,
}

impl MaintReport {
    /// Insert-tail improvement of background over synchronous maintenance.
    pub fn insert_p99_speedup(&self) -> f64 {
        self.sync.insert_us.p99.max(1e-9) / self.background.insert_us.p99.max(1e-9)
    }

    /// Both runs hold bit-identical data after settling.
    pub fn identical(&self) -> bool {
        self.sync.fingerprint == self.background.fingerprint
    }
}

/// Run both modes (background on 2 workers).
pub fn run() -> MaintReport {
    MaintReport { sync: run_ingest(0), background: run_ingest(2) }
}

/// Render the two runs side by side.
pub fn render(r: &MaintReport) -> String {
    let row = |i: &IngestReport| {
        vec![
            if i.threads == 0 { "sync".to_string() } else { format!("bg({})", i.threads) },
            format!("{:.2}", i.wall_s),
            format!("{:.0}", i.insert_us.p50),
            format!("{:.0}", i.insert_us.p99),
            format!("{:.0}", i.insert_us.max),
            format!("{:.0}", i.query_us.p99),
            i.maintenance.flushes.to_string(),
            i.maintenance.compactions.to_string(),
            i.maintenance.stalls.to_string(),
            format!("{:.0}", i.maintenance.compaction_ns as f64 / 1e6),
        ]
    };
    crate::report::table(
        &[
            "mode",
            "wall s",
            "ins p50 us",
            "ins p99 us",
            "ins max us",
            "qry p99 us",
            "flushes",
            "merges",
            "stalls",
            "merge ms",
        ],
        &[row(&r.sync), row(&r.background)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_ordered() {
        let l = percentiles((0..1000).map(|i| i as f64).collect());
        assert_eq!(l.max, 999.0);
        assert!(l.p50 <= l.p99 && l.p99 <= l.max);
        assert_eq!(l.p50, 500.0); // round(999*0.5)
    }

    // the full study runs in the release-mode `maintenance` bin (CI); a
    // debug smoke run here would dominate the test suite's wall clock
}
