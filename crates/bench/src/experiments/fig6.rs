//! **Figure 6**: average Pusher per-core CPU load (a) and memory usage (b)
//! on SuperMUC-NG nodes across the tester-plugin configuration grid.
//!
//! Expected shape: CPU load peaks near 3% in the most intensive
//! configuration (100,000 readings/s); memory peaks near 350 MB there, and
//! stays well below 50 MB for production-scale configurations (≤1000
//! sensors), shrinking further with longer intervals (smaller caches).

use dcdb_sim::overhead::{pusher_cpu_load_percent, pusher_memory_mb, PusherConfig};
use dcdb_sim::Arch;

pub use super::fig5::{INTERVALS_MS, SENSORS};

/// One grid point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Sensor count.
    pub sensors: usize,
    /// Sampling interval, ms.
    pub interval_ms: u64,
    /// Per-core CPU load, percent.
    pub cpu_load_percent: f64,
    /// Memory usage, MB.
    pub memory_mb: f64,
}

/// Compute the grid (Skylake, like the paper).
pub fn run() -> Vec<Point> {
    let mut out = Vec::new();
    for &interval_ms in &INTERVALS_MS {
        for &sensors in &SENSORS {
            let cfg = PusherConfig::tester(sensors, interval_ms);
            out.push(Point {
                sensors,
                interval_ms,
                cpu_load_percent: pusher_cpu_load_percent(&cfg, Arch::Skylake),
                memory_mb: pusher_memory_mb(&cfg, Arch::Skylake),
            });
        }
    }
    out
}

/// Render both panels.
pub fn render(points: &[Point]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.sensors.to_string(),
                p.interval_ms.to_string(),
                format!("{:.3}", p.cpu_load_percent),
                format!("{:.1}", p.memory_mb),
            ]
        })
        .collect();
    crate::report::table(&["sensors", "interval [ms]", "CPU load [%]", "memory [MB]"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(points: &[Point], sensors: usize, interval: u64) -> &Point {
        points.iter().find(|p| p.sensors == sensors && p.interval_ms == interval).unwrap()
    }

    #[test]
    fn most_intensive_config_matches_paper() {
        let pts = run();
        let worst = at(&pts, 10_000, 100);
        assert!((2.4..3.6).contains(&worst.cpu_load_percent), "{}", worst.cpu_load_percent);
        assert!((300.0..420.0).contains(&worst.memory_mb), "{}", worst.memory_mb);
    }

    #[test]
    fn production_configs_cheap() {
        let pts = run();
        for p in pts.iter().filter(|p| p.sensors <= 1000 && p.interval_ms >= 1000) {
            assert!(p.memory_mb < 50.0, "{p:?}");
            assert!(p.cpu_load_percent < 0.1, "{p:?}");
        }
    }

    #[test]
    fn memory_grows_with_rate_along_both_axes() {
        let pts = run();
        assert!(at(&pts, 10_000, 100).memory_mb > at(&pts, 1_000, 100).memory_mb);
        assert!(at(&pts, 10_000, 100).memory_mb > at(&pts, 10_000, 1000).memory_mb);
        assert!(at(&pts, 10_000, 10_000).memory_mb < 60.0);
    }

    #[test]
    fn cpu_load_depends_on_rate_only() {
        let pts = run();
        // same rate (1000 readings/s) via different combinations
        let a = at(&pts, 1_000, 1000).cpu_load_percent;
        let b = at(&pts, 100, 100).cpu_load_percent;
        assert!((a - b).abs() < 1e-9);
    }
}
