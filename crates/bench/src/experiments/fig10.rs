//! **Figure 10** (use case 2): application characterisation through
//! high-frequency monitoring.
//!
//! Single-node CooLMUC-3 (KNL) runs of the four CORAL-2 applications are
//! monitored at 100 ms; for every sample the ratio of per-core retired
//! instructions to node power is computed, and the resulting time series is
//! fitted with a probability density (Gaussian KDE).
//!
//! Expected shape: Kripke and Quicksilver show high means (high
//! computational density); LAMMPS and AMG sit lower, with multi-modal
//! densities betraying their phase changes.

use dcdb_sim::arch::KNIGHTS_LANDING;
use dcdb_sim::workloads::BehaviorTrace;
use dcdb_sim::{Workload, NS_PER_MS};

use crate::kde::Kde;

/// Characterisation of one application.
#[derive(Debug, Clone)]
pub struct AppDensity {
    /// Application.
    pub workload: Workload,
    /// Instructions-per-Watt samples (per 100 ms interval).
    pub samples: Vec<f64>,
    /// Mean instructions per Watt.
    pub mean: f64,
    /// Density curve `(x, pdf)` over the figure's x range.
    pub curve: Vec<(f64, f64)>,
    /// Number of local maxima in the density (modes).
    pub modes: usize,
}

/// The figure's x range (instructions per Watt): 0 to 4.5 × 10⁵.
pub const X_MAX: f64 = 4.5e5;

/// Run the characterisation: `minutes` of virtual runtime per application.
pub fn run(minutes: usize) -> Vec<AppDensity> {
    let samples_per_app = minutes * 60 * 10; // 100 ms sampling
    Workload::CORAL2
        .iter()
        .map(|&workload| {
            let mut trace = BehaviorTrace::new(workload, &KNIGHTS_LANDING, 100 * NS_PER_MS, 0xF16);
            let samples: Vec<f64> = (0..samples_per_app)
                .map(|_| {
                    let s = trace.next_sample();
                    s.instructions_per_core / s.power_w
                })
                .collect();
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            let kde = Kde::fit(&samples);
            let curve = kde.curve(0.0, X_MAX, 200);
            let modes = count_modes(&curve);
            AppDensity { workload, samples, mean, curve, modes }
        })
        .collect()
}

/// Count local maxima above 5% of the global peak (mode detection).
fn count_modes(curve: &[(f64, f64)]) -> usize {
    let peak = curve.iter().map(|p| p.1).fold(0.0f64, f64::max);
    let threshold = peak * 0.05;
    curve.windows(3).filter(|w| w[1].1 > w[0].1 && w[1].1 > w[2].1 && w[1].1 > threshold).count()
}

/// Render an ASCII version of the figure.
pub fn render(apps: &[AppDensity]) -> String {
    let mut out = String::new();
    for app in apps {
        out.push_str(&format!(
            "{:<12} mean = {:.2e} instr/W, {} mode(s)\n",
            app.workload.to_string(),
            app.mean,
            app.modes
        ));
        // sparkline of the density
        let peak = app.curve.iter().map(|p| p.1).fold(0.0f64, f64::max).max(1e-300);
        let glyphs: String = app
            .curve
            .iter()
            .step_by(4)
            .map(|(_, d)| {
                let level = (d / peak * 7.0).round() as usize;
                [' ', '.', ':', '-', '=', '+', '*', '#'][level.min(7)]
            })
            .collect();
        out.push_str(&format!("  0 |{glyphs}| {:.1e}\n", X_MAX));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by(apps: &[AppDensity], w: Workload) -> &AppDensity {
        apps.iter().find(|a| a.workload == w).unwrap()
    }

    #[test]
    fn kripke_quicksilver_high_lammps_amg_low() {
        let apps = run(5);
        let kripke = by(&apps, Workload::Kripke).mean;
        let quick = by(&apps, Workload::Quicksilver).mean;
        let lammps = by(&apps, Workload::Lammps).mean;
        let amg = by(&apps, Workload::Amg).mean;
        assert!(kripke > 1.5 * lammps, "kripke {kripke:.2e} vs lammps {lammps:.2e}");
        assert!(kripke > 2.0 * amg, "kripke {kripke:.2e} vs amg {amg:.2e}");
        assert!(quick > 1.5 * amg, "quicksilver {quick:.2e} vs amg {amg:.2e}");
    }

    #[test]
    fn lammps_and_amg_are_multimodal() {
        let apps = run(10);
        assert!(by(&apps, Workload::Lammps).modes >= 2, "LAMMPS modes");
        assert!(by(&apps, Workload::Amg).modes >= 2, "AMG modes");
    }

    #[test]
    fn compute_dense_apps_are_narrow() {
        let apps = run(5);
        let spread = |a: &AppDensity| {
            let m = a.mean;
            (a.samples.iter().map(|s| (s - m).powi(2)).sum::<f64>() / a.samples.len() as f64).sqrt()
                / m
        };
        let q = spread(by(&apps, Workload::Quicksilver));
        let l = spread(by(&apps, Workload::Lammps));
        assert!(q < l, "quicksilver rel-spread {q:.3} vs lammps {l:.3}");
    }

    #[test]
    fn samples_fit_figure_range() {
        let apps = run(3);
        for a in &apps {
            let max = a.samples.iter().copied().fold(f64::MIN, f64::max);
            assert!(max < X_MAX, "{}: max {max:.2e} beyond figure range", a.workload);
            assert!(a.samples.iter().all(|s| *s > 0.0));
        }
    }

    #[test]
    fn render_contains_all_apps() {
        let text = render(&run(1));
        for w in ["kripke", "quicksilver", "lammps", "amg"] {
            assert!(text.contains(w), "{w} missing");
        }
    }
}
