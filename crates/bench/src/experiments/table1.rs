//! **Table 1**: the three production environments, their per-node Pusher
//! configurations and the overhead measured against HPL — plus the memory
//! and CPU-load figures quoted in §6.2.1 (25–72 MB, 1–9% per-core load).

use dcdb_sim::overhead::{
    hpl_overhead_percent, pusher_cpu_load_percent, pusher_memory_mb, PusherConfig,
};
use dcdb_sim::Arch;

/// One Table 1 row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Architecture.
    pub arch: Arch,
    /// HPC system name.
    pub system: &'static str,
    /// Node count of the production system.
    pub nodes: usize,
    /// Plugin list.
    pub plugins: Vec<&'static str>,
    /// Per-node sensor count.
    pub sensors: usize,
    /// Predicted overhead vs HPL, percent.
    pub overhead_percent: f64,
    /// Overhead the paper measured, percent.
    pub paper_overhead_percent: f64,
    /// Predicted Pusher memory, MB.
    pub memory_mb: f64,
    /// Predicted per-core CPU load, percent.
    pub cpu_load_percent: f64,
}

/// Compute all three rows.
pub fn run() -> Vec<Row> {
    Arch::ALL
        .iter()
        .map(|&arch| {
            let spec = arch.spec();
            let cfg = PusherConfig::production(arch);
            Row {
                arch,
                system: spec.system,
                nodes: spec.system_nodes,
                plugins: spec.plugins.to_vec(),
                sensors: cfg.total_sensors(),
                overhead_percent: hpl_overhead_percent(&cfg, arch, 0.0),
                paper_overhead_percent: spec.paper_overhead_percent,
                memory_mb: pusher_memory_mb(&cfg, arch),
                cpu_load_percent: pusher_cpu_load_percent(&cfg, arch),
            }
        })
        .collect()
}

/// Render the table.
pub fn render(rows: &[Row]) -> String {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.system.to_string(),
                format!("{} {}", r.nodes, r.arch),
                r.plugins.join("+"),
                r.sensors.to_string(),
                format!("{:.2}%", r.overhead_percent),
                format!("{:.2}%", r.paper_overhead_percent),
                format!("{:.0} MB", r.memory_mb),
                format!("{:.1}%", r.cpu_load_percent),
            ]
        })
        .collect();
    crate::report::table(
        &["HPC System", "Nodes", "Plugins", "Sensors", "Overhead", "Paper", "Memory", "CPU load"],
        &data,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensors_match_paper_exactly() {
        let rows = run();
        assert_eq!(rows[0].sensors, 2477);
        assert_eq!(rows[1].sensors, 750);
        assert_eq!(rows[2].sensors, 3176);
    }

    #[test]
    fn overheads_within_fifteen_percent_of_paper() {
        for r in run() {
            let rel =
                (r.overhead_percent - r.paper_overhead_percent).abs() / r.paper_overhead_percent;
            assert!(
                rel < 0.15,
                "{}: {:.2}% vs paper {:.2}%",
                r.system,
                r.overhead_percent,
                r.paper_overhead_percent
            );
        }
    }

    #[test]
    fn knl_worst_haswell_best() {
        let rows = run();
        let by = |a: Arch| rows.iter().find(|r| r.arch == a).unwrap().overhead_percent;
        assert!(by(Arch::KnightsLanding) > by(Arch::Skylake));
        assert!(by(Arch::Skylake) > by(Arch::Haswell));
    }

    #[test]
    fn memory_in_reported_band() {
        // §6.2.1: average memory usage ranges between 25 MB (Haswell) and
        // 72 MB (KNL)
        let rows = run();
        let mem = |a: Arch| rows.iter().find(|r| r.arch == a).unwrap().memory_mb;
        assert!((20.0..45.0).contains(&mem(Arch::Haswell)), "{}", mem(Arch::Haswell));
        assert!((60.0..110.0).contains(&mem(Arch::KnightsLanding)));
        assert!(mem(Arch::KnightsLanding) > mem(Arch::Skylake));
    }

    #[test]
    fn render_mentions_all_systems() {
        let text = render(&run());
        for s in ["SuperMUC-NG", "CooLMUC-2", "CooLMUC-3"] {
            assert!(text.contains(s));
        }
    }
}
