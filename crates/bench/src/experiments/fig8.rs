//! **Figure 8**: Collect Agent scalability — average per-core CPU load while
//! `hosts` Pushers each push `sensors` readings per second.
//!
//! Unlike the Pusher overhead studies (which need the architecture model),
//! the Collect Agent is pure software, so this experiment *executes the real
//! pipeline*: messages flow through [`CollectAgent::handle_publish`] (topic
//! parse → SID → storage insert) and the handler's measured busy time over
//! one virtual second of traffic gives the CPU load, exactly like the
//! paper's `ps`-based measurement.  Absolute numbers reflect this machine,
//! not the paper's E5-2650v2 database node; the shape to verify is
//! *linearity in the aggregate reading rate* and multi-core saturation at
//! the top end (the paper reads 900% at 500k inserts/s).
//!
//! The full grid at 1 s sampling is 500k+ messages; `run()` therefore
//! measures a short virtual window and scales, keeping `cargo bench` fast.

use std::sync::Arc;

use dcdb_collectagent::CollectAgent;
use dcdb_mqtt::payload::encode_readings;
use dcdb_sid::PartitionMap;
use dcdb_store::{NodeConfig, StoreCluster};

/// Host counts of the paper's sweep.
pub const HOSTS: [usize; 6] = [1, 2, 5, 10, 20, 50];

/// Sensor counts per host.
pub const SENSORS: [usize; 5] = [10, 100, 1000, 5000, 10000];

/// One measured point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Concurrent Pusher hosts.
    pub hosts: usize,
    /// Sensors per host (sampled at 1 s → readings/s per host).
    pub sensors: usize,
    /// Aggregate insert rate, readings/s.
    pub rate: f64,
    /// Measured CPU load, percent of one core (may exceed 100).
    pub cpu_load_percent: f64,
}

/// Measure one `(hosts, sensors)` configuration.
///
/// `window_s` is the virtual time window to synthesise (1.0 = the paper's
/// one second of traffic).  Readings per message = 1, QoS 0, distinct topic
/// per sensor — the tester-Pusher traffic pattern.
pub fn measure(hosts: usize, sensors: usize, window_s: f64) -> Point {
    let store = Arc::new(StoreCluster::new(
        NodeConfig { memtable_flush_entries: 1 << 20, ..Default::default() },
        PartitionMap::prefix(1, 2),
        1,
    ));
    let agent = CollectAgent::new(store);
    // Warm-up: register every topic once (steady-state behaviour; the
    // paper's agent also resolves each topic once and then reuses the SID).
    let payload = encode_readings(&[(0, 1.0)]);
    let topics: Vec<Vec<String>> =
        (0..hosts).map(|h| (0..sensors).map(|s| format!("/test/host{h}/t{s}")).collect()).collect();
    for host in &topics {
        for t in host {
            agent.handle_publish(t, &payload);
        }
    }
    let warmup_busy = agent.stats().busy_ns.load(std::sync::atomic::Ordering::Relaxed);

    // One window of traffic: every sensor of every host publishes once per
    // sampled second.
    let rounds = (window_s.max(0.001) * 1.0).ceil() as usize;
    let mut ts = 1_000_000_000i64;
    for _ in 0..rounds {
        for host in &topics {
            for t in host {
                let payload = encode_readings(&[(ts, 1.0)]);
                agent.handle_publish(t, &payload);
            }
        }
        ts += 1_000_000_000;
    }
    let busy = agent.stats().busy_ns.load(std::sync::atomic::Ordering::Relaxed) - warmup_busy;
    let busy_per_window = busy as f64 / rounds as f64;
    let rate = (hosts * sensors) as f64;
    Point {
        hosts,
        sensors,
        rate,
        // busy seconds per second of traffic × 100
        cpu_load_percent: busy_per_window / 1e9 * 100.0 / window_s.max(1e-9) * window_s,
    }
}

/// Run a reduced grid suitable for CI (full grid via the `fig8` binary).
pub fn run_reduced() -> Vec<Point> {
    let mut out = Vec::new();
    for &hosts in &[1usize, 5, 20] {
        for &sensors in &[10usize, 1000, 5000] {
            out.push(measure(hosts, sensors, 1.0));
        }
    }
    out
}

/// Run the paper's full grid.
pub fn run_full() -> Vec<Point> {
    let mut out = Vec::new();
    for &hosts in &HOSTS {
        for &sensors in &SENSORS {
            out.push(measure(hosts, sensors, 1.0));
        }
    }
    out
}

/// Render as a table.
pub fn render(points: &[Point]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.hosts.to_string(),
                p.sensors.to_string(),
                format!("{:.0}", p.rate),
                format!("{:.1}", p.cpu_load_percent),
            ]
        })
        .collect();
    crate::report::table(&["hosts", "sensors", "rate [1/s]", "CPU load [%]"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_grows_with_rate() {
        let small = measure(1, 100, 1.0);
        let big = measure(10, 1000, 1.0);
        assert!(
            big.cpu_load_percent > small.cpu_load_percent * 5.0,
            "10k/s ({:.2}%) should dwarf 100/s ({:.2}%)",
            big.cpu_load_percent,
            small.cpu_load_percent
        );
    }

    #[test]
    fn load_roughly_linear_in_rate() {
        // doubling the rate roughly doubles the load (±60% tolerance for
        // timer noise on shared CI machines)
        let a = measure(5, 1000, 1.0);
        let b = measure(10, 1000, 1.0);
        let ratio = b.cpu_load_percent / a.cpu_load_percent;
        assert!((1.2..3.4).contains(&ratio), "rate×2 → load×{ratio:.2}");
    }

    #[test]
    fn every_reading_is_stored() {
        let p = measure(2, 50, 1.0);
        assert_eq!(p.rate, 100.0);
    }
}
