//! Alert-engine overhead study: sustained MQTT-payload ingest through the
//! Collect Agent with a live rule set evaluating on-stream versus no
//! engine installed.
//!
//! The agent hands every decoded publish to
//! `AlertEngine::observe_batch`, which pays the rule scan, filter match,
//! lock and instance lookup once per batch and lets steady-state
//! threshold/absence rules skip the per-reading scan via a shared min/max
//! envelope.  The design claim is that an always-on rule set of threshold
//! and absence rules costs a couple of float compares per reading —
//! sustained ingest must not slow down measurably.  The acceptance bar is
//! **< 2 % ingest overhead** with a realistic always-on rule set
//! (threshold above, threshold below, absence, and a non-matching rule),
//! judged on the directly timed engine cost per reading over the
//! measured per-reading ingest cost — the A/B wall delta is reported as
//! context but drowns in scheduler noise at this effect size.  Both arms
//! must settle to bit-identical store contents.
//! Per-reading statistical detectors (`zscore`, `rate_above`) do Welford
//! or rate arithmetic on every reading of their matched topics by design
//! and sit outside this bar — they are opt-in per topic, not part of the
//! always-on cost.

use std::sync::Arc;
use std::time::Instant;

use dcdb_core::alerts::{AlertCondition, AlertEngine, AlertRule};
use dcdb_mqtt::payload::encode_readings;
use dcdb_sim::workloads::BehaviorTrace;
use dcdb_sim::{Arch, Workload};
use dcdb_store::reading::{Reading, TimeRange};
use dcdb_store::{NodeConfig, StoreCluster};

/// Sampling interval of the simulated sensor (1 s).
pub const INTERVAL_NS: i64 = 1_000_000_000;
/// Readings ingested per run — big enough that one rep runs a few hundred
/// milliseconds, amortizing scheduler noise on small hosts.
pub const TOTAL_READINGS: usize = 1024 * 1024;
/// Readings per MQTT publish.
pub const BATCH: usize = 64;
/// Memtable budget (same shape as the obs study: flushes happen, but the
/// arms measure the ingest fast path).
pub const FLUSH_ENTRIES: usize = 64 * 1024;
/// Interleaved repetitions per arm; best-of compared.  Each rep is well
/// under a second, so a few extra cost nothing and damp scheduler noise
/// on small hosts.
pub const REPS: usize = 5;

const TOPIC: &str = "/r0/n0/power";

/// The always-on rule set the enabled arm evaluates against every batch:
/// a matching upper threshold (crosses with the workload, then holds
/// firing), a matching lower threshold that never trips (the healthy
/// steady state — must ride the envelope skip), a matching absence rule
/// (readings keep arriving, so it stays inactive), and a rule whose
/// filter never matches (the common case in a large deployment — one
/// failed filter match per batch).
fn rules() -> Vec<AlertRule> {
    vec![
        AlertRule::new("hot", TOPIC, AlertCondition::Above(300.0)),
        AlertRule::new("cold", TOPIC, AlertCondition::Below(5.0)),
        AlertRule::new("stale", TOPIC, AlertCondition::Absent { timeout_ns: 3_600 * INTERVAL_NS }),
        AlertRule::new("other", "/r9/elsewhere", AlertCondition::Above(0.0)),
    ]
}

/// One arm of the study.
#[derive(Debug, Clone)]
pub struct AlertArm {
    /// Whether the alert engine was installed.
    pub enabled: bool,
    /// Wall seconds of every repetition, in run order.
    pub walls_s: Vec<f64>,
    /// Best (minimum) wall seconds across repetitions.
    pub wall_s: f64,
    /// Readings per second at the best wall time.
    pub throughput: f64,
    /// XOR fingerprint of the settled store contents.
    pub fingerprint: u64,
    /// State-machine transitions the engine took (0 when off) — proof the
    /// enabled arm did real evaluation work, not a disarmed no-op.
    pub transitions: u64,
}

/// One ingest run; returns `(wall_s, fingerprint, transitions)`.
fn run_once(payloads: &[Vec<u8>], enabled: bool) -> (f64, u64, u64) {
    let cluster = Arc::new(StoreCluster::new(
        NodeConfig {
            memtable_flush_entries: FLUSH_ENTRIES,
            maintenance_threads: 2,
            ..Default::default()
        },
        dcdb_sid::PartitionMap::prefix(1, 2),
        1,
    ));
    let agent = dcdb_collectagent::CollectAgent::new(Arc::clone(&cluster));
    let engine = enabled.then(|| {
        let e = Arc::new(AlertEngine::with_rules(rules()));
        agent.install_alert_engine(Arc::clone(&e));
        e
    });
    let wall = Instant::now();
    for payload in payloads {
        agent.handle_publish(TOPIC, payload);
    }
    let wall_s = wall.elapsed().as_secs_f64();
    cluster.quiesce();
    cluster.maintain();
    let sid = agent.registry().sids_under(TOPIC).first().expect("topic registered").1;
    let all = cluster.query(sid, TimeRange::all());
    assert_eq!(all.len(), TOTAL_READINGS, "ingest lost readings (enabled={enabled})");
    let fingerprint =
        all.iter().fold(0u64, |acc, r| acc ^ r.value.to_bits().rotate_left((r.ts % 63) as u32));
    (wall_s, fingerprint, engine.map_or(0, |e| e.transitions()))
}

/// The full study.
#[derive(Debug, Clone)]
pub struct AlertReport {
    /// Engine-installed arm.
    pub on: AlertArm,
    /// No-engine arm.
    pub off: AlertArm,
    /// Nanoseconds per reading spent inside `observe_batch`, measured by
    /// timing the engine directly over the same batches (best of
    /// [`REPS`]).  The A/B wall difference drowns in scheduler noise on
    /// shared hosts once the engine is cheap enough, so the acceptance
    /// bar divides this stable component cost by the ingest cost instead.
    pub engine_ns_per_reading: f64,
    /// Host parallelism the run saw (results are host-shaped).
    pub host_threads: usize,
}

impl AlertReport {
    /// Fractional wall-clock overhead of the alerting arm over plain
    /// ingest (0.02 = 2 %); negative when noise favours the alerting arm.
    /// Informational — host noise swamps it when the engine cost is small.
    pub fn overhead_wall(&self) -> f64 {
        self.on.wall_s / self.off.wall_s.max(1e-9) - 1.0
    }

    /// Fractional ingest overhead of alerting, from the directly measured
    /// engine cost over the measured per-reading ingest cost.  This is
    /// the acceptance-bar number: both components are stable where the
    /// A/B wall difference is not.
    pub fn overhead(&self) -> f64 {
        let ingest_ns = self.off.wall_s.max(1e-9) * 1e9 / TOTAL_READINGS as f64;
        self.engine_ns_per_reading / ingest_ns
    }

    /// Both arms settled to bit-identical contents.
    pub fn identical(&self) -> bool {
        self.on.fingerprint == self.off.fingerprint
    }
}

/// Time `observe_batch` directly over the same readings the arms ingest:
/// best-of-[`REPS`] nanoseconds per reading.  The engine sees the batches
/// exactly as `CollectAgent::handle_publish` would hand them over.
fn engine_cost_ns(values: &[f64]) -> f64 {
    let engine = AlertEngine::with_rules(rules());
    let batches: Vec<Vec<Reading>> = values
        .chunks(BATCH)
        .enumerate()
        .map(|(b, chunk)| {
            let base = (b * BATCH) as i64;
            chunk
                .iter()
                .enumerate()
                .map(|(i, &v)| Reading::new((base + i as i64) * INTERVAL_NS, v))
                .collect()
        })
        .collect();
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        for batch in &batches {
            engine.observe_batch(TOPIC, batch);
        }
        best = best.min(t.elapsed().as_nanos() as f64 / values.len() as f64);
    }
    best
}

/// Run both arms, interleaved rep by rep.
pub fn run() -> AlertReport {
    let mut trace = BehaviorTrace::new(Workload::Hpl, Arch::Skylake.spec(), INTERVAL_NS, 31);
    let values: Vec<f64> = trace.take(TOTAL_READINGS).iter().map(|s| s.power_w).collect();
    let payloads: Vec<Vec<u8>> = values
        .chunks(BATCH)
        .enumerate()
        .map(|(b, chunk)| {
            let base = (b * BATCH) as i64;
            let readings: Vec<(i64, f64)> = chunk
                .iter()
                .enumerate()
                .map(|(i, &v)| ((base + i as i64) * INTERVAL_NS, v))
                .collect();
            encode_readings(&readings).to_vec()
        })
        .collect();

    let mut arms: Vec<AlertArm> = [true, false]
        .into_iter()
        .map(|enabled| AlertArm {
            enabled,
            walls_s: Vec::new(),
            wall_s: f64::INFINITY,
            throughput: 0.0,
            fingerprint: 0,
            transitions: 0,
        })
        .collect();
    for _ in 0..REPS {
        for arm in &mut arms {
            let (wall_s, fingerprint, transitions) = run_once(&payloads, arm.enabled);
            arm.walls_s.push(wall_s);
            arm.wall_s = arm.wall_s.min(wall_s);
            arm.fingerprint = fingerprint;
            arm.transitions = transitions;
        }
    }
    for arm in &mut arms {
        arm.throughput = TOTAL_READINGS as f64 / arm.wall_s;
    }
    let off = arms.pop().expect("two arms");
    let on = arms.pop().expect("two arms");
    AlertReport {
        on,
        off,
        engine_ns_per_reading: engine_cost_ns(&values),
        host_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

/// Render the two arms side by side.
pub fn render(r: &AlertReport) -> String {
    let row = |a: &AlertArm| {
        vec![
            if a.enabled { "on".to_string() } else { "off".to_string() },
            format!("{:.3}", a.wall_s),
            format!("{:.0}", a.throughput / 1e3),
            a.walls_s.iter().map(|w| format!("{w:.3}")).collect::<Vec<_>>().join(" "),
            a.transitions.to_string(),
        ]
    };
    crate::report::table(
        &["alerting", "best wall s", "kread/s", "all walls s", "transitions"],
        &[row(&r.on), row(&r.off)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rep_arms_hold_identical_data() {
        // a tiny smoke version; the full run is the release bin's job
        let readings: Vec<(i64, f64)> =
            (0..2 * BATCH as i64).map(|i| (i * INTERVAL_NS, 100.0 + (i % 7) as f64)).collect();
        let payloads: Vec<Vec<u8>> =
            readings.chunks(BATCH).map(|c| encode_readings(c).to_vec()).collect();
        let run_small = |enabled: bool| {
            let cluster = Arc::new(StoreCluster::single());
            let agent = dcdb_collectagent::CollectAgent::new(Arc::clone(&cluster));
            let engine = enabled.then(|| {
                let e = Arc::new(AlertEngine::with_rules(rules()));
                agent.install_alert_engine(Arc::clone(&e));
                e
            });
            for p in &payloads {
                agent.handle_publish(TOPIC, p);
            }
            let sid = agent.registry().sids_under(TOPIC).first().expect("registered").1;
            let all = cluster.query(sid, TimeRange::all());
            let fp = all
                .iter()
                .fold(0u64, |acc, r| acc ^ r.value.to_bits().rotate_left((r.ts % 63) as u32));
            (all.len(), fp, engine.map_or(0, |e| e.transitions()))
        };
        let (n_on, fp_on, trans_on) = run_small(true);
        let (n_off, fp_off, trans_off) = run_small(false);
        assert_eq!(n_on, readings.len());
        assert_eq!(n_off, readings.len());
        assert_eq!(fp_on, fp_off, "alerting changed stored contents");
        assert_eq!(trans_off, 0, "no engine, no transitions");
        let _ = trans_on; // values below every threshold: zero transitions is fine
    }
}
