//! **Figure 7 + Equation 1**: per-core CPU load as a function of the sensor
//! rate for the three architectures, with the least-squares fit showing
//! distinctly linear scaling — which justifies Eq. 1's two-point linear
//! interpolation for capacity planning.
//!
//! Expected shape: all three curves linear (r² ≈ 1); peak loads around
//! 3% (Skylake), 5% (Haswell) and 8% (KNL) at 10⁵ readings/s; below 1% for
//! rates ≤1000 on every architecture.

use dcdb_sim::overhead::{eq1_interpolate, linear_fit, pusher_cpu_load_percent, PusherConfig};
use dcdb_sim::Arch;

pub use super::fig5::{INTERVALS_MS, SENSORS};

/// One architecture's curve and fit.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Architecture.
    pub arch: Arch,
    /// `(sensor rate [1/s], CPU load [%])` points.
    pub points: Vec<(f64, f64)>,
    /// Intercept of the linear fit.
    pub intercept: f64,
    /// Slope of the linear fit (% per reading/s).
    pub slope: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

/// Compute the three curves over the full configuration grid.
pub fn run() -> Vec<Curve> {
    Arch::ALL
        .iter()
        .map(|&arch| {
            let mut points = Vec::new();
            for &interval in &INTERVALS_MS {
                for &sensors in &SENSORS {
                    let cfg = PusherConfig::tester(sensors, interval);
                    points.push((cfg.sensor_rate(), pusher_cpu_load_percent(&cfg, arch)));
                }
            }
            points.sort_by(|a, b| a.0.total_cmp(&b.0));
            points.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-9);
            let (intercept, slope, r2) = linear_fit(&points);
            Curve { arch, points, intercept, slope, r2 }
        })
        .collect()
}

/// Validate Eq. 1 against the model: interpolate the load at `target_rate`
/// from measurements at `a` and `b`; returns `(interpolated, direct)`.
pub fn eq1_check(arch: Arch, a: usize, b: usize, target: usize) -> (f64, f64) {
    let rate = |n: usize| PusherConfig::tester(n, 1000).sensor_rate();
    let load = |n: usize| pusher_cpu_load_percent(&PusherConfig::tester(n, 1000), arch);
    let interp = eq1_interpolate(rate(target), (rate(a), load(a)), (rate(b), load(b)));
    (interp, load(target))
}

/// Render the curves.
pub fn render(curves: &[Curve]) -> String {
    let mut out = String::new();
    for c in curves {
        out.push_str(&format!(
            "{}: load% = {:.4} + {:.3e} · rate   (r² = {:.5})\n",
            c.arch, c.intercept, c.slope, c.r2
        ));
        for (rate, load) in &c.points {
            out.push_str(&format!("  rate {rate:>9.1}/s → {load:>7.3}%\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_curves_linear() {
        for c in run() {
            assert!(c.r2 > 0.999, "{}: r² = {}", c.arch, c.r2);
            assert!(c.slope > 0.0);
        }
    }

    #[test]
    fn peak_loads_match_figure() {
        for (arch, expect) in
            [(Arch::Skylake, 3.0), (Arch::Haswell, 5.0), (Arch::KnightsLanding, 8.0)]
        {
            let c = run().into_iter().find(|c| c.arch == arch).unwrap();
            let peak = c.points.last().unwrap().1;
            assert!(
                (peak - expect).abs() / expect < 0.25,
                "{arch:?}: peak {peak:.2}% vs ~{expect}%"
            );
        }
    }

    #[test]
    fn low_rates_below_one_percent() {
        for c in run() {
            for &(rate, load) in &c.points {
                if rate <= 1000.0 {
                    assert!(load < 1.0, "{}: {rate}/s → {load}%", c.arch);
                }
            }
        }
    }

    #[test]
    fn arch_ordering_holds_at_every_rate() {
        let curves = run();
        let get = |a: Arch| curves.iter().find(|c| c.arch == a).unwrap();
        for (i, &(rate, sky)) in get(Arch::Skylake).points.iter().enumerate() {
            let has = get(Arch::Haswell).points[i].1;
            let knl = get(Arch::KnightsLanding).points[i].1;
            if rate >= 100.0 {
                assert!(knl > has && has > sky, "ordering broken at rate {rate}");
            }
        }
    }

    #[test]
    fn eq1_interpolation_is_exact_on_linear_model() {
        for arch in Arch::ALL {
            let (interp, direct) = eq1_check(arch, 1000, 10_000, 5_000);
            assert!((interp - direct).abs() < 1e-9, "{arch:?}: {interp} vs {direct}");
        }
    }
}
