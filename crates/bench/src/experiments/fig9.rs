//! **Figure 9** (use case 1): efficiency of heat removal on CooLMUC-3.
//!
//! This experiment runs the *entire* dcdb-rs pipeline end to end, exactly as
//! the paper describes the deployment: the cooling-circuit instrumentation
//! is exposed through SNMP and REST sources, one out-of-band Pusher samples
//! them, readings travel over the (in-process) MQTT transport to a Collect
//! Agent, land in the storage backend, and *virtual sensors* aggregate the
//! raw series into total power, heat removed and the heat-removal
//! efficiency.
//!
//! Expected shape: mean efficiency ≈ 0.90, essentially uncorrelated with
//! inlet temperature (insulated racks), power swinging ~10–35 kW over the
//! day while inlet temperature ramps from ~27 °C upward.

use std::sync::Arc;

use dcdb_collectagent::CollectAgent;
use dcdb_core::{SensorDb, SensorMeta, Unit};
use dcdb_mqtt::inproc::InprocBus;
use dcdb_pusher::mqtt_out::{MqttBackend, MqttOut, SendPolicy};
use dcdb_pusher::plugins::{RestPlugin, SnmpPlugin};
use dcdb_pusher::scheduler::{Pusher, PusherConfig};
use dcdb_sim::devices::cooling::CoolingCircuit;
use dcdb_sim::devices::rest::RestSource;
use dcdb_sim::devices::snmp::SnmpAgent;
use dcdb_store::reading::TimeRange;
use dcdb_store::StoreCluster;

/// Result of the case study.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// `(hour, power kW, heat removed kW, inlet °C)` series for plotting.
    pub series: Vec<(f64, f64, f64, f64)>,
    /// Mean heat-removal efficiency over the day.
    pub mean_efficiency: f64,
    /// Pearson correlation between inlet temperature and efficiency.
    pub temp_efficiency_correlation: f64,
    /// Total readings that flowed through the MQTT transport.
    pub transported_readings: u64,
}

/// OIDs of the power sensors on the (simulated) rack PDU controller.
const POWER_OID: &str = "1.3.6.1.4.1.318.1.1.26.6.3.1.7.1";

/// Run the 24-hour study at `step_s` resolution (paper-like: 60 s).
pub fn run(step_s: f64) -> CaseStudy {
    // -- facility instrumentation ------------------------------------
    let mut circuit = CoolingCircuit::new(0xF19);
    let snmp = Arc::new(SnmpAgent::new());
    snmp.set(POWER_OID, 0.0);
    let rest = Arc::new(RestSource::new());
    rest.set("heat_removed_kw", 0.0);
    rest.set("inlet_temp_c", 0.0);
    rest.set("flow_m3h", 0.0);

    // -- monitoring pipeline -----------------------------------------
    let bus = InprocBus::new();
    let store = Arc::new(StoreCluster::single());
    let agent = CollectAgent::new(store);
    agent.attach_inproc(&bus);

    let interval_ms = (step_s * 1000.0) as u64;
    let pusher = Pusher::new(
        PusherConfig { prefix: "/lrz/coolmuc3".into(), ..Default::default() },
        MqttOut::new(MqttBackend::Inproc(Arc::clone(&bus)), SendPolicy::Continuous),
    );
    let mut snmp_plugin = SnmpPlugin::new();
    snmp_plugin.add_walk("pdu", Arc::clone(&snmp), "1.3.6.1.4.1.318", interval_ms);
    pusher.add_plugin(Box::new(snmp_plugin));
    let mut rest_plugin = RestPlugin::new();
    rest_plugin.add_endpoint("cooling", Arc::clone(&rest), interval_ms);
    pusher.add_plugin(Box::new(rest_plugin));

    // -- drive 24 hours of virtual time -------------------------------
    let steps = (24.0 * 3600.0 / step_s) as usize;
    for i in 0..steps {
        let t_s = i as f64 * step_s;
        let sample = circuit.sample(t_s);
        snmp.set(POWER_OID, sample.power_kw);
        rest.set("heat_removed_kw", sample.heat_removed_kw);
        rest.set("inlet_temp_c", sample.inlet_temp_c);
        rest.set("flow_m3h", sample.flow_m3_h);
        rest.set_timestamp((t_s * 1e9) as i64);
        pusher.sample_due((t_s * 1e9) as i64);
    }
    pusher.out().flush();

    // -- analysis through libDCDB virtual sensors ---------------------
    let db = SensorDb::new(Arc::clone(agent.store()), Arc::clone(agent.registry()));
    let power_topic = format!("/lrz/coolmuc3/pdu/snmp/{}", POWER_OID.replace('.', "_"));
    let heat_topic = "/lrz/coolmuc3/cooling/heat_removed_kw";
    let inlet_topic = "/lrz/coolmuc3/cooling/inlet_temp_c";
    db.set_meta(&power_topic, SensorMeta::with_unit(Unit::KILOWATT));
    db.set_meta(heat_topic, SensorMeta::with_unit(Unit::KILOWATT));
    db.set_meta(inlet_topic, SensorMeta::with_unit(Unit::CELSIUS));
    db.define_virtual(
        "/v/coolmuc3/efficiency",
        &format!("\"{heat_topic}\" / \"{power_topic}\""),
        Unit::NONE,
    )
    .expect("efficiency expression compiles");

    let range = TimeRange::new(0, (24.0 * 3600.0 * 1e9) as i64 + 1);
    let power = db.query(&power_topic, range).expect("power query");
    let heat = db.query(heat_topic, range).expect("heat query");
    let inlet = db.query(inlet_topic, range).expect("inlet query");
    let eff = db.query("/v/coolmuc3/efficiency", range).expect("efficiency query");

    let n = power.readings.len().min(heat.readings.len()).min(inlet.readings.len());
    let series: Vec<(f64, f64, f64, f64)> = (0..n)
        .map(|i| {
            (
                power.readings[i].ts as f64 / 3.6e12,
                power.readings[i].value,
                heat.readings[i].value,
                inlet.readings[i].value,
            )
        })
        .collect();

    let mean_efficiency =
        eff.readings.iter().map(|r| r.value).sum::<f64>() / eff.readings.len() as f64;
    let temps: Vec<f64> = inlet.readings.iter().map(|r| r.value).collect();
    let effs: Vec<f64> = eff.readings.iter().take(temps.len()).map(|r| r.value).collect();
    let temp_efficiency_correlation = pearson(&temps, &effs);

    CaseStudy {
        series,
        mean_efficiency,
        temp_efficiency_correlation,
        transported_readings: bus.publish_bytes.load(std::sync::atomic::Ordering::Relaxed)
            / dcdb_mqtt::payload::RECORD_SIZE as u64,
    }
}

fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len().min(y.len()) as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let cov: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum::<f64>() / n;
    let sx = (x.iter().map(|a| (a - mx).powi(2)).sum::<f64>() / n).sqrt();
    let sy = (y.iter().map(|b| (b - my).powi(2)).sum::<f64>() / n).sqrt();
    if sx * sy == 0.0 {
        0.0
    } else {
        cov / (sx * sy)
    }
}

/// Render the study (downsampled series + summary).
pub fn render(cs: &CaseStudy) -> String {
    let mut out = String::new();
    out.push_str("hour, power [kW], heat removed [kW], inlet [C]\n");
    let stride = (cs.series.len() / 24).max(1);
    for (h, p, q, t) in cs.series.iter().step_by(stride) {
        out.push_str(&format!("{h:5.1}, {p:6.1}, {q:6.1}, {t:5.1}\n"));
    }
    out.push_str(&format!(
        "\nmean heat-removal efficiency: {:.1}% (paper: ~90%)\n",
        cs.mean_efficiency * 100.0
    ));
    out.push_str(&format!(
        "corr(inlet temperature, efficiency): {:+.3} (insulation → ~0)\n",
        cs.temp_efficiency_correlation
    ));
    out.push_str(&format!("readings through MQTT: {}\n", cs.transported_readings));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_near_ninety_percent() {
        let cs = run(300.0); // 5-minute steps for test speed
        assert!(
            (0.87..0.93).contains(&cs.mean_efficiency),
            "mean efficiency {:.3}",
            cs.mean_efficiency
        );
    }

    #[test]
    fn efficiency_uncorrelated_with_inlet_temperature() {
        let cs = run(300.0);
        assert!(
            cs.temp_efficiency_correlation.abs() < 0.2,
            "correlation {:+.3}",
            cs.temp_efficiency_correlation
        );
    }

    #[test]
    fn series_spans_the_day_with_diurnal_power() {
        let cs = run(300.0);
        assert!(cs.series.len() >= 280);
        let max_p = cs.series.iter().map(|s| s.1).fold(f64::MIN, f64::max);
        let min_p = cs.series.iter().map(|s| s.1).fold(f64::MAX, f64::min);
        assert!(max_p < 40.0 && min_p > 8.0, "power {min_p:.1}–{max_p:.1} kW");
        assert!(max_p - min_p > 12.0, "diurnal swing {:.1} kW", max_p - min_p);
        // inlet ramps upward over the day
        assert!(cs.series.last().unwrap().3 > cs.series.first().unwrap().3 + 25.0);
    }

    #[test]
    fn data_flowed_through_the_transport() {
        let cs = run(600.0);
        // 4 sensors (1 SNMP OID + 3 REST metrics) × 144 steps = 576 readings
        assert!(cs.transported_readings >= 570, "{}", cs.transported_readings);
    }
}
