//! Hot-block cache + intra-group parallel fan-in study.
//!
//! Two measurements of the query hot path introduced with the decoded-block
//! cache and the chunked fan-in executor:
//!
//! * **Dashboard refresh loop** ([`run_refresh`]) — the paper's continuous
//!   monitoring pattern: the same 1-hour panel over a day of 1 Hz data is
//!   queried repeatedly.  Without a cache every refresh re-decodes every
//!   intersecting block; with a cache the *first* (cold) refresh decodes
//!   them and every warm refresh is a hash lookup — decodes ≈ 0, latency
//!   several times lower.
//! * **Fan-in thread scaling** ([`run_fanin`]) — a single fat group (one
//!   rack of [`FANIN_SENSORS`] power sensors) aggregated over the day at
//!   increasing worker-thread counts.  Pre-chunking, a single group ran
//!   serially (`parallel_speedup ≈ 1.0` in `BENCH_query.json`); with
//!   [`dcdb_query::FANIN_CHUNK`]-sensor chunks the same query scales with
//!   cores, bit-identically to the serial run.

use std::sync::Arc;
use std::time::Instant;

use dcdb_query::{AggFn, QueryEngine};
use dcdb_sim::workloads::BehaviorTrace;
use dcdb_sim::{Arch, Workload};
use dcdb_store::reading::TimeRange;
use dcdb_store::{NodeConfig, StoreCluster};

/// Sampling interval of the simulated sensors (1 s).
pub const INTERVAL_NS: i64 = 1_000_000_000;
/// Readings per series: one day at 1 Hz.
pub const SERIES_LEN: usize = 86_400;
/// The dashboard panel: one hour, 1-minute windows.
pub const PANEL_LEN: usize = 3_600;
/// Aggregation window of the panel.
pub const WINDOW_NS: i64 = 60 * INTERVAL_NS;
/// Warm refreshes measured after the cold one.
pub const REFRESHES: usize = 8;
/// Sensors in the fan-in scaling study's single group.
pub const FANIN_SENSORS: usize = 32;
/// Cache budget used by the study: 8 MiB of decoded readings.
pub const CACHE_READINGS: usize = 512 * 1024;

/// One simulated day of HPL power values — deliberately *not* rounded: the
/// cache study wants the realistic full-precision decode cost, not the
/// best-case compressibility the compression studies round for.
fn power_day(seed: u64) -> Vec<f64> {
    let mut trace = BehaviorTrace::new(Workload::Hpl, Arch::Skylake.spec(), INTERVAL_NS, seed);
    trace.take(SERIES_LEN).iter().map(|s| s.power_w).collect()
}

fn cluster_with_day(cache_readings: usize, sensors: usize) -> Arc<StoreCluster> {
    let cluster = Arc::new(StoreCluster::new(
        NodeConfig {
            // several runs, like a live node that flushed over the day;
            // compaction disabled so the multi-run layout (and with it the
            // per-refresh decode count) stays fixed for the whole study
            memtable_flush_entries: SERIES_LEN / 4,
            compaction_threshold: usize::MAX,
            block_cache_readings: cache_readings,
            ..Default::default()
        },
        dcdb_sid::PartitionMap::prefix(1, 2),
        1,
    ));
    let power = power_day(17);
    for s in 0..sensors {
        let sid = sensor(s);
        for (i, &v) in power.iter().enumerate() {
            cluster.insert(sid, i as i64 * INTERVAL_NS, v + s as f64);
        }
        cluster.node(0).flush();
    }
    cluster
}

fn sensor(n: usize) -> dcdb_sid::SensorId {
    dcdb_sid::SensorId::from_fields(&[6, n as u16 + 1]).expect("static sid")
}

/// Results of the dashboard refresh loop, cache on versus off.
#[derive(Debug, Clone)]
pub struct RefreshReport {
    /// Readings stored for the panel's sensor.
    pub readings: usize,
    /// Compressed blocks the sensor's runs hold.
    pub blocks_total: u64,
    /// Blocks decoded by the first (cold) cached refresh.
    pub blocks_cold: u64,
    /// Blocks decoded across all [`REFRESHES`] warm cached refreshes.
    pub blocks_warm: u64,
    /// Blocks decoded per refresh without a cache.
    pub blocks_uncached: u64,
    /// Cold cached refresh latency, seconds.
    pub cold_s: f64,
    /// Warm cached refresh latency, seconds (best of [`REFRESHES`], like
    /// the query study's best-of timing — scheduler noise on shared
    /// runners must not masquerade as cache behaviour).
    pub warm_s: f64,
    /// Uncached refresh latency, seconds (best of [`REFRESHES`]).
    pub uncached_s: f64,
    /// Cache counters after the loop.
    pub cache: dcdb_store::CacheStats,
    /// Cached results bit-identical to uncached?
    pub identical: bool,
}

impl RefreshReport {
    /// Latency win of a warm cached refresh over an uncached refresh.
    pub fn warm_speedup(&self) -> f64 {
        self.uncached_s.max(1e-12) / self.warm_s.max(1e-12)
    }
}

/// Run the dashboard refresh loop: one panel query, repeated, cache on
/// versus cache off.
pub fn run_refresh() -> RefreshReport {
    let start = (20 * 3600) as i64 * INTERVAL_NS;
    let range = TimeRange::new(start, start + PANEL_LEN as i64 * INTERVAL_NS);

    // --- cache off: every refresh decodes the panel's blocks afresh
    let uncached = cluster_with_day(0, 1);
    let engine = QueryEngine::new(Arc::clone(&uncached));
    let mut uncached_s = f64::INFINITY;
    let mut reference = Vec::new();
    let base = uncached.blocks_decoded();
    for _ in 0..REFRESHES {
        let t = Instant::now();
        reference = engine.aggregate_sid(sensor(0), range, WINDOW_NS, AggFn::Avg);
        uncached_s = uncached_s.min(t.elapsed().as_secs_f64());
    }
    let blocks_uncached = (uncached.blocks_decoded() - base) / REFRESHES as u64;

    // --- cache on: the cold refresh pays the decode, warm ones do not
    let cached = cluster_with_day(CACHE_READINGS, 1);
    let engine = QueryEngine::new(Arc::clone(&cached));
    let t = Instant::now();
    let cold = engine.aggregate_sid(sensor(0), range, WINDOW_NS, AggFn::Avg);
    let cold_s = t.elapsed().as_secs_f64();
    let blocks_cold = cached.blocks_decoded();

    let mut warm_s = f64::INFINITY;
    let mut warm = Vec::new();
    for _ in 0..REFRESHES {
        let t = Instant::now();
        warm = engine.aggregate_sid(sensor(0), range, WINDOW_NS, AggFn::Avg);
        warm_s = warm_s.min(t.elapsed().as_secs_f64());
    }
    let blocks_warm = cached.blocks_decoded() - blocks_cold;

    let bit_eq = |a: &[dcdb_store::Reading], b: &[dcdb_store::Reading]| {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| x.ts == y.ts && x.value.to_bits() == y.value.to_bits())
    };

    RefreshReport {
        readings: SERIES_LEN,
        blocks_total: cached.block_count() as u64,
        blocks_cold,
        blocks_warm,
        blocks_uncached,
        cold_s,
        warm_s,
        uncached_s,
        cache: cached.cache_stats(),
        identical: bit_eq(&cold, &reference) && bit_eq(&warm, &reference),
    }
}

/// One point of the fan-in thread-scaling curve.
#[derive(Debug, Clone)]
pub struct FaninPoint {
    /// Worker threads used.
    pub threads: usize,
    /// Best-of-reps latency, seconds.
    pub latency_s: f64,
    /// Bit-identical to the single-threaded run?
    pub identical: bool,
}

/// Results of the single-group fan-in scaling study.
#[derive(Debug, Clone)]
pub struct FaninReport {
    /// Sensors in the group.
    pub sensors: usize,
    /// Total readings aggregated per query.
    pub readings: usize,
    /// The host's available parallelism.
    pub available_parallelism: usize,
    /// Latency per thread count (1, 2, 4, ... up to the host's cores).
    pub points: Vec<FaninPoint>,
}

impl FaninReport {
    /// Speedup of the widest run over the serial run.
    pub fn max_speedup(&self) -> f64 {
        let serial = self.points.first().map_or(0.0, |p| p.latency_s);
        let best = self.points.iter().map(|p| p.latency_s).fold(f64::INFINITY, f64::min).max(1e-12);
        serial / best
    }
}

/// Run the fan-in scaling study: one [`FANIN_SENSORS`]-sensor group, full
/// day, 5-minute average, at doubling thread counts.
pub fn run_fanin() -> FaninReport {
    let cluster = cluster_with_day(0, FANIN_SENSORS);
    let engine = QueryEngine::new(Arc::clone(&cluster));
    let range = TimeRange::new(0, SERIES_LEN as i64 * INTERVAL_NS);
    let window = 300 * INTERVAL_NS;
    let sids: Vec<(dcdb_sid::SensorId, f64)> =
        (0..FANIN_SENSORS).map(|s| (sensor(s), 1.0)).collect();

    let cores = dcdb_query::exec::default_parallelism();
    let mut counts = vec![1usize];
    while *counts.last().expect("non-empty") * 2 <= cores {
        counts.push(counts.last().expect("non-empty") * 2);
    }
    if *counts.last().expect("non-empty") != cores {
        counts.push(cores);
    }

    let mut serial: Vec<dcdb_store::Reading> = Vec::new();
    let mut points = Vec::new();
    for &threads in &counts {
        let mut best = f64::INFINITY;
        let mut out = Vec::new();
        for _ in 0..3 {
            let t = Instant::now();
            out = engine.aggregate_on(&sids, range, window, AggFn::Avg, threads);
            best = best.min(t.elapsed().as_secs_f64());
        }
        let identical = if threads == 1 {
            serial = out;
            true
        } else {
            serial.len() == out.len()
                && serial
                    .iter()
                    .zip(&out)
                    .all(|(a, b)| a.ts == b.ts && a.value.to_bits() == b.value.to_bits())
        };
        points.push(FaninPoint { threads, latency_s: best, identical });
    }

    FaninReport {
        sensors: FANIN_SENSORS,
        readings: FANIN_SENSORS * SERIES_LEN,
        available_parallelism: cores,
        points,
    }
}

/// Render the refresh report.
pub fn render_refresh(r: &RefreshReport) -> String {
    let rows = vec![vec![
        r.readings.to_string(),
        r.blocks_total.to_string(),
        r.blocks_uncached.to_string(),
        r.blocks_cold.to_string(),
        r.blocks_warm.to_string(),
        format!("{:.0}", r.uncached_s * 1e6),
        format!("{:.0}", r.cold_s * 1e6),
        format!("{:.0}", r.warm_s * 1e6),
        format!("{:.1}x", r.warm_speedup()),
        format!("{:.0}%", r.cache.hit_rate() * 100.0),
        if r.identical { "yes" } else { "NO" }.to_string(),
    ]];
    crate::report::table(
        &[
            "readings",
            "blocks",
            "dec uncached",
            "dec cold",
            "dec warm",
            "uncached us",
            "cold us",
            "warm us",
            "warm speedup",
            "hit rate",
            "identical",
        ],
        &rows,
    )
}

/// Render the fan-in scaling report.
pub fn render_fanin(r: &FaninReport) -> String {
    let serial = r.points.first().map_or(0.0, |p| p.latency_s);
    let rows: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|p| {
            vec![
                p.threads.to_string(),
                format!("{:.1}", p.latency_s * 1e3),
                format!("{:.2}x", serial / p.latency_s.max(1e-12)),
                if p.identical { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    crate::report::table(&["threads", "latency ms", "speedup", "identical"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdb_store::sstable::BLOCK_LEN;

    #[test]
    fn warm_refresh_decodes_nothing() {
        let r = run_refresh();
        assert!(r.identical, "cached results diverged from uncached");
        // the hour's blocks fit the cache comfortably, so warm refreshes
        // decode nothing at all
        assert_eq!(r.blocks_warm, 0, "warm refreshes must be decode-free");
        assert_eq!(r.blocks_cold, r.blocks_uncached, "the cold refresh pays the same decodes");
        let max_intersecting = (PANEL_LEN / BLOCK_LEN + 2) as u64;
        assert!(r.blocks_cold <= max_intersecting, "pushdown survived: {}", r.blocks_cold);
        assert!(r.cache.hits > 0);
        // no timing assertion here: unoptimised test builds flake; the
        // release `cache` bench bin enforces the >= 5x warm-refresh win
    }

    #[test]
    fn fanin_scaling_is_exact_for_every_thread_count() {
        let r = run_fanin();
        assert_eq!(r.points.first().map(|p| p.threads), Some(1));
        assert!(r.points.iter().all(|p| p.identical), "chunked fan-in diverged from serial");
        assert_eq!(r.readings, FANIN_SENSORS * SERIES_LEN);
        assert!(r.available_parallelism >= 1);
    }
}
