//! Gaussian kernel density estimation.
//!
//! Fig. 10 plots "the fitted probability density functions" of the
//! instructions-per-Watt time series; this is the standard Gaussian KDE with
//! Silverman's rule-of-thumb bandwidth.

/// A fitted density.
#[derive(Debug, Clone)]
pub struct Kde {
    samples: Vec<f64>,
    /// Bandwidth (h).
    pub bandwidth: f64,
}

impl Kde {
    /// Fit a KDE with Silverman's bandwidth.
    ///
    /// # Panics
    /// Panics on an empty sample set.
    pub fn fit(samples: &[f64]) -> Kde {
        assert!(!samples.is_empty(), "KDE needs samples");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let std = (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n).sqrt();
        // Silverman: h = 1.06 σ n^(−1/5); guard degenerate σ
        let bandwidth = (1.06 * std * n.powf(-0.2)).max(1e-12);
        Kde { samples: samples.to_vec(), bandwidth }
    }

    /// Fit with an explicit bandwidth.
    pub fn with_bandwidth(samples: &[f64], bandwidth: f64) -> Kde {
        assert!(!samples.is_empty() && bandwidth > 0.0);
        Kde { samples: samples.to_vec(), bandwidth }
    }

    /// Density estimate at `x`.
    pub fn density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / ((2.0 * std::f64::consts::PI).sqrt() * h * self.samples.len() as f64);
        self.samples
            .iter()
            .map(|&s| {
                let u = (x - s) / h;
                (-0.5 * u * u).exp()
            })
            .sum::<f64>()
            * norm
    }

    /// Evaluate on `points` evenly-spaced x values in `[lo, hi]`.
    pub fn curve(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2 && hi > lo);
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.density(x))
            })
            .collect()
    }

    /// The x value of the density's highest evaluated point.
    pub fn mode(&self, lo: f64, hi: f64, points: usize) -> f64 {
        self.curve(lo, hi, points)
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(x, _)| x)
            .expect("non-empty curve")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_to_one() {
        let samples: Vec<f64> = (0..200).map(|i| (i % 17) as f64).collect();
        let kde = Kde::fit(&samples);
        // numeric integral over a generous range
        let curve = kde.curve(-20.0, 40.0, 2000);
        let dx = curve[1].0 - curve[0].0;
        let total: f64 = curve.iter().map(|(_, d)| d * dx).sum();
        assert!((total - 1.0).abs() < 0.01, "integral = {total}");
    }

    #[test]
    fn mode_near_sample_mass() {
        let samples = vec![10.0; 50];
        let kde = Kde::with_bandwidth(&samples, 1.0);
        let mode = kde.mode(0.0, 20.0, 201);
        assert!((mode - 10.0).abs() < 0.2);
    }

    #[test]
    fn bimodal_distribution_has_two_humps() {
        let mut samples = vec![0.0; 100];
        samples.extend(vec![10.0; 100]);
        let kde = Kde::with_bandwidth(&samples, 0.8);
        let d_peak0 = kde.density(0.0);
        let d_peak1 = kde.density(10.0);
        let d_valley = kde.density(5.0);
        assert!(d_valley < d_peak0 * 0.3);
        assert!(d_valley < d_peak1 * 0.3);
    }

    #[test]
    #[should_panic(expected = "KDE needs samples")]
    fn empty_panics() {
        Kde::fit(&[]);
    }
}
