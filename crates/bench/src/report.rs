//! Report formatting: the ASCII tables and heat maps the `figN`/`tableN`
//! binaries print, plus CSV writers so results can be re-plotted.

use std::fmt::Write as _;

/// Render a table with a header row.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(cell.len());
            let _ = write!(out, "| {cell:<w$} ");
        }
        out.push_str("|\n");
    };
    line(&mut out, &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(&mut out, &sep);
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Render a heat map: `values[y][x]` with axis labels (Fig. 5 style).
pub fn heatmap(
    title: &str,
    x_labels: &[String],
    y_labels: &[String],
    values: &[Vec<f64>],
) -> String {
    let mut out = format!("{title}\n");
    let ylw = y_labels.iter().map(|l| l.len()).max().unwrap_or(4).max(4);
    let _ = write!(out, "{:>ylw$} ", "");
    for xl in x_labels {
        let _ = write!(out, "{xl:>8} ");
    }
    out.push('\n');
    for (y, row) in values.iter().enumerate() {
        let _ = write!(out, "{:>ylw$} ", y_labels.get(y).map(String::as_str).unwrap_or(""));
        for v in row {
            let _ = write!(out, "{v:>8.3} ");
        }
        out.push('\n');
    }
    out
}

/// Write `(x, series...)` rows as CSV to `results/<name>.csv` (best-effort;
/// printing is the primary output).
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let mut text = headers.join(",");
    text.push('\n');
    for row in rows {
        text.push_str(&row.join(","));
        text.push('\n');
    }
    let _ = std::fs::write(dir.join(format!("{name}.csv")), text);
}

/// Write pre-rendered JSON to `results/<name>.json` (best-effort, like
/// [`write_csv`]; printing is the primary output).
pub fn write_json(name: &str, json: &str) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let _ = std::fs::write(dir.join(format!("{name}.json")), json);
}

/// Format a float tersely.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["long-name".into(), "2.5".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].starts_with("| a"));
        // all lines same length
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn heatmap_renders_grid() {
        let h = heatmap(
            "demo",
            &["10".into(), "100".into()],
            &["100ms".into(), "1s".into()],
            &[vec![0.1, 0.2], vec![0.3, 0.4]],
        );
        assert!(h.contains("demo"));
        assert!(h.contains("0.400"));
        assert_eq!(h.lines().count(), 4);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1234.6), "1235");
        assert_eq!(f(42.4242), "42.42");
        assert_eq!(f(0.0421), "0.042");
    }
}
