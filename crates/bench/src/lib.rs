//! # dcdb-bench
//!
//! The evaluation harness: one experiment module per table/figure of the
//! paper (§6–§7), each with a `run()` returning structured results and a
//! report binary printing the same rows/series the paper plots.  Integration
//! tests assert the *shape* of every result (who wins, by what factor, where
//! crossovers fall); EXPERIMENTS.md records paper-vs-measured values.
//!
//! | Paper artefact | Module | Binary |
//! |---|---|---|
//! | Table 1 (production overhead)            | [`experiments::table1`] | `table1` |
//! | Fig. 4 (CORAL-2 weak scaling)            | [`experiments::fig4`]   | `fig4`   |
//! | Fig. 5 (overhead heat maps)              | [`experiments::fig5`]   | `fig5`   |
//! | Fig. 6 (Pusher CPU load / memory)        | [`experiments::fig6`]   | `fig6`   |
//! | Fig. 7 + Eq. 1 (CPU load scaling model)  | [`experiments::fig7`]   | `fig7`   |
//! | Fig. 8 (Collect Agent scalability)       | [`experiments::fig8`]   | `fig8`   |
//! | Fig. 9 (heat-removal case study)         | [`experiments::fig9`]   | `fig9`   |
//! | Fig. 10 (application characterisation)   | [`experiments::fig10`]  | `fig10`  |
//! | Design ablations (DESIGN.md §5)          | [`experiments::ablations`] | `ablations` |
//! | Compression study (dcdb-compress)        | [`experiments::compression`] | `compression` |
//! | Query pushdown study (dcdb-query)        | [`experiments::query`] | `query` |
//! | Hot-block cache study (dcdb-store)       | [`experiments::cache`] | `cache` |
//! | Background-maintenance study (dcdb-store) | [`experiments::maintenance`] | `maintenance` |
//! | Observability-overhead study (dcdb-obs)  | [`experiments::obs`] | `obs` |
//! | Alert-engine-overhead study (dcdb-core)  | [`experiments::alerts`] | `alerts` |

pub mod experiments;
pub mod kde;
pub mod report;
