//! Criterion micro-benchmarks of the monitoring pipeline's hot paths, plus
//! one group per paper artefact so `cargo bench` regenerates every number.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use dcdb_bench::experiments;
use dcdb_collectagent::CollectAgent;
use dcdb_mqtt::codec::{decode_packet, encode_packet, Packet, QoS};
use dcdb_mqtt::payload::encode_readings;
use dcdb_pusher::mqtt_out::{MqttBackend, MqttOut, SendPolicy};
use dcdb_pusher::plugins::TesterPlugin;
use dcdb_pusher::scheduler::{Pusher, PusherConfig};
use dcdb_sid::{SensorId, TopicRegistry};
use dcdb_store::reading::TimeRange;
use dcdb_store::StoreCluster;

fn bench_mqtt_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("mqtt_codec");
    let packet = Packet::Publish {
        topic: "/lrz/sys/rack03/node12/cpu07/instructions".into(),
        payload: encode_readings(&[(1_000_000_000, 1234.5)]),
        qos: QoS::AtMostOnce,
        retain: false,
        dup: false,
        pid: None,
    };
    g.throughput(Throughput::Elements(1));
    g.bench_function("encode_publish", |b| {
        b.iter_batched(
            bytes::BytesMut::new,
            |mut buf| encode_packet(&packet, &mut buf).unwrap(),
            BatchSize::SmallInput,
        )
    });
    let mut encoded = bytes::BytesMut::new();
    encode_packet(&packet, &mut encoded).unwrap();
    g.bench_function("decode_publish", |b| {
        b.iter_batched(
            || encoded.clone(),
            |mut buf| decode_packet(&mut buf).unwrap().unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_store_ingest(c: &mut Criterion) {
    let mut g = c.benchmark_group("store");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("insert_1k", |b| {
        let sid = SensorId::from_topic("/bench/node/sensor").unwrap();
        b.iter_batched(
            StoreCluster::single,
            |cluster| {
                for ts in 0..1000 {
                    cluster.insert(sid, ts, ts as f64);
                }
                cluster
            },
            BatchSize::SmallInput,
        )
    });
    // range query over a populated store
    let cluster = StoreCluster::single();
    let sid = SensorId::from_topic("/bench/node/sensor").unwrap();
    for ts in 0..100_000 {
        cluster.insert(sid, ts, ts as f64);
    }
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("query_10k_of_100k", |b| {
        b.iter(|| cluster.query(sid, TimeRange::new(40_000, 50_000)))
    });
    g.finish();
}

fn bench_collect_agent(c: &mut Criterion) {
    let mut g = c.benchmark_group("collect_agent");
    let agent = CollectAgent::new(Arc::new(StoreCluster::single()));
    // steady state: topic pre-registered
    agent.handle_publish("/bench/host0/t0", &encode_readings(&[(0, 1.0)]));
    let payload = encode_readings(&[(1_000_000_000, 42.0)]);
    g.throughput(Throughput::Elements(1));
    g.bench_function("handle_publish", |b| {
        b.iter(|| agent.handle_publish("/bench/host0/t0", &payload))
    });
    g.finish();
}

fn bench_pusher_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("pusher");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("sample_1k_tester_sensors", |b| {
        b.iter_batched(
            || {
                let p = Pusher::new(
                    PusherConfig::default(),
                    MqttOut::new(MqttBackend::Null, SendPolicy::Continuous),
                );
                p.add_plugin(Box::new(TesterPlugin::new(1000, 1000)));
                p
            },
            |p| p.sample_due(0),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_sid_resolution(c: &mut Criterion) {
    let mut g = c.benchmark_group("sid");
    let registry = TopicRegistry::new();
    registry.resolve("/lrz/sys/rack03/node12/cpu07/instructions").unwrap();
    g.bench_function("resolve_hot", |b| {
        b.iter(|| registry.resolve("/lrz/sys/rack03/node12/cpu07/instructions").unwrap())
    });
    g.bench_function("sid_from_topic", |b| {
        b.iter(|| SensorId::from_topic("/lrz/sys/rack03/node12/cpu07/instructions").unwrap())
    });
    g.finish();
}

fn bench_paper_artefacts(c: &mut Criterion) {
    // One sample per artefact: regenerating every table/figure is the
    // deliverable; Criterion gives the regeneration cost.
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("table1", |b| b.iter(experiments::table1::run));
    g.bench_function("fig4", |b| b.iter(experiments::fig4::run));
    g.bench_function("fig5", |b| b.iter(experiments::fig5::run));
    g.bench_function("fig6", |b| b.iter(experiments::fig6::run));
    g.bench_function("fig7", |b| b.iter(experiments::fig7::run));
    g.bench_function("fig8_point", |b| b.iter(|| experiments::fig8::measure(5, 1000, 1.0)));
    g.bench_function("fig9_1h", |b| {
        b.iter(|| experiments::fig9::run(3600.0)) // hourly steps: fast smoke
    });
    g.bench_function("fig10_1min", |b| b.iter(|| experiments::fig10::run(1)));
    g.finish();
}

criterion_group!(
    benches,
    bench_mqtt_codec,
    bench_store_ingest,
    bench_collect_agent,
    bench_pusher_sampling,
    bench_sid_resolution,
    bench_paper_artefacts
);
criterion_main!(benches);
