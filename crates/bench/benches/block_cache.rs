//! Criterion micro-benchmark of the decoded-block cache: repeated reads of
//! the same SSTable blocks with and without a cache attached.  The cached
//! read degenerates to hash lookups + memcpy; the uncached read pays the
//! Gorilla decode every time.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use dcdb_sid::SensorId;
use dcdb_store::reading::{TimeRange, Timestamp};
use dcdb_store::sstable::SsTable;
use dcdb_store::BlockCache;

const READINGS: usize = 8192;

fn table_entries(sid: SensorId) -> Vec<(SensorId, Timestamp, f64)> {
    (0..READINGS)
        .map(|i| (sid, i as i64 * 1_000_000_000, 240.0 + ((i as f64) * 0.05).sin() * 3.0))
        .collect()
}

fn bench_block_reads(c: &mut Criterion) {
    let sid = SensorId::from_fields(&[1, 2]).unwrap();
    let uncached = SsTable::from_sorted(table_entries(sid));
    let cache = Arc::new(BlockCache::new(1 << 20));
    let cached = SsTable::from_sorted_cached(table_entries(sid), Some(cache));
    // warm the cache so the cached case measures steady-state hits
    let mut warmup = Vec::new();
    cached.query(sid, TimeRange::all(), &mut warmup);
    assert_eq!(warmup.len(), READINGS);

    let mut g = c.benchmark_group("block_reads");
    g.throughput(Throughput::Elements(READINGS as u64));
    g.bench_function("uncached_8k", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(READINGS);
            uncached.query(std::hint::black_box(sid), TimeRange::all(), &mut out);
            out
        })
    });
    g.bench_function("cached_8k", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(READINGS);
            cached.query(std::hint::black_box(sid), TimeRange::all(), &mut out);
            out
        })
    });
    g.finish();
}

fn bench_window_fold(c: &mut Criterion) {
    // the aggregation work a warm dashboard refresh still pays after the
    // cache removed the decode: fold 3600 readings into 60 windows
    let readings: Vec<dcdb_store::Reading> = (0..3600)
        .map(|i| dcdb_store::Reading::new(i as i64 * 1_000_000_000, 240.0 + (i % 7) as f64))
        .collect();
    let mut g = c.benchmark_group("window_fold");
    g.throughput(Throughput::Elements(readings.len() as u64));
    g.bench_function("avg_3600_into_60", |b| {
        b.iter(|| {
            dcdb_query::window_aggregate(
                std::hint::black_box(&readings).iter().copied(),
                60_000_000_000,
                dcdb_query::AggFn::Avg,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_block_reads, bench_window_fold);
criterion_main!(benches);
