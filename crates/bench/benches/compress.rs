//! Criterion micro-benchmarks of the Gorilla codec: encode/decode
//! throughput and the SSTable v2 serialisation path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use dcdb_compress::{decode_series, encode_series};
use dcdb_sid::SensorId;
use dcdb_store::reading::Timestamp;
use dcdb_store::sstable::SsTable;

fn power_series(n: usize) -> Vec<(i64, f64)> {
    (0..n)
        .map(|i| {
            (
                1_600_000_000_000_000_000 + i as i64 * 1_000_000_000,
                240.0 + ((i as f64) * 0.05).sin() * 3.0,
            )
        })
        .collect()
}

fn bench_series_codec(c: &mut Criterion) {
    let series = power_series(10_000);
    let encoded = encode_series(&series);
    let mut g = c.benchmark_group("compress_series");
    g.throughput(Throughput::Elements(series.len() as u64));
    g.bench_function("encode_10k", |b| b.iter(|| encode_series(std::hint::black_box(&series))));
    g.bench_function("decode_10k", |b| {
        b.iter(|| decode_series(std::hint::black_box(&encoded)).unwrap())
    });
    g.finish();
}

fn bench_sstable_v2(c: &mut Criterion) {
    let sid = SensorId::from_fields(&[1, 2]).unwrap();
    let entries: Vec<(SensorId, Timestamp, f64)> =
        power_series(10_000).into_iter().map(|(ts, v)| (sid, ts, v)).collect();
    let table = SsTable::from_sorted(entries);
    let mut v2 = Vec::new();
    table.write_to(&mut v2).unwrap();
    let mut g = c.benchmark_group("sstable_v2");
    g.throughput(Throughput::Elements(table.len() as u64));
    g.bench_function("write_10k", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(v2.len());
            table.write_to(&mut buf).unwrap();
            buf
        })
    });
    g.bench_function("read_10k", |b| b.iter(|| SsTable::read_from(&mut &v2[..]).unwrap()));
    g.finish();
}

criterion_group!(benches, bench_series_codec, bench_sstable_v2);
criterion_main!(benches);
