//! Property tests for the Pusher scheduler and sensor cache.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dcdb_pusher::cache::SensorCache;
use dcdb_pusher::mqtt_out::{MqttBackend, MqttOut, SendPolicy};
use dcdb_pusher::plugin::{Plugin, SensorGroup, SensorSpec};
use dcdb_pusher::scheduler::{Pusher, PusherConfig};
use proptest::prelude::*;

struct Synthetic {
    groups: Vec<SensorGroup>,
}

impl Plugin for Synthetic {
    fn name(&self) -> &str {
        "synthetic"
    }
    fn groups(&self) -> &[SensorGroup] {
        &self.groups
    }
    fn read_group(&self, group: usize, now_ns: i64) -> Vec<(usize, f64)> {
        (0..self.groups[group].sensors.len()).map(|i| (i, now_ns as f64 + i as f64)).collect()
    }
}

fn plugin(groups: &[(usize, u64)]) -> Box<Synthetic> {
    let groups = groups
        .iter()
        .enumerate()
        .map(|(gi, &(sensors, interval))| {
            let mut g = SensorGroup::new(format!("g{gi}"), interval);
            for i in 0..sensors {
                g = g.sensor(SensorSpec::gauge(format!("s{i}"), format!("/g{gi}/s{i}")));
            }
            g
        })
        .collect();
    Box::new(Synthetic { groups })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reading_count_matches_schedule(
        groups in prop::collection::vec((1usize..8, 50u64..2000), 1..4),
        horizon_ms in 100i64..5000,
    ) {
        let p = Pusher::new(
            PusherConfig::default(),
            MqttOut::new(MqttBackend::Null, SendPolicy::Continuous),
        );
        p.add_plugin(plugin(&groups));
        let produced = p.run_virtual(horizon_ms * 1_000_000);
        // each group reads at 0, interval, 2·interval, ... ≤ horizon
        let expected: usize = groups
            .iter()
            .map(|&(sensors, interval)| {
                let rounds = (horizon_ms as u64 / interval) as usize + 1;
                sensors * rounds
            })
            .sum();
        prop_assert_eq!(produced, expected);
    }

    #[test]
    fn virtual_run_is_deterministic(
        groups in prop::collection::vec((1usize..5, 100u64..1500), 1..3),
    ) {
        let run = || {
            let log = Arc::new(AtomicU64::new(0));
            let l2 = Arc::clone(&log);
            let out = MqttOut::new(
                MqttBackend::Callback(Arc::new(move |topic, payload| {
                    // fold topic + payload into a checksum
                    let mut h = 0u64;
                    for b in topic.bytes().chain(payload.iter().copied()) {
                        h = h.wrapping_mul(31).wrapping_add(b as u64);
                    }
                    l2.fetch_add(h, Ordering::Relaxed);
                })),
                SendPolicy::Continuous,
            );
            let p = Pusher::new(PusherConfig::default(), out);
            p.add_plugin(plugin(&groups));
            p.run_virtual(2_000_000_000);
            log.load(Ordering::Relaxed)
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn incremental_equals_batch_run(
        sensors in 1usize..6, interval in 100u64..900, steps in 2usize..10,
    ) {
        // driving sample_due step by step produces the same count as one
        // run_virtual over the whole horizon
        let horizon = steps as i64 * 500_000_000;
        let batch = {
            let p = Pusher::new(
                PusherConfig::default(),
                MqttOut::new(MqttBackend::Null, SendPolicy::Continuous),
            );
            p.add_plugin(plugin(&[(sensors, interval)]));
            p.run_virtual(horizon)
        };
        let incremental = {
            let p = Pusher::new(
                PusherConfig::default(),
                MqttOut::new(MqttBackend::Null, SendPolicy::Continuous),
            );
            p.add_plugin(plugin(&[(sensors, interval)]));
            let mut total = 0;
            for s in 0..=steps {
                total += p.sample_due(s as i64 * 500_000_000);
            }
            total
        };
        prop_assert_eq!(batch, incremental);
    }

    #[test]
    fn cache_window_invariant(window in 1i64..10_000,
                              readings in prop::collection::vec((0i64..100_000, -1e3f64..1e3), 1..200)) {
        let cache = SensorCache::new(window);
        let mut sorted = readings.clone();
        sorted.sort_by_key(|r| r.0);
        for (ts, v) in &sorted {
            cache.insert("/w/s", *ts, *v);
        }
        let w = cache.window("/w/s");
        let newest = sorted.last().unwrap().0;
        // everything in the window is within [newest - window, newest]
        prop_assert!(w.iter().all(|r| r.ts >= newest - window && r.ts <= newest));
        // the newest reading is always present
        prop_assert_eq!(cache.latest("/w/s").unwrap().ts, newest);
    }

    #[test]
    fn burst_and_continuous_deliver_identical_readings(
        sensors in 1usize..5, burst_ns in 1_000_000i64..5_000_000_000,
    ) {
        use parking_lot::Mutex;
        let collect = |policy: SendPolicy| {
            let log: Arc<Mutex<Vec<(String, i64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
            let l2 = Arc::clone(&log);
            let out = MqttOut::new(
                MqttBackend::Callback(Arc::new(move |topic, payload| {
                    for (ts, v) in dcdb_mqtt::payload::decode_readings(payload).unwrap() {
                        l2.lock().push((topic.to_string(), ts, v.to_bits()));
                    }
                })),
                policy,
            );
            let p = Pusher::new(PusherConfig::default(), out);
            p.add_plugin(plugin(&[(sensors, 250)]));
            p.run_virtual(2_000_000_000);
            p.out().flush();
            let mut v = log.lock().clone();
            v.sort();
            v
        };
        let continuous = collect(SendPolicy::Continuous);
        let burst = collect(SendPolicy::Burst { interval_ns: burst_ns });
        prop_assert_eq!(continuous, burst);
    }
}
