//! # dcdb-pusher
//!
//! The DCDB Pusher: the component that collects monitoring data, either
//! in-band on compute nodes or out-of-band on management servers
//! (paper §3.1, §4.1).  A Pusher comprises:
//!
//! * a set of **plugins** performing the actual data acquisition, each
//!   structured as *Sensors* ⊂ *Groups* ⊂ optional *Entities* and built by a
//!   *Configurator* from property-tree configuration ([`plugin`], the ten
//!   implementations live in [`plugins`]),
//! * a **sensor cache** holding the most recent readings of every sensor,
//!   sized by a time window, queryable through the REST API ([`cache`]),
//! * an **MQTT client** pushing readings to the Collect Agent, with
//!   continuous or bursty send policies ([`mqtt_out`]),
//! * a **sampling scheduler** that reads groups on an interval grid aligned
//!   across plugins and Pushers — NTP-style synchronisation keeps parallel
//!   applications interrupted at the same time ([`scheduler`]),
//! * an **HTTP server** exposing configuration, plugin start/stop/reload and
//!   the sensor cache RESTfully ([`rest`]).
//!
//! The scheduler runs in two modes: real threads against the wall clock
//! (production / examples) and a virtual-time loop driven by
//! [`dcdb_sim::SimClock`] (evaluation harness), exercising identical plugin
//! and cache code.

pub mod cache;
pub mod mqtt_out;
pub mod plugin;
pub mod plugins;
pub mod rest;
pub mod scheduler;

pub use cache::SensorCache;
pub use mqtt_out::{MqttOut, SendPolicy};
pub use plugin::{Plugin, PluginError, SensorGroup, SensorSpec};
pub use scheduler::{Pusher, PusherConfig, PusherStats};
