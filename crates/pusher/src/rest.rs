//! The Pusher's RESTful API (paper §5.3).
//!
//! Endpoints:
//!
//! * `GET /plugins` — list plugins and their state,
//! * `GET /sensors` — list cached sensor topics,
//! * `PUT /plugins/:name/start` / `PUT /plugins/:name/stop` — control a
//!   plugin at runtime (e.g. to avoid conflicts with user software reading
//!   the same source),
//! * `GET /cache/*topic` — the recent readings of one sensor,
//! * `GET /average/*topic?window=NS` — windowed average of one sensor,
//! * `GET /config` — the Pusher's global configuration.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;

use dcdb_http::json::Json;
use dcdb_http::server::{HttpServer, Method, Response, StatusCode};
use dcdb_http::Router;

use crate::plugin::{Plugin, PluginError};
use crate::scheduler::Pusher;

/// Factory rebuilding a plugin from a configuration block (used by the
/// `reload` endpoint).
pub type PluginFactory =
    Arc<dyn Fn(&dcdb_config::Node) -> Result<Box<dyn Plugin>, PluginError> + Send + Sync>;

/// The default factory set: plugins that are fully config-constructible.
pub fn default_factories() -> HashMap<String, PluginFactory> {
    let mut m: HashMap<String, PluginFactory> = HashMap::new();
    m.insert(
        "tester".to_string(),
        Arc::new(|cfg| {
            crate::plugins::TesterPlugin::from_config(cfg).map(|p| Box::new(p) as Box<dyn Plugin>)
        }),
    );
    m
}

/// Build the REST router for a Pusher.
pub fn router(pusher: Arc<Pusher>) -> Router {
    router_with_factories(pusher, default_factories())
}

/// Build the router with an explicit plugin-factory set for `reload`.
pub fn router_with_factories(
    pusher: Arc<Pusher>,
    factories: HashMap<String, PluginFactory>,
) -> Router {
    let mut r = Router::new();

    let p = Arc::clone(&pusher);
    r.add(Method::Put, "/plugins/:name/reload", move |req| {
        let name = req.param("name").unwrap_or("").to_string();
        let Some(factory) = factories.get(&name) else {
            return Response::error(
                StatusCode::NotFound,
                "no reload factory registered for this plugin",
            );
        };
        let text = String::from_utf8_lossy(&req.body);
        let cfg = match dcdb_config::from_str(&text) {
            Ok(cfg) => cfg,
            Err(e) => return Response::error(StatusCode::BadRequest, &e.to_string()),
        };
        match factory(&cfg) {
            Ok(plugin) => {
                if p.replace_plugin(&name, plugin) {
                    Response::json(&Json::obj([
                        ("plugin", Json::str(name)),
                        ("reloaded", Json::Bool(true)),
                        ("sensors", Json::Num(p.sensor_count() as f64)),
                    ]))
                } else {
                    Response::error(StatusCode::NotFound, "no such plugin")
                }
            }
            Err(e) => Response::error(StatusCode::BadRequest, &e.to_string()),
        }
    });

    let p = Arc::clone(&pusher);
    r.add(Method::Get, "/plugins", move |_req| {
        let list: Vec<Json> = p
            .plugin_names()
            .into_iter()
            .map(|name| {
                let enabled = p.plugin_enabled(&name).unwrap_or(false);
                Json::obj([("name", Json::str(name)), ("running", Json::Bool(enabled))])
            })
            .collect();
        Response::json(&Json::Arr(list))
    });

    let p = Arc::clone(&pusher);
    r.add(Method::Get, "/sensors", move |_req| {
        let topics: Vec<Json> = p.cache().topics().into_iter().map(Json::Str).collect();
        Response::json(&Json::Arr(topics))
    });

    let p = Arc::clone(&pusher);
    r.add(Method::Put, "/plugins/:name/start", move |req| {
        plugin_toggle(&p, req.param("name").unwrap_or(""), true)
    });

    let p = Arc::clone(&pusher);
    r.add(Method::Put, "/plugins/:name/stop", move |req| {
        plugin_toggle(&p, req.param("name").unwrap_or(""), false)
    });

    let p = Arc::clone(&pusher);
    r.add(Method::Get, "/cache/*topic", move |req| {
        let topic = format!("/{}", req.param("topic").unwrap_or(""));
        let readings = p.cache().window(&topic);
        if readings.is_empty() {
            return Response::error(StatusCode::NotFound, "unknown sensor or empty cache");
        }
        let arr: Vec<Json> = readings
            .iter()
            .map(|r| Json::obj([("ts", Json::Num(r.ts as f64)), ("value", Json::Num(r.value))]))
            .collect();
        Response::json(&Json::obj([("topic", Json::str(topic)), ("readings", Json::Arr(arr))]))
    });

    let p = Arc::clone(&pusher);
    r.add(Method::Get, "/average/*topic", move |req| {
        let topic = format!("/{}", req.param("topic").unwrap_or(""));
        let window: i64 =
            req.query_param("window").and_then(|w| w.parse().ok()).unwrap_or(60_000_000_000);
        match p.cache().average(&topic, window) {
            Some(avg) => Response::json(&Json::obj([
                ("topic", Json::str(topic)),
                ("window_ns", Json::Num(window as f64)),
                ("average", Json::Num(avg)),
            ])),
            None => Response::error(StatusCode::NotFound, "unknown sensor or empty cache"),
        }
    });

    let p = Arc::clone(&pusher);
    r.add(Method::Get, "/config", move |_req| {
        let cfg = p.config();
        Response::json(&Json::obj([
            ("prefix", Json::str(cfg.prefix.clone())),
            ("cacheWindowNs", Json::Num(cfg.cache_window_ns as f64)),
            ("samplingThreads", Json::Num(cfg.sampling_threads as f64)),
            ("sensors", Json::Num(p.sensor_count() as f64)),
        ]))
    });

    r
}

fn plugin_toggle(pusher: &Pusher, name: &str, enable: bool) -> Response {
    if pusher.set_plugin_enabled(name, enable) {
        Response::json(&Json::obj([("plugin", Json::str(name)), ("running", Json::Bool(enable))]))
    } else {
        Response::error(StatusCode::NotFound, "no such plugin")
    }
}

/// Start the REST server for `pusher` on `bind`.
///
/// # Errors
/// Propagates bind failures.
pub fn serve(pusher: Arc<Pusher>, bind: SocketAddr) -> std::io::Result<HttpServer> {
    HttpServer::start(bind, router(pusher).into_handler())
}
