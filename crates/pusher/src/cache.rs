//! The sensor cache.
//!
//! Every Pusher (and Collect Agent) keeps the latest readings of all sensors
//! in a cache "configurable in size" by a time window, so other processes
//! can read all kinds of sensors from user space via the REST API without
//! touching the sensor protocols (paper §5.3).  The production configuration
//! uses a two-minute window.

use std::collections::{HashMap, VecDeque};

use parking_lot::RwLock;

/// One cached reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedReading {
    /// Timestamp, ns.
    pub ts: i64,
    /// Value after scaling/delta.
    pub value: f64,
}

#[derive(Debug, Default)]
struct SensorSlot {
    readings: VecDeque<CachedReading>,
}

/// A windowed per-sensor cache.
pub struct SensorCache {
    window_ns: i64,
    slots: RwLock<HashMap<String, SensorSlot>>,
}

impl SensorCache {
    /// A cache keeping `window_ns` of history per sensor.
    pub fn new(window_ns: i64) -> SensorCache {
        assert!(window_ns > 0);
        SensorCache { window_ns, slots: RwLock::new(HashMap::new()) }
    }

    /// Insert a reading for `topic`, evicting entries older than the window.
    pub fn insert(&self, topic: &str, ts: i64, value: f64) {
        let mut slots = self.slots.write();
        let slot = slots.entry(topic.to_string()).or_default();
        slot.readings.push_back(CachedReading { ts, value });
        let cutoff = ts - self.window_ns;
        while slot.readings.front().is_some_and(|r| r.ts < cutoff) {
            slot.readings.pop_front();
        }
    }

    /// Latest reading of `topic`.
    pub fn latest(&self, topic: &str) -> Option<CachedReading> {
        self.slots.read().get(topic).and_then(|s| s.readings.back().copied())
    }

    /// All readings of `topic` currently in the window.
    pub fn window(&self, topic: &str) -> Vec<CachedReading> {
        self.slots
            .read()
            .get(topic)
            .map(|s| s.readings.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Average over the last `window_ns` of `topic` (REST `/average`).
    pub fn average(&self, topic: &str, window_ns: i64) -> Option<f64> {
        let slots = self.slots.read();
        let slot = slots.get(topic)?;
        let newest = slot.readings.back()?.ts;
        let cutoff = newest - window_ns;
        let mut sum = 0.0;
        let mut n = 0usize;
        for r in slot.readings.iter().rev() {
            if r.ts < cutoff {
                break;
            }
            sum += r.value;
            n += 1;
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// All cached topics, sorted.
    pub fn topics(&self) -> Vec<String> {
        let mut v: Vec<String> = self.slots.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Total readings held (for footprint accounting).
    pub fn total_readings(&self) -> usize {
        self.slots.read().values().map(|s| s.readings.len()).sum()
    }

    /// Approximate memory footprint in bytes (entries + key overhead).
    pub fn approx_bytes(&self) -> usize {
        let slots = self.slots.read();
        let entries: usize = slots.values().map(|s| s.readings.len()).sum();
        let keys: usize = slots.keys().map(|k| k.len() + 48).sum();
        entries * std::mem::size_of::<CachedReading>() + keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_latest() {
        let c = SensorCache::new(1_000);
        c.insert("/a/x", 10, 1.0);
        c.insert("/a/x", 20, 2.0);
        assert_eq!(c.latest("/a/x").unwrap().value, 2.0);
        assert!(c.latest("/a/y").is_none());
        assert_eq!(c.window("/a/x").len(), 2);
    }

    #[test]
    fn window_evicts_old_entries() {
        let c = SensorCache::new(100);
        for ts in (0..500).step_by(10) {
            c.insert("/s", ts, ts as f64);
        }
        let w = c.window("/s");
        assert!(w.first().unwrap().ts >= 490 - 100);
        assert_eq!(w.last().unwrap().ts, 490);
        assert!(w.len() <= 11);
    }

    #[test]
    fn average_over_subwindow() {
        let c = SensorCache::new(1_000);
        for ts in 0..10 {
            c.insert("/s", ts * 100, ts as f64);
        }
        // last 200 ns from newest (900): readings at 700, 800, 900 → avg 8
        assert_eq!(c.average("/s", 200), Some(8.0));
        assert_eq!(c.average("/s", 0), Some(9.0));
        assert!(c.average("/nope", 100).is_none());
    }

    #[test]
    fn topics_sorted() {
        let c = SensorCache::new(100);
        c.insert("/b", 1, 0.0);
        c.insert("/a", 1, 0.0);
        assert_eq!(c.topics(), vec!["/a".to_string(), "/b".to_string()]);
        assert_eq!(c.total_readings(), 2);
        assert!(c.approx_bytes() > 0);
    }

    #[test]
    fn footprint_bounded_by_window() {
        // 100 sensors at 10 ns period with a 1000 ns window → ≤ ~101 each
        let c = SensorCache::new(1_000);
        for s in 0..100 {
            for ts in (0..10_000).step_by(10) {
                c.insert(&format!("/s{s}"), ts, 0.0);
            }
        }
        assert!(c.total_readings() <= 100 * 102);
    }
}
