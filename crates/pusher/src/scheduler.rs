//! The Pusher core: sampling scheduler, processing pipeline, lifecycle.
//!
//! Sensor read intervals are synchronised within groups, across plugins and
//! across Pushers by aligning every read to a global interval grid (the
//! NTP-synchronised timing of paper §4.1): a group with a 1 s interval reads
//! at exact multiples of 1 s, so readings from different nodes share
//! timestamps and can be correlated without interpolation.
//!
//! The scheduler runs either against the wall clock (production) or against
//! a virtual clock (evaluation harness) — same sampling, caching and
//! publishing code in both modes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use crate::cache::SensorCache;
use crate::mqtt_out::MqttOut;
use crate::plugin::Plugin;

/// Pusher-level configuration (the `global` block of the config file).
#[derive(Debug, Clone)]
pub struct PusherConfig {
    /// Topic prefix for all sensors (typically the node's hierarchy path,
    /// e.g. `/lrz/smucng/rack03/node12`).
    pub prefix: String,
    /// Sensor-cache window in nanoseconds (production default: 2 minutes).
    pub cache_window_ns: i64,
    /// Number of sampling threads (production default: 2).  Informational
    /// for the footprint model; the virtual-time scheduler is sequential.
    pub sampling_threads: usize,
}

impl Default for PusherConfig {
    fn default() -> Self {
        PusherConfig {
            prefix: String::new(),
            cache_window_ns: 120 * 1_000_000_000,
            sampling_threads: 2,
        }
    }
}

/// Pusher counters.
#[derive(Debug, Default)]
pub struct PusherStats {
    /// Total readings produced.
    pub readings: AtomicU64,
    /// Group read rounds executed.
    pub group_reads: AtomicU64,
    /// Readings dropped because a plugin was stopped.
    pub skipped_disabled: AtomicU64,
}

struct PluginSlot {
    plugin: Box<dyn Plugin>,
    enabled: AtomicBool,
    /// Next due time per group, ns (grid-aligned).
    next_due: Mutex<Vec<i64>>,
    /// Last raw value per (group, sensor) for delta sensors.
    last_raw: Mutex<HashMap<(usize, usize), f64>>,
}

/// The Pusher.
pub struct Pusher {
    cfg: PusherConfig,
    plugins: RwLock<Vec<PluginSlot>>,
    cache: Arc<SensorCache>,
    out: Arc<MqttOut>,
    stats: PusherStats,
}

impl Pusher {
    /// Create a Pusher publishing through `out`.
    pub fn new(cfg: PusherConfig, out: MqttOut) -> Pusher {
        let cache = Arc::new(SensorCache::new(cfg.cache_window_ns));
        Pusher {
            cfg,
            plugins: RwLock::new(Vec::new()),
            cache,
            out: Arc::new(out),
            stats: PusherStats::default(),
        }
    }

    /// Register a plugin (start enabled).  Returns its index.
    pub fn add_plugin(&self, plugin: Box<dyn Plugin>) -> usize {
        let groups = plugin.groups().len();
        let mut plugins = self.plugins.write();
        plugins.push(PluginSlot {
            plugin,
            enabled: AtomicBool::new(true),
            next_due: Mutex::new(vec![0; groups]),
            last_raw: Mutex::new(HashMap::new()),
        });
        plugins.len() - 1
    }

    /// Replace a plugin in place, keeping its position; the new plugin's
    /// schedule starts fresh (grid-aligned from 0).  Backs the REST
    /// `reload` endpoint: "one can modify a plugin's configuration file at
    /// runtime and trigger a reload of the configuration, which allows a
    /// seamless re-configuration without interrupting the Pusher"
    /// (paper §5.3).  Returns false when no plugin has that name.
    pub fn replace_plugin(&self, name: &str, plugin: Box<dyn Plugin>) -> bool {
        let mut plugins = self.plugins.write();
        for slot in plugins.iter_mut() {
            if slot.plugin.name() == name {
                let groups = plugin.groups().len();
                slot.plugin = plugin;
                *slot.next_due.lock() = vec![0; groups];
                slot.last_raw.lock().clear();
                slot.enabled.store(true, Ordering::SeqCst);
                return true;
            }
        }
        false
    }

    /// Names of registered plugins.
    pub fn plugin_names(&self) -> Vec<String> {
        self.plugins.read().iter().map(|s| s.plugin.name().to_string()).collect()
    }

    /// Total sensors across plugins.
    pub fn sensor_count(&self) -> usize {
        self.plugins.read().iter().map(|s| s.plugin.sensor_count()).sum()
    }

    /// Enable/disable a plugin by name (REST start/stop).  Returns whether
    /// the plugin exists.
    pub fn set_plugin_enabled(&self, name: &str, enabled: bool) -> bool {
        let plugins = self.plugins.read();
        for slot in plugins.iter() {
            if slot.plugin.name() == name {
                slot.enabled.store(enabled, Ordering::SeqCst);
                return true;
            }
        }
        false
    }

    /// Is the plugin currently sampling?
    pub fn plugin_enabled(&self, name: &str) -> Option<bool> {
        self.plugins
            .read()
            .iter()
            .find(|s| s.plugin.name() == name)
            .map(|s| s.enabled.load(Ordering::SeqCst))
    }

    /// The sensor cache (shared with the REST server).
    pub fn cache(&self) -> &Arc<SensorCache> {
        &self.cache
    }

    /// The output stage.
    pub fn out(&self) -> &Arc<MqttOut> {
        &self.out
    }

    /// Counters.
    pub fn stats(&self) -> &PusherStats {
        &self.stats
    }

    /// Pusher configuration.
    pub fn config(&self) -> &PusherConfig {
        &self.cfg
    }

    /// The earliest pending group deadline, or `None` without plugins.
    pub fn next_deadline(&self) -> Option<i64> {
        // Disabled plugins are included so their schedule keeps advancing
        // (skipped reads are counted and re-enabling resumes on-grid).
        let plugins = self.plugins.read();
        plugins.iter().flat_map(|s| s.next_due.lock().iter().copied().collect::<Vec<_>>()).min()
    }

    /// Sample every group due at or before `now_ns`; returns readings made.
    pub fn sample_due(&self, now_ns: i64) -> usize {
        let mut produced = 0usize;
        let plugins = self.plugins.read();
        for slot in plugins.iter() {
            if !slot.enabled.load(Ordering::Relaxed) {
                // keep the schedule moving so re-enabling resumes on-grid
                let mut due = slot.next_due.lock();
                for (g, d) in due.iter_mut().enumerate() {
                    let interval_ns = slot.plugin.groups()[g].interval_ms as i64 * 1_000_000;
                    while *d <= now_ns {
                        *d += interval_ns;
                        self.stats.skipped_disabled.fetch_add(1, Ordering::Relaxed);
                    }
                }
                continue;
            }
            let group_count = slot.plugin.groups().len();
            for g in 0..group_count {
                loop {
                    let due = {
                        let due = slot.next_due.lock();
                        due[g]
                    };
                    if due > now_ns {
                        break;
                    }
                    produced += self.read_one_group(slot, g, due);
                    let interval_ns = slot.plugin.groups()[g].interval_ms.max(1) as i64 * 1_000_000;
                    let mut nd = slot.next_due.lock();
                    nd[g] = due + interval_ns;
                }
            }
        }
        produced
    }

    fn read_one_group(&self, slot: &PluginSlot, g: usize, ts: i64) -> usize {
        self.stats.group_reads.fetch_add(1, Ordering::Relaxed);
        let raw = slot.plugin.read_group(g, ts);
        let group = &slot.plugin.groups()[g];
        let mut produced = 0usize;
        for (sensor_idx, raw_value) in raw {
            let Some(spec) = group.sensors.get(sensor_idx) else { continue };
            let value = if spec.delta {
                let mut last = slot.last_raw.lock();
                let prev = last.insert((g, sensor_idx), raw_value);
                match prev {
                    // first observation of a counter: no delta to publish yet
                    None => continue,
                    Some(prev) => (raw_value - prev) * spec.scale,
                }
            } else {
                raw_value * spec.scale
            };
            let topic = format!("{}{}", self.cfg.prefix, spec.mqtt_suffix);
            self.cache.insert(&topic, ts, value);
            self.out.push(&topic, ts, value);
            produced += 1;
        }
        self.stats.readings.fetch_add(produced as u64, Ordering::Relaxed);
        produced
    }

    /// Drive the scheduler in virtual time up to `until_ns`.
    ///
    /// Jumps from deadline to deadline (discrete-event style); returns total
    /// readings produced.
    pub fn run_virtual(&self, until_ns: i64) -> usize {
        let mut produced = 0usize;
        while let Some(next) = self.next_deadline() {
            if next > until_ns {
                break;
            }
            produced += self.sample_due(next);
        }
        self.out.flush();
        produced
    }

    /// Drive the scheduler against the wall clock for `duration`.
    ///
    /// Spawns no threads: sleeps until each deadline (adequate for the
    /// examples; the paper's two sampling threads matter only for very large
    /// in-band sensor counts).
    pub fn run_real(&self, duration: Duration) -> usize {
        let start = Instant::now();
        let mut produced = 0usize;
        // map wall time onto the virtual deadline axis at ns resolution
        while start.elapsed() < duration {
            let now_ns = start.elapsed().as_nanos() as i64;
            produced += self.sample_due(now_ns);
            let next = self.next_deadline().unwrap_or(now_ns + 1_000_000);
            let sleep_ns = (next - start.elapsed().as_nanos() as i64).max(0);
            let remaining = duration.saturating_sub(start.elapsed());
            std::thread::sleep(Duration::from_nanos(sleep_ns as u64).min(remaining));
        }
        self.out.flush();
        produced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mqtt_out::{MqttBackend, SendPolicy};
    use crate::plugin::{SensorGroup, SensorSpec};

    struct Counting {
        groups: Vec<SensorGroup>,
        counter: AtomicU64,
    }

    impl Plugin for Counting {
        fn name(&self) -> &str {
            "counting"
        }
        fn groups(&self) -> &[SensorGroup] {
            &self.groups
        }
        fn read_group(&self, group: usize, _now: i64) -> Vec<(usize, f64)> {
            let v = self.counter.fetch_add(1, Ordering::Relaxed) as f64;
            (0..self.groups[group].sensors.len()).map(|i| (i, v)).collect()
        }
    }

    fn counting_plugin(sensors: usize, interval_ms: u64, delta: bool) -> Box<Counting> {
        let mut g = SensorGroup::new("g", interval_ms);
        for i in 0..sensors {
            let spec = if delta {
                SensorSpec::counter(format!("s{i}"), format!("/s{i}"))
            } else {
                SensorSpec::gauge(format!("s{i}"), format!("/s{i}"))
            };
            g = g.sensor(spec);
        }
        Box::new(Counting { groups: vec![g], counter: AtomicU64::new(0) })
    }

    fn pusher() -> Pusher {
        Pusher::new(
            PusherConfig { prefix: "/test/node0".into(), ..Default::default() },
            MqttOut::new(MqttBackend::Null, SendPolicy::Continuous),
        )
    }

    #[test]
    fn samples_on_interval_grid() {
        let p = pusher();
        p.add_plugin(counting_plugin(3, 100, false));
        // run 1 virtual second: reads at 0, 100ms, ..., 1000ms = 11 rounds
        let produced = p.run_virtual(1_000_000_000);
        assert_eq!(produced, 11 * 3);
        assert_eq!(p.stats().group_reads.load(Ordering::Relaxed), 11);
        // cache saw the latest values
        assert!(p.cache().latest("/test/node0/s0").is_some());
    }

    #[test]
    fn multiple_plugins_interleave() {
        let p = pusher();
        p.add_plugin(counting_plugin(1, 100, false));
        p.add_plugin(counting_plugin(1, 250, false));
        p.run_virtual(1_000_000_000);
        // 11 reads of the fast group + 5 of the slow (0,250,500,750,1000)
        assert_eq!(p.stats().group_reads.load(Ordering::Relaxed), 11 + 5);
    }

    #[test]
    fn delta_sensors_publish_differences() {
        let p = pusher();
        p.add_plugin(counting_plugin(1, 1000, true));
        let produced = p.run_virtual(3_000_000_000);
        // counter increments by 1 each read; first read publishes nothing
        assert_eq!(produced, 3);
        let w = p.cache().window("/test/node0/s0");
        assert!(w.iter().all(|r| r.value == 1.0), "{w:?}");
    }

    #[test]
    fn stop_start_plugin() {
        let p = pusher();
        p.add_plugin(counting_plugin(1, 100, false));
        assert_eq!(p.plugin_enabled("counting"), Some(true));
        assert!(p.set_plugin_enabled("counting", false));
        let produced = p.run_virtual(1_000_000_000);
        assert_eq!(produced, 0);
        assert!(p.stats().skipped_disabled.load(Ordering::Relaxed) > 0);
        assert!(p.set_plugin_enabled("counting", true));
        assert!(!p.set_plugin_enabled("ghost", true));
        assert!(p.run_virtual(2_000_000_000) > 0);
    }

    #[test]
    fn readings_flow_to_output() {
        let counted = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counted);
        let out = MqttOut::new(
            MqttBackend::Callback(Arc::new(move |_t, _p| {
                c2.fetch_add(1, Ordering::Relaxed);
            })),
            SendPolicy::Continuous,
        );
        let p = Pusher::new(PusherConfig::default(), out);
        p.add_plugin(counting_plugin(5, 500, false));
        p.run_virtual(1_000_000_000);
        assert_eq!(counted.load(Ordering::Relaxed), 3 * 5);
    }

    #[test]
    fn run_real_produces_samples() {
        let p = pusher();
        p.add_plugin(counting_plugin(2, 20, false));
        let produced = p.run_real(Duration::from_millis(120));
        // ~6 rounds of 2 sensors; allow generous scheduling slack
        assert!(produced >= 6, "only {produced} readings");
    }

    #[test]
    fn sensor_count_aggregates() {
        let p = pusher();
        p.add_plugin(counting_plugin(7, 100, false));
        p.add_plugin(counting_plugin(3, 100, false));
        assert_eq!(p.sensor_count(), 10);
        assert_eq!(p.plugin_names(), vec!["counting".to_string(), "counting".to_string()]);
    }
}
