//! The REST plugin: scrapes JSON metric documents from RESTful APIs
//! (paper §3.1; used out-of-band in the Fig. 9 case study).  The document
//! format is `{"metrics": {...}, "timestamp": ...}` as produced by
//! [`dcdb_sim::devices::rest::RestSource`]; the plugin parses the JSON with
//! `dcdb-http`'s parser.

use std::sync::Arc;

use dcdb_http::json::Json;
use dcdb_sim::devices::rest::RestSource;

use crate::plugin::{Plugin, SensorGroup, SensorSpec};

/// The REST plugin.
pub struct RestPlugin {
    sources: Vec<(String, Arc<RestSource>)>,
    groups: Vec<SensorGroup>,
    /// Per group: (source index, metric names).
    layout: Vec<(usize, Vec<String>)>,
}

impl RestPlugin {
    /// Empty plugin.
    pub fn new() -> RestPlugin {
        RestPlugin { sources: Vec::new(), groups: Vec::new(), layout: Vec::new() }
    }

    /// Register an endpoint; sensors are discovered from the current
    /// document's metric names.
    pub fn add_endpoint(
        &mut self,
        name: impl Into<String>,
        source: Arc<RestSource>,
        interval_ms: u64,
    ) -> usize {
        let name = name.into();
        let entity = self.sources.len();
        let metrics = source.metric_names();
        let mut group = SensorGroup::new(format!("rest-{name}"), interval_ms).with_entity(entity);
        for m in &metrics {
            group = group.sensor(SensorSpec::gauge(m.clone(), format!("/{name}/{m}")));
        }
        self.groups.push(group);
        self.layout.push((entity, metrics.clone()));
        self.sources.push((name, source));
        metrics.len()
    }
}

impl Default for RestPlugin {
    fn default() -> Self {
        RestPlugin::new()
    }
}

impl Plugin for RestPlugin {
    fn name(&self) -> &str {
        "rest"
    }

    fn groups(&self) -> &[SensorGroup] {
        &self.groups
    }

    fn read_group(&self, group: usize, _now_ns: i64) -> Vec<(usize, f64)> {
        let (entity, metrics) = &self.layout[group];
        let source = &self.sources[*entity].1;
        // a real deployment GETs the endpoint; the simulator hands us the
        // same JSON document directly
        let Ok(doc) = Json::parse(&source.get_json()) else { return Vec::new() };
        let Some(obj) = doc.get("metrics") else { return Vec::new() };
        metrics
            .iter()
            .enumerate()
            .filter_map(|(i, m)| obj.get(m).and_then(Json::as_f64).map(|v| (i, v)))
            .collect()
    }

    fn entities(&self) -> Vec<String> {
        self.sources.iter().map(|(n, _)| n.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrapes_json_metrics() {
        let src = Arc::new(RestSource::new());
        src.set("power_kw", 20.5);
        src.set("inlet_c", 31.0);
        let mut plugin = RestPlugin::new();
        let n = plugin.add_endpoint("cooling", Arc::clone(&src), 10_000);
        assert_eq!(n, 2);
        let readings = plugin.read_group(0, 0);
        assert_eq!(readings.len(), 2);
        src.set("power_kw", 25.0);
        let readings = plugin.read_group(0, 0);
        let idx = plugin.groups()[0].sensors.iter().position(|s| s.name == "power_kw").unwrap();
        assert!(readings.iter().any(|&(i, v)| i == idx && v == 25.0));
    }

    #[test]
    fn empty_endpoint_produces_no_sensors() {
        let mut plugin = RestPlugin::new();
        assert_eq!(plugin.add_endpoint("empty", Arc::new(RestSource::new()), 1000), 0);
        assert!(plugin.read_group(0, 0).is_empty());
    }
}
