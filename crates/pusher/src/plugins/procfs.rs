//! The ProcFS plugin: samples `/proc/meminfo`, `/proc/vmstat` and
//! `/proc/stat` — the exact file set of the paper's production configuration
//! (§6.2.1).  Parses the genuine kernel text formats; the file source is
//! pluggable ([`dcdb_sim::devices::TextFileSource`]), so the same parser runs
//! against the simulator or the real `/proc`.

use std::sync::Arc;

use dcdb_sim::devices::TextFileSource;
use parking_lot::RwLock;

use crate::plugin::{Plugin, SensorGroup, SensorSpec};

/// Which /proc files to sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcFile {
    /// `/proc/meminfo`
    MemInfo,
    /// `/proc/vmstat`
    VmStat,
    /// `/proc/stat`
    Stat,
}

/// The ProcFS plugin.
pub struct ProcFsPlugin {
    source: Arc<dyn TextFileSource>,
    groups: Vec<SensorGroup>,
    /// Per group: the file and the metric keys backing each sensor.
    layouts: Vec<(ProcFile, Vec<String>)>,
    /// Cached key→value parse of the last read (one parse per group read).
    scratch: RwLock<Vec<(String, f64)>>,
}

impl ProcFsPlugin {
    /// Sample the standard production set (meminfo keys, vmstat counters and
    /// aggregate CPU jiffies) every `interval_ms`.
    pub fn standard(source: Arc<dyn TextFileSource>, interval_ms: u64) -> ProcFsPlugin {
        let meminfo_keys = ["MemTotal", "MemFree", "MemAvailable", "Cached"];
        let vmstat_keys = ["pgfault", "pswpin", "pgpgin"];
        let stat_keys = ["cpu_user", "cpu_system", "cpu_idle", "ctxt"];

        let mut groups = Vec::new();
        let mut layouts = Vec::new();

        let mut g = SensorGroup::new("meminfo", interval_ms);
        for k in meminfo_keys {
            g = g.sensor(SensorSpec::gauge(k, format!("/meminfo/{k}")).with_unit("kB"));
        }
        groups.push(g);
        layouts.push((ProcFile::MemInfo, meminfo_keys.iter().map(|s| s.to_string()).collect()));

        let mut g = SensorGroup::new("vmstat", interval_ms);
        for k in vmstat_keys {
            g = g.sensor(SensorSpec::counter(k, format!("/vmstat/{k}")));
        }
        groups.push(g);
        layouts.push((ProcFile::VmStat, vmstat_keys.iter().map(|s| s.to_string()).collect()));

        let mut g = SensorGroup::new("procstat", interval_ms);
        for k in stat_keys {
            g = g.sensor(SensorSpec::counter(k, format!("/procstat/{k}")));
        }
        groups.push(g);
        layouts.push((ProcFile::Stat, stat_keys.iter().map(|s| s.to_string()).collect()));

        ProcFsPlugin { source, groups, layouts, scratch: RwLock::new(Vec::new()) }
    }

    fn parse(&self, file: ProcFile) -> Vec<(String, f64)> {
        let path = match file {
            ProcFile::MemInfo => "/proc/meminfo",
            ProcFile::VmStat => "/proc/vmstat",
            ProcFile::Stat => "/proc/stat",
        };
        let Some(text) = self.source.read_file(path) else { return Vec::new() };
        match file {
            ProcFile::MemInfo => parse_meminfo(&text),
            ProcFile::VmStat => parse_vmstat(&text),
            ProcFile::Stat => parse_stat(&text),
        }
    }
}

/// Parse `Key:   12345 kB` lines.
pub fn parse_meminfo(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter_map(|line| {
            let (key, rest) = line.split_once(':')?;
            let value: f64 = rest.split_whitespace().next()?.parse().ok()?;
            Some((key.trim().to_string(), value))
        })
        .collect()
}

/// Parse `key value` lines.
pub fn parse_vmstat(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter_map(|line| {
            let mut parts = line.split_whitespace();
            let key = parts.next()?;
            let value: f64 = parts.next()?.parse().ok()?;
            Some((key.to_string(), value))
        })
        .collect()
}

/// Parse `/proc/stat`: the aggregate `cpu` line into user/system/idle
/// jiffies plus scalar counters (`ctxt`, `processes`).
pub fn parse_stat(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        let Some(key) = parts.next() else { continue };
        if key == "cpu" {
            let fields: Vec<f64> = parts.filter_map(|p| p.parse().ok()).collect();
            if fields.len() >= 4 {
                out.push(("cpu_user".to_string(), fields[0]));
                out.push(("cpu_system".to_string(), fields[2]));
                out.push(("cpu_idle".to_string(), fields[3]));
            }
        } else if matches!(key, "ctxt" | "processes" | "btime") {
            if let Some(v) = parts.next().and_then(|p| p.parse().ok()) {
                out.push((key.to_string(), v));
            }
        }
    }
    out
}

impl Plugin for ProcFsPlugin {
    fn name(&self) -> &str {
        "procfs"
    }

    fn groups(&self) -> &[SensorGroup] {
        &self.groups
    }

    fn read_group(&self, group: usize, _now_ns: i64) -> Vec<(usize, f64)> {
        let (file, keys) = &self.layouts[group];
        let parsed = self.parse(*file);
        {
            *self.scratch.write() = parsed.clone();
        }
        keys.iter()
            .enumerate()
            .filter_map(|(i, key)| parsed.iter().find(|(k, _)| k == key).map(|(_, v)| (i, *v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdb_sim::devices::procfs::SimProcFs;

    #[test]
    fn parses_real_kernel_formats() {
        let mi = parse_meminfo("MemTotal:       65536 kB\nMemFree:        1024 kB\nBroken line\n");
        assert_eq!(mi.len(), 2);
        assert_eq!(mi[0], ("MemTotal".to_string(), 65536.0));

        let vs = parse_vmstat("pgfault 777\nnr_free_pages 42\n");
        assert!(vs.contains(&("pgfault".to_string(), 777.0)));

        let st = parse_stat("cpu  10 0 20 30 0 0 0 0 0 0\ncpu0 1 0 2 3 0 0 0 0 0 0\nctxt 99\n");
        assert!(st.contains(&("cpu_user".to_string(), 10.0)));
        assert!(st.contains(&("cpu_idle".to_string(), 30.0)));
        assert!(st.contains(&("ctxt".to_string(), 99.0)));
    }

    #[test]
    fn reads_from_simulated_procfs() {
        let fs = Arc::new(SimProcFs::new(4, 64));
        fs.advance(5.0, 0.8);
        let plugin = ProcFsPlugin::standard(fs, 1000);
        assert_eq!(plugin.groups().len(), 3);
        let meminfo = plugin.read_group(0, 0);
        assert_eq!(meminfo.len(), 4, "all meminfo sensors read");
        // MemTotal is 64 GiB in kB
        assert_eq!(meminfo[0].1, 64.0 * 1024.0 * 1024.0);
        let stat = plugin.read_group(2, 0);
        assert!(!stat.is_empty());
    }

    #[test]
    fn missing_source_returns_empty() {
        struct Nothing;
        impl TextFileSource for Nothing {
            fn read_file(&self, _p: &str) -> Option<String> {
                None
            }
        }
        let plugin = ProcFsPlugin::standard(Arc::new(Nothing), 1000);
        assert!(plugin.read_group(0, 0).is_empty());
    }

    #[test]
    fn counters_marked_delta() {
        let fs = Arc::new(SimProcFs::new(1, 1));
        let plugin = ProcFsPlugin::standard(fs, 1000);
        // vmstat and procstat sensors are monotonic counters
        assert!(plugin.groups()[1].sensors.iter().all(|s| s.delta));
        assert!(plugin.groups()[2].sensors.iter().all(|s| s.delta));
        assert!(plugin.groups()[0].sensors.iter().all(|s| !s.delta));
    }
}
