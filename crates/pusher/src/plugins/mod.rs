//! The ten data-acquisition plugins shipped with DCDB (paper §3.1):
//! in-band application metrics ([`perfevents`]), server-side metrics
//! ([`procfs`], [`sysfs`]), I/O metrics ([`gpfs`], [`opa`]), out-of-band IT
//! sensors ([`ipmi`], [`snmp`]), RESTful APIs ([`rest`]), building management
//! ([`bacnet`]), and the synthetic [`tester`] used to isolate the Pusher
//! core's overhead in the evaluation (§6.2) — plus the [`gpu`] plugin the
//! paper names as future work (§9).
//!
//! Each plugin reads through the corresponding `dcdb-sim` device interface —
//! the procfs/sysfs plugins also accept [`dcdb_sim::devices::HostFs`] so the
//! examples can monitor the real machine.

pub mod bacnet;
pub mod gpfs;
pub mod gpu;
pub mod ipmi;
pub mod opa;
pub mod perfevents;
pub mod procfs;
pub mod rest;
pub mod snmp;
pub mod sysfs;
pub mod tester;

pub use bacnet::BacnetPlugin;
pub use gpfs::GpfsPlugin;
pub use gpu::GpuPlugin;
pub use ipmi::IpmiPlugin;
pub use opa::OpaPlugin;
pub use perfevents::PerfeventsPlugin;
pub use procfs::ProcFsPlugin;
pub use rest::RestPlugin;
pub use snmp::SnmpPlugin;
pub use sysfs::SysFsPlugin;
pub use tester::TesterPlugin;
