//! The tester plugin.
//!
//! Generates "an arbitrary number of sensors with negligible overhead",
//! isolating the cost of the Pusher core (sampling loop, cache, MQTT) from
//! the monitoring backends — the paper's `core` configurations in §6.2 use
//! exactly this.  Values are a deterministic ramp so tests can assert them.

use dcdb_config::Node;

use crate::plugin::{Plugin, PluginError, SensorGroup, SensorSpec};

/// The tester plugin.
pub struct TesterPlugin {
    groups: Vec<SensorGroup>,
}

impl TesterPlugin {
    /// `sensors` synthetic sensors sampled every `interval_ms`.
    pub fn new(sensors: usize, interval_ms: u64) -> TesterPlugin {
        let mut group = SensorGroup::new("tester", interval_ms);
        for i in 0..sensors {
            group = group.sensor(SensorSpec::gauge(format!("t{i}"), format!("/tester/t{i}")));
        }
        TesterPlugin { groups: vec![group] }
    }

    /// Configurator: reads `sensors` and `interval` from a config block:
    ///
    /// ```text
    /// plugin tester {
    ///     sensors  1000
    ///     interval 100
    /// }
    /// ```
    pub fn from_config(cfg: &Node) -> Result<TesterPlugin, PluginError> {
        let sensors =
            cfg.get_u64("sensors").map_err(|e| PluginError::Config(e.to_string()))? as usize;
        let interval = cfg.get_u64_or("interval", 1000);
        if sensors == 0 {
            return Err(PluginError::Config("tester needs at least one sensor".into()));
        }
        Ok(TesterPlugin::new(sensors, interval))
    }
}

impl Plugin for TesterPlugin {
    fn name(&self) -> &str {
        "tester"
    }

    fn groups(&self) -> &[SensorGroup] {
        &self.groups
    }

    fn read_group(&self, group: usize, now_ns: i64) -> Vec<(usize, f64)> {
        let n = self.groups[group].sensors.len();
        // deterministic ramp: value = seconds + sensor index / 1000
        let base = now_ns as f64 / 1e9;
        (0..n).map(|i| (i, base + i as f64 * 1e-3)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_sensor_count() {
        let p = TesterPlugin::new(500, 100);
        assert_eq!(p.sensor_count(), 500);
        assert_eq!(p.read_group(0, 2_000_000_000).len(), 500);
    }

    #[test]
    fn values_are_deterministic() {
        let p = TesterPlugin::new(3, 100);
        let a = p.read_group(0, 1_000_000_000);
        let b = p.read_group(0, 1_000_000_000);
        assert_eq!(a, b);
        assert_eq!(a[0].1, 1.0);
        assert!((a[2].1 - 1.002).abs() < 1e-12);
    }

    #[test]
    fn configurator_parses() {
        let cfg = dcdb_config::from_str("sensors 42\ninterval 250\n").unwrap();
        let p = TesterPlugin::from_config(&cfg).unwrap();
        assert_eq!(p.sensor_count(), 42);
        assert_eq!(p.groups()[0].interval_ms, 250);
    }

    #[test]
    fn configurator_rejects_bad_config() {
        let cfg = dcdb_config::from_str("interval 250\n").unwrap();
        assert!(TesterPlugin::from_config(&cfg).is_err());
        let cfg = dcdb_config::from_str("sensors 0\n").unwrap();
        assert!(TesterPlugin::from_config(&cfg).is_err());
    }
}
