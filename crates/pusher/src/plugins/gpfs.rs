//! The GPFS plugin: parallel-filesystem I/O metrics (paper §3.1).  All
//! counters are cumulative, so the sensors publish deltas.

use std::sync::Arc;

use dcdb_sim::devices::gpfs::GpfsClient;

use crate::plugin::{Plugin, SensorGroup, SensorSpec};

const FIELDS: [&str; 6] = ["bytes_read", "bytes_written", "opens", "closes", "reads", "writes"];

/// The GPFS plugin.
pub struct GpfsPlugin {
    client: Arc<GpfsClient>,
    groups: Vec<SensorGroup>,
}

impl GpfsPlugin {
    /// Sample the client's `mmpmon`-style counters every `interval_ms`.
    pub fn new(client: Arc<GpfsClient>, interval_ms: u64) -> GpfsPlugin {
        let mut group = SensorGroup::new("gpfs", interval_ms);
        for f in FIELDS {
            group = group.sensor(SensorSpec::counter(f, format!("/gpfs/{f}")));
        }
        GpfsPlugin { client, groups: vec![group] }
    }
}

impl Plugin for GpfsPlugin {
    fn name(&self) -> &str {
        "gpfs"
    }

    fn groups(&self) -> &[SensorGroup] {
        &self.groups
    }

    fn read_group(&self, _group: usize, _now_ns: i64) -> Vec<(usize, f64)> {
        let c = self.client.read_counters();
        vec![
            (0, c.bytes_read as f64),
            (1, c.bytes_written as f64),
            (2, c.opens as f64),
            (3, c.closes as f64),
            (4, c.reads as f64),
            (5, c.writes as f64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_delta_sensors() {
        let plugin = GpfsPlugin::new(Arc::new(GpfsClient::new()), 1000);
        assert_eq!(plugin.sensor_count(), 6);
        assert!(plugin.groups()[0].sensors.iter().all(|s| s.delta));
    }

    #[test]
    fn reads_follow_io() {
        let client = Arc::new(GpfsClient::new());
        let plugin = GpfsPlugin::new(Arc::clone(&client), 1000);
        client.advance(1.0, 500.0, 100.0);
        let r = plugin.read_group(0, 0);
        assert_eq!(r[0].1, 500e6);
        assert_eq!(r[1].1, 100e6);
    }
}
