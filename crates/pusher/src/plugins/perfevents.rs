//! The Perfevents plugin: per-hardware-thread CPU performance counters —
//! the paper's in-band application-metric source (§3.1), responsible for the
//! bulk of production sensors (Table 1) and the per-core instruction data of
//! the Fig. 10 case study.  Counters are monotonic, so sensors publish
//! per-interval deltas.

use std::sync::Arc;

use dcdb_sim::devices::perf::{CounterKind, PerfCounters};

use crate::plugin::{Plugin, SensorGroup, SensorSpec};

/// The Perfevents plugin.
pub struct PerfeventsPlugin {
    counters: Arc<PerfCounters>,
    groups: Vec<SensorGroup>,
    /// `(thread, kind)` per group, parallel to `groups`.
    layout: Vec<(usize, Vec<CounterKind>)>,
}

impl PerfeventsPlugin {
    /// Sample `kinds` on every hardware thread, one group per thread
    /// (cache-related counters of a core grouped together, paper §4.1).
    pub fn new(
        counters: Arc<PerfCounters>,
        kinds: &[CounterKind],
        interval_ms: u64,
    ) -> PerfeventsPlugin {
        let mut groups = Vec::new();
        let mut layout = Vec::new();
        for thread in 0..counters.hw_threads() {
            let mut g = SensorGroup::new(format!("cpu{thread}"), interval_ms);
            for kind in kinds {
                g = g.sensor(
                    SensorSpec::counter(kind.name(), format!("/cpu{thread}/{}", kind.name()))
                        .with_unit("events"),
                );
            }
            groups.push(g);
            layout.push((thread, kinds.to_vec()));
        }
        PerfeventsPlugin { counters, groups, layout }
    }

    /// The default production counter set.
    pub fn standard(counters: Arc<PerfCounters>, interval_ms: u64) -> PerfeventsPlugin {
        PerfeventsPlugin::new(counters, &CounterKind::ALL, interval_ms)
    }
}

impl Plugin for PerfeventsPlugin {
    fn name(&self) -> &str {
        "perfevents"
    }

    fn groups(&self) -> &[SensorGroup] {
        &self.groups
    }

    fn read_group(&self, group: usize, _now_ns: i64) -> Vec<(usize, f64)> {
        let (thread, kinds) = &self.layout[group];
        kinds
            .iter()
            .enumerate()
            .filter_map(|(i, kind)| self.counters.read(*thread, *kind).map(|v| (i, v as f64)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_group_per_thread() {
        let pc = Arc::new(PerfCounters::new(8, 2.0));
        let plugin = PerfeventsPlugin::standard(pc, 1000);
        assert_eq!(plugin.groups().len(), 8);
        assert_eq!(plugin.sensor_count(), 8 * 4);
    }

    #[test]
    fn reads_cumulative_counters() {
        let pc = Arc::new(PerfCounters::new(2, 1.0));
        pc.advance(1.0, 1e9);
        let plugin = PerfeventsPlugin::new(Arc::clone(&pc), &[CounterKind::Instructions], 1000);
        let r = plugin.read_group(0, 0);
        assert_eq!(r, vec![(0, 1e9)]);
        pc.advance(1.0, 1e9);
        assert_eq!(plugin.read_group(0, 0), vec![(0, 2e9)]);
    }

    #[test]
    fn sensors_are_delta_counters() {
        let pc = Arc::new(PerfCounters::new(1, 1.0));
        let plugin = PerfeventsPlugin::standard(pc, 100);
        assert!(plugin.groups()[0].sensors.iter().all(|s| s.delta));
    }
}
