//! The GPU plugin — the paper's future-work extension (§9): "we plan to
//! further extend DCDB and develop further plugins in order to support a
//! broader range of sensors and performance events, such as those deriving
//! from GPU usage".  Samples NVML-style metrics from each accelerator; one
//! group per device.

use std::sync::Arc;

use dcdb_sim::devices::gpu::GpuDevice;

use crate::plugin::{Plugin, SensorGroup, SensorSpec};

const METRICS: [(&str, &str); 5] = [
    ("utilization", "%"),
    ("memory_used", "MiB"),
    ("power", "W"),
    ("temperature", "C"),
    ("sm_clock", "MHz"),
];

/// The GPU plugin.
pub struct GpuPlugin {
    devices: Vec<Arc<GpuDevice>>,
    groups: Vec<SensorGroup>,
}

impl GpuPlugin {
    /// Monitor `devices` (one group per GPU) every `interval_ms`.
    pub fn new(devices: Vec<Arc<GpuDevice>>, interval_ms: u64) -> GpuPlugin {
        let groups = devices
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let mut g = SensorGroup::new(format!("gpu{i}"), interval_ms);
                for (name, unit) in METRICS {
                    g = g
                        .sensor(SensorSpec::gauge(name, format!("/gpu{i}/{name}")).with_unit(unit));
                }
                g
            })
            .collect();
        GpuPlugin { devices, groups }
    }
}

impl Plugin for GpuPlugin {
    fn name(&self) -> &str {
        "gpu"
    }

    fn groups(&self) -> &[SensorGroup] {
        &self.groups
    }

    fn read_group(&self, group: usize, _now_ns: i64) -> Vec<(usize, f64)> {
        let m = self.devices[group].read_metrics();
        vec![
            (0, m.utilization_percent),
            (1, m.memory_used_mib),
            (2, m.power_w),
            (3, m.temperature_c),
            (4, m.sm_clock_mhz),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_group_per_device() {
        let plugin =
            GpuPlugin::new(vec![Arc::new(GpuDevice::new()), Arc::new(GpuDevice::new())], 1000);
        assert_eq!(plugin.groups().len(), 2);
        assert_eq!(plugin.sensor_count(), 10);
        assert_eq!(plugin.groups()[1].sensors[2].unit.as_deref(), Some("W"));
    }

    #[test]
    fn reads_track_device_state() {
        let gpu = Arc::new(GpuDevice::new());
        let plugin = GpuPlugin::new(vec![Arc::clone(&gpu)], 1000);
        let idle = plugin.read_group(0, 0);
        assert_eq!(idle[0].1, 0.0);
        for _ in 0..60 {
            gpu.advance(1.0, 0.9);
        }
        let busy = plugin.read_group(0, 0);
        assert_eq!(busy[0].1, 90.0);
        assert!(busy[2].1 > idle[2].1, "power rose under load");
    }
}
