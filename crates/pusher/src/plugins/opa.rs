//! The Omni-Path (OPA) plugin: fabric port counters — the network metrics of
//! the SuperMUC-NG and CooLMUC-3 production configurations (paper §6.2.1).
//! Counters are cumulative; sensors publish deltas.

use std::sync::Arc;

use dcdb_sim::devices::opa::OpaPort;

use crate::plugin::{Plugin, SensorGroup, SensorSpec};

const FIELDS: [&str; 6] =
    ["xmit_data", "rcv_data", "xmit_pkts", "rcv_pkts", "link_error_recovery", "xmit_discards"];

/// The OPA plugin.
pub struct OpaPlugin {
    port: Arc<OpaPort>,
    groups: Vec<SensorGroup>,
}

impl OpaPlugin {
    /// Sample the HFI port counters every `interval_ms`.
    pub fn new(port: Arc<OpaPort>, interval_ms: u64) -> OpaPlugin {
        let mut group = SensorGroup::new("opa-port1", interval_ms);
        for f in FIELDS {
            group = group.sensor(SensorSpec::counter(f, format!("/opa/port1/{f}")));
        }
        OpaPlugin { port, groups: vec![group] }
    }
}

impl Plugin for OpaPlugin {
    fn name(&self) -> &str {
        "opa"
    }

    fn groups(&self) -> &[SensorGroup] {
        &self.groups
    }

    fn read_group(&self, _group: usize, _now_ns: i64) -> Vec<(usize, f64)> {
        let c = self.port.read_counters();
        vec![
            (0, c.xmit_data as f64),
            (1, c.rcv_data as f64),
            (2, c.xmit_pkts as f64),
            (3, c.rcv_pkts as f64),
            (4, c.link_error_recovery as f64),
            (5, c.xmit_discards as f64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_counters_per_port() {
        let plugin = OpaPlugin::new(Arc::new(OpaPort::new()), 1000);
        assert_eq!(plugin.sensor_count(), 6);
        assert!(plugin.groups()[0].sensors.iter().all(|s| s.delta));
    }

    #[test]
    fn traffic_visible_in_reads() {
        let port = Arc::new(OpaPort::new());
        let plugin = OpaPlugin::new(Arc::clone(&port), 1000);
        port.advance(1.0, 80.0, 40.0, 2048.0);
        let r = plugin.read_group(0, 0);
        assert!(r[0].1 > 0.0 && r[1].1 > 0.0);
        assert!(r[0].1 > r[1].1);
    }
}
