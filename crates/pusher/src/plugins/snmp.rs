//! The SNMP plugin: out-of-band facility sensors (PDUs, cooling loop)
//! queried by OID (paper §3.1; the Fig. 9 case study collects part of the
//! cooling data via SNMP).  An entity per agent holds the "connection".

use std::sync::Arc;

use dcdb_sim::devices::snmp::SnmpAgent;

use crate::plugin::{Plugin, SensorGroup, SensorSpec};

/// The SNMP plugin.
pub struct SnmpPlugin {
    agents: Vec<(String, Arc<SnmpAgent>)>,
    groups: Vec<SensorGroup>,
    /// Per group: (agent index, OIDs per sensor).
    layout: Vec<(usize, Vec<String>)>,
}

impl SnmpPlugin {
    /// Empty plugin; add agents with [`Self::add_walk`].
    pub fn new() -> SnmpPlugin {
        SnmpPlugin { agents: Vec::new(), groups: Vec::new(), layout: Vec::new() }
    }

    /// Walk `prefix` on `agent` and create one sensor per discovered OID
    /// (like configuring from an `snmpwalk`).
    pub fn add_walk(
        &mut self,
        host: impl Into<String>,
        agent: Arc<SnmpAgent>,
        prefix: &str,
        interval_ms: u64,
    ) -> usize {
        let host = host.into();
        let entity = self.agents.len();
        let rows = agent.walk(prefix);
        let mut group = SensorGroup::new(format!("snmp-{host}"), interval_ms).with_entity(entity);
        let mut oids = Vec::new();
        for (oid, _) in &rows {
            let slug = oid.replace('.', "_");
            group = group.sensor(SensorSpec::gauge(slug.clone(), format!("/{host}/snmp/{slug}")));
            oids.push(oid.clone());
        }
        self.groups.push(group);
        self.layout.push((entity, oids));
        self.agents.push((host, agent));
        rows.len()
    }
}

impl Default for SnmpPlugin {
    fn default() -> Self {
        SnmpPlugin::new()
    }
}

impl Plugin for SnmpPlugin {
    fn name(&self) -> &str {
        "snmp"
    }

    fn groups(&self) -> &[SensorGroup] {
        &self.groups
    }

    fn read_group(&self, group: usize, _now_ns: i64) -> Vec<(usize, f64)> {
        let (entity, oids) = &self.layout[group];
        let agent = &self.agents[*entity].1;
        oids.iter().enumerate().filter_map(|(i, oid)| agent.get(oid).map(|v| (i, v))).collect()
    }

    fn entities(&self) -> Vec<String> {
        self.agents.iter().map(|(h, _)| h.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_discovers_outlets() {
        let agent = Arc::new(SnmpAgent::pdu(6));
        let mut plugin = SnmpPlugin::new();
        let found = plugin.add_walk("pdu-r01", agent, "1.3.6.1.4.1.318", 10_000);
        assert_eq!(found, 6);
        assert_eq!(plugin.sensor_count(), 6);
        let readings = plugin.read_group(0, 0);
        assert_eq!(readings.len(), 6);
    }

    #[test]
    fn values_follow_agent_updates() {
        let agent = Arc::new(SnmpAgent::new());
        agent.set("1.1.1", 100.0);
        let mut plugin = SnmpPlugin::new();
        plugin.add_walk("cool", Arc::clone(&agent), "1.1", 1000);
        assert_eq!(plugin.read_group(0, 0), vec![(0, 100.0)]);
        agent.set("1.1.1", 250.0);
        assert_eq!(plugin.read_group(0, 0), vec![(0, 250.0)]);
    }

    #[test]
    fn multiple_agents_multiple_groups() {
        let mut plugin = SnmpPlugin::new();
        plugin.add_walk("a", Arc::new(SnmpAgent::pdu(2)), "1.3", 1000);
        plugin.add_walk("b", Arc::new(SnmpAgent::pdu(3)), "1.3", 1000);
        assert_eq!(plugin.groups().len(), 2);
        assert_eq!(plugin.entities(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(plugin.sensor_count(), 5);
    }
}
