//! The IPMI plugin: out-of-band node telemetry through the BMC (paper §3.1).
//! Uses an *entity* per BMC host — the connection shared by all groups
//! reading from that host (paper §4.1's example of the entity level).

use std::sync::Arc;

use dcdb_sim::devices::ipmi::IpmiBmc;

use crate::plugin::{Plugin, SensorGroup, SensorSpec};

/// One monitored BMC (entity) and its sensor numbers.
struct BmcEntity {
    hostname: String,
    bmc: Arc<IpmiBmc>,
}

/// The IPMI plugin.
pub struct IpmiPlugin {
    entities: Vec<BmcEntity>,
    groups: Vec<SensorGroup>,
    /// Per group: (entity index, IPMI sensor numbers).
    layout: Vec<(usize, Vec<u8>)>,
}

impl IpmiPlugin {
    /// Build a plugin from `(hostname, bmc)` pairs, auto-discovering the
    /// sensor repository of each BMC (one group per host).
    pub fn discover(hosts: Vec<(String, Arc<IpmiBmc>)>, interval_ms: u64) -> IpmiPlugin {
        let mut entities = Vec::new();
        let mut groups = Vec::new();
        let mut layout = Vec::new();
        for (hostname, bmc) in hosts {
            let sdr = bmc.sdr();
            let mut group = SensorGroup::new(format!("ipmi-{hostname}"), interval_ms)
                .with_entity(entities.len());
            let mut numbers = Vec::new();
            for rec in &sdr {
                let slug = rec.name.to_lowercase().replace(' ', "_");
                group = group.sensor(
                    SensorSpec::gauge(slug.clone(), format!("/{hostname}/ipmi/{slug}"))
                        .with_unit(rec.unit),
                );
                numbers.push(rec.number);
            }
            groups.push(group);
            layout.push((entities.len(), numbers));
            entities.push(BmcEntity { hostname, bmc });
        }
        IpmiPlugin { entities, groups, layout }
    }
}

impl Plugin for IpmiPlugin {
    fn name(&self) -> &str {
        "ipmi"
    }

    fn groups(&self) -> &[SensorGroup] {
        &self.groups
    }

    fn read_group(&self, group: usize, _now_ns: i64) -> Vec<(usize, f64)> {
        let (entity, numbers) = &self.layout[group];
        let bmc = &self.entities[*entity].bmc;
        numbers
            .iter()
            .enumerate()
            .filter_map(|(i, n)| bmc.get_sensor_reading(*n).map(|v| (i, v)))
            .collect()
    }

    fn entities(&self) -> Vec<String> {
        self.entities.iter().map(|e| e.hostname.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovers_sdr_per_host() {
        let plugin = IpmiPlugin::discover(
            vec![
                ("node01".into(), Arc::new(IpmiBmc::new())),
                ("node02".into(), Arc::new(IpmiBmc::new())),
            ],
            5000,
        );
        assert_eq!(plugin.groups().len(), 2);
        assert_eq!(plugin.entities(), vec!["node01".to_string(), "node02".to_string()]);
        assert_eq!(plugin.groups()[0].entity, Some(0));
        assert_eq!(plugin.groups()[1].entity, Some(1));
        assert!(plugin.sensor_count() >= 10);
    }

    #[test]
    fn reads_track_bmc_state() {
        let bmc = Arc::new(IpmiBmc::new());
        let plugin = IpmiPlugin::discover(vec![("n".into(), Arc::clone(&bmc))], 1000);
        bmc.advance(500.0, 1.0);
        let readings = plugin.read_group(0, 0);
        assert_eq!(readings.len(), bmc.sdr().len());
        // power sensors 0 and 1 sum to the node power
        let total: f64 = readings[0].1 + readings[1].1;
        assert!((total - 500.0).abs() < 1.0);
    }

    #[test]
    fn topics_carry_hostname() {
        let plugin = IpmiPlugin::discover(vec![("mgmt07".into(), Arc::new(IpmiBmc::new()))], 1000);
        assert!(plugin.groups()[0].sensors[0].mqtt_suffix.starts_with("/mgmt07/ipmi/"));
    }
}
