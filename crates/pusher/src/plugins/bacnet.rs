//! The BACnet plugin: building-management data (chillers, pumps, air
//! handlers) through the BACnet object model (paper §3.1).

use std::sync::Arc;

use dcdb_sim::devices::bacnet::{BacnetDevice, ObjectId};

use crate::plugin::{Plugin, SensorGroup, SensorSpec};

/// The BACnet plugin.
pub struct BacnetPlugin {
    devices: Vec<(String, Arc<BacnetDevice>)>,
    groups: Vec<SensorGroup>,
    /// Per group: (device index, object ids).
    layout: Vec<(usize, Vec<ObjectId>)>,
}

impl BacnetPlugin {
    /// Empty plugin.
    pub fn new() -> BacnetPlugin {
        BacnetPlugin { devices: Vec::new(), groups: Vec::new(), layout: Vec::new() }
    }

    /// Register a controller, discovering its objects (Who-Is).
    pub fn add_device(
        &mut self,
        name: impl Into<String>,
        device: Arc<BacnetDevice>,
        interval_ms: u64,
    ) -> usize {
        let name = name.into();
        let entity = self.devices.len();
        let objects = device.discover();
        let mut group = SensorGroup::new(format!("bacnet-{name}"), interval_ms).with_entity(entity);
        let mut ids = Vec::new();
        for (id, obj_name) in &objects {
            let slug = obj_name.to_lowercase().replace([' ', '-'], "_");
            group = group.sensor(SensorSpec::gauge(slug.clone(), format!("/{name}/{slug}")));
            ids.push(*id);
        }
        self.groups.push(group);
        self.layout.push((entity, ids));
        self.devices.push((name, device));
        objects.len()
    }
}

impl Default for BacnetPlugin {
    fn default() -> Self {
        BacnetPlugin::new()
    }
}

impl Plugin for BacnetPlugin {
    fn name(&self) -> &str {
        "bacnet"
    }

    fn groups(&self) -> &[SensorGroup] {
        &self.groups
    }

    fn read_group(&self, group: usize, _now_ns: i64) -> Vec<(usize, f64)> {
        let (entity, ids) = &self.layout[group];
        let dev = &self.devices[*entity].1;
        ids.iter()
            .enumerate()
            .filter_map(|(i, id)| dev.read_present_value(*id).map(|v| (i, v)))
            .collect()
    }

    fn entities(&self) -> Vec<String> {
        self.devices.iter().map(|(n, _)| n.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdb_sim::devices::bacnet::ObjectType;

    #[test]
    fn discovers_chiller_plant() {
        let dev = Arc::new(BacnetDevice::chiller_plant());
        let mut plugin = BacnetPlugin::new();
        let n = plugin.add_device("bms1", Arc::clone(&dev), 30_000);
        assert_eq!(n, 6);
        assert_eq!(plugin.read_group(0, 0).len(), 6);
        assert!(plugin.groups()[0].sensors.iter().any(|s| s.name.contains("chw_supply")));
    }

    #[test]
    fn tracks_present_value_updates() {
        let dev = Arc::new(BacnetDevice::chiller_plant());
        let mut plugin = BacnetPlugin::new();
        plugin.add_device("bms", Arc::clone(&dev), 1000);
        dev.write_present_value((ObjectType::AnalogInput, 4), 123.0);
        let readings = plugin.read_group(0, 0);
        assert!(readings.iter().any(|&(_, v)| v == 123.0));
    }
}
