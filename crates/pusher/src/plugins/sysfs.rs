//! The SysFS plugin: samples sysfs value files (hwmon temperatures, RAPL
//! energy counters) — "various temperature and energy sensors" in the
//! production configurations (paper §6.2.1).  Each sysfs file holds one
//! integer; energy counters are published as deltas.

use std::sync::Arc;

use dcdb_sim::devices::TextFileSource;

use crate::plugin::{Plugin, SensorGroup, SensorSpec};

/// The SysFS plugin.
pub struct SysFsPlugin {
    source: Arc<dyn TextFileSource>,
    groups: Vec<SensorGroup>,
    /// Paths backing each sensor of the single group.
    paths: Vec<String>,
}

impl SysFsPlugin {
    /// Sample the given `(path, sensor name)` pairs every `interval_ms`.
    /// Energy counters (paths containing `energy`) are delta sensors scaled
    /// to joules; temperatures (paths containing `temp`) are scaled from
    /// millidegrees to °C.
    pub fn new(
        source: Arc<dyn TextFileSource>,
        files: &[(String, String)],
        interval_ms: u64,
    ) -> SysFsPlugin {
        let mut group = SensorGroup::new("sysfs", interval_ms);
        let mut paths = Vec::new();
        for (path, name) in files {
            let spec = if path.contains("energy") {
                SensorSpec::counter(name.clone(), format!("/sysfs/{name}"))
                    .with_unit("J")
                    .with_scale(1e-6)
            } else if path.contains("temp") {
                SensorSpec::gauge(name.clone(), format!("/sysfs/{name}"))
                    .with_unit("C")
                    .with_scale(1e-3)
            } else {
                SensorSpec::gauge(name.clone(), format!("/sysfs/{name}"))
            };
            group = group.sensor(spec);
            paths.push(path.clone());
        }
        SysFsPlugin { source, groups: vec![group], paths }
    }

    /// Standard set for a simulated node: all paths its sysfs exposes.
    pub fn for_sim_node(
        source: Arc<dcdb_sim::devices::sysfs::SimSysFs>,
        interval_ms: u64,
    ) -> SysFsPlugin {
        let files: Vec<(String, String)> = source
            .paths()
            .into_iter()
            .map(|p| {
                let name = p.rsplit('/').take(2).collect::<Vec<_>>().join("_");
                (p, name)
            })
            .collect();
        SysFsPlugin::new(source, &files, interval_ms)
    }
}

impl Plugin for SysFsPlugin {
    fn name(&self) -> &str {
        "sysfs"
    }

    fn groups(&self) -> &[SensorGroup] {
        &self.groups
    }

    fn read_group(&self, _group: usize, _now_ns: i64) -> Vec<(usize, f64)> {
        self.paths
            .iter()
            .enumerate()
            .filter_map(|(i, path)| {
                let text = self.source.read_file(path)?;
                let value: f64 = text.trim().parse().ok()?;
                Some((i, value))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdb_sim::devices::sysfs::SimSysFs;

    #[test]
    fn reads_all_sim_paths() {
        let fs = Arc::new(SimSysFs::new(2, 4));
        fs.advance(10.0, 300.0, 0.7);
        let plugin = SysFsPlugin::for_sim_node(fs, 1000);
        assert_eq!(plugin.sensor_count(), 6);
        let readings = plugin.read_group(0, 0);
        assert_eq!(readings.len(), 6);
    }

    #[test]
    fn scaling_and_delta_semantics() {
        let fs = Arc::new(SimSysFs::new(1, 1));
        let plugin = SysFsPlugin::for_sim_node(fs, 1000);
        let specs = &plugin.groups()[0].sensors;
        let temp = specs.iter().find(|s| s.name.contains("temp")).unwrap();
        assert_eq!(temp.scale, 1e-3);
        assert!(!temp.delta);
        let energy = specs.iter().find(|s| s.name.contains("energy")).unwrap();
        assert_eq!(energy.scale, 1e-6);
        assert!(energy.delta);
    }

    #[test]
    fn tolerates_unreadable_files() {
        let fs = Arc::new(SimSysFs::new(1, 1));
        let files = vec![
            ("/sys/class/hwmon/hwmon0/temp1_input".to_string(), "t1".to_string()),
            ("/sys/missing".to_string(), "gone".to_string()),
        ];
        let plugin = SysFsPlugin::new(fs, &files, 1000);
        let readings = plugin.read_group(0, 0);
        assert_eq!(readings.len(), 1);
        assert_eq!(readings[0].0, 0);
    }
}
