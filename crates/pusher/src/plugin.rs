//! The plugin interface: Sensors, Groups, Entities, Configurators.
//!
//! DCDB plugins consist of up to four logical components (paper §4.1):
//!
//! * **Sensor** — the most basic unit, a single indivisible data source
//!   sampled as a numerical time series,
//! * **Group** — multiple sensors sharing one sampling interval, always read
//!   collectively at the same point in time (logically-related sensors such
//!   as all cache counters of a core),
//! * **Entity** — an optional level that aggregates groups needing a shared
//!   resource (e.g. the connection to one remote host),
//! * **Configurator** — reads the plugin's configuration file and
//!   instantiates the components.

use std::fmt;

/// Declarative description of one sensor inside a group.
#[derive(Debug, Clone)]
pub struct SensorSpec {
    /// Short name (unique within the group).
    pub name: String,
    /// Topic suffix appended to the Pusher's prefix (e.g. `/cpu0/instr`).
    pub mqtt_suffix: String,
    /// Unit string stored as sensor metadata (e.g. `W`, `C`, `instr`).
    pub unit: Option<String>,
    /// Multiplied into every raw value.
    pub scale: f64,
    /// Monotonic-counter semantics: publish per-interval deltas instead of
    /// raw values (perf counters, energy meters).
    pub delta: bool,
}

impl SensorSpec {
    /// A plain gauge sensor.
    pub fn gauge(name: impl Into<String>, suffix: impl Into<String>) -> SensorSpec {
        SensorSpec {
            name: name.into(),
            mqtt_suffix: suffix.into(),
            unit: None,
            scale: 1.0,
            delta: false,
        }
    }

    /// A monotonic counter sensor (delta on publish).
    pub fn counter(name: impl Into<String>, suffix: impl Into<String>) -> SensorSpec {
        SensorSpec { delta: true, ..SensorSpec::gauge(name, suffix) }
    }

    /// Attach a unit.
    pub fn with_unit(mut self, unit: impl Into<String>) -> SensorSpec {
        self.unit = Some(unit.into());
        self
    }

    /// Attach a scaling factor.
    pub fn with_scale(mut self, scale: f64) -> SensorSpec {
        self.scale = scale;
        self
    }
}

/// A group of sensors sharing a sampling interval.
#[derive(Debug, Clone)]
pub struct SensorGroup {
    /// Group name.
    pub name: String,
    /// Sampling interval in milliseconds.
    pub interval_ms: u64,
    /// Sensors read collectively.
    pub sensors: Vec<SensorSpec>,
    /// Entity this group communicates through, if any (index into the
    /// plugin's entity table).
    pub entity: Option<usize>,
}

impl SensorGroup {
    /// A group with the given interval.
    pub fn new(name: impl Into<String>, interval_ms: u64) -> SensorGroup {
        SensorGroup { name: name.into(), interval_ms, sensors: Vec::new(), entity: None }
    }

    /// Builder: add a sensor.
    pub fn sensor(mut self, spec: SensorSpec) -> SensorGroup {
        self.sensors.push(spec);
        self
    }

    /// Builder: attach to an entity.
    pub fn with_entity(mut self, entity: usize) -> SensorGroup {
        self.entity = Some(entity);
        self
    }
}

/// Plugin-level failures.
#[derive(Debug, Clone)]
pub enum PluginError {
    /// Configuration was invalid.
    Config(String),
    /// The data source is unreachable or returned garbage.
    Source(String),
}

impl fmt::Display for PluginError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PluginError::Config(m) => write!(f, "plugin config error: {m}"),
            PluginError::Source(m) => write!(f, "plugin source error: {m}"),
        }
    }
}

impl std::error::Error for PluginError {}

/// A data-acquisition plugin.
///
/// Implementations declare their groups once (topology is fixed between
/// reconfigurations) and produce raw values on demand.  Scaling, delta
/// computation, caching and publishing are handled by the framework — the
/// plugin only reads its source.
pub trait Plugin: Send + Sync {
    /// Plugin name (`procfs`, `perfevents`, ...).
    fn name(&self) -> &str;

    /// The sensor groups this plugin samples.
    fn groups(&self) -> &[SensorGroup];

    /// Read all sensors of `group` at time `now_ns`.
    ///
    /// Returns `(sensor index, raw value)` pairs; sensors that could not be
    /// read are simply absent (DCDB tolerates partial reads).
    fn read_group(&self, group: usize, now_ns: i64) -> Vec<(usize, f64)>;

    /// Entity names, if the plugin uses entities (informational).
    fn entities(&self) -> Vec<String> {
        Vec::new()
    }

    /// Total number of sensors across groups.
    fn sensor_count(&self) -> usize {
        self.groups().iter().map(|g| g.sensors.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake {
        groups: Vec<SensorGroup>,
    }

    impl Plugin for Fake {
        fn name(&self) -> &str {
            "fake"
        }
        fn groups(&self) -> &[SensorGroup] {
            &self.groups
        }
        fn read_group(&self, group: usize, _now_ns: i64) -> Vec<(usize, f64)> {
            (0..self.groups[group].sensors.len()).map(|i| (i, i as f64)).collect()
        }
    }

    #[test]
    fn spec_builders() {
        let s = SensorSpec::counter("instr", "/cpu0/instr").with_unit("instr").with_scale(2.0);
        assert!(s.delta);
        assert_eq!(s.scale, 2.0);
        assert_eq!(s.unit.as_deref(), Some("instr"));
        let g = SensorGroup::new("cpu", 1000).sensor(s).with_entity(0);
        assert_eq!(g.sensors.len(), 1);
        assert_eq!(g.entity, Some(0));
    }

    #[test]
    fn sensor_count_sums_groups() {
        let p = Fake {
            groups: vec![
                SensorGroup::new("a", 100)
                    .sensor(SensorSpec::gauge("x", "/x"))
                    .sensor(SensorSpec::gauge("y", "/y")),
                SensorGroup::new("b", 200).sensor(SensorSpec::gauge("z", "/z")),
            ],
        };
        assert_eq!(p.sensor_count(), 3);
        assert_eq!(p.read_group(0, 0).len(), 2);
        assert!(p.entities().is_empty());
    }
}
