//! The Pusher's MQTT output stage.
//!
//! Readings are published per sensor topic.  Two send policies reproduce the
//! paper's study (§6.2.1): *continuous* publishes each reading as sampled;
//! *burst* accumulates readings and flushes them at a fixed cadence (the
//! paper found AMG performed best with bursts twice per minute because the
//! reduced duty cycle interferes less with its small-message MPI traffic).
//!
//! The output backend is pluggable: a real TCP MQTT client, the in-process
//! bus (simulation), or a plain callback (tests).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use dcdb_mqtt::client::Client;
use dcdb_mqtt::codec::QoS;
use dcdb_mqtt::inproc::InprocBus;
use dcdb_mqtt::payload::{encode_readings, encode_readings_compressed, RECORD_SIZE};
use parking_lot::Mutex;

/// When to ship accumulated readings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendPolicy {
    /// Publish every reading immediately.
    Continuous,
    /// Accumulate and flush every `interval_ns` (e.g. 30 s for the paper's
    /// twice-per-minute bursts).
    Burst {
        /// Nanoseconds between flushes.
        interval_ns: i64,
    },
}

/// Payload compression for pusher → collect-agent publishes.
///
/// Compression is negotiated per topic by construction: each publish
/// carries one topic's batch, and batches of at least `min_batch` readings
/// are sent as `dcdb-compress` Gorilla payloads (self-describing via the
/// payload magic, so the Collect Agent detects the encoding per topic).
/// Smaller batches — e.g. continuous single readings — stay fixed-width,
/// where the compressed framing overhead would not pay off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compression {
    /// Always publish fixed-width payloads.
    Off,
    /// Compress batches of at least `min_batch` readings.
    Batches {
        /// Minimum readings in a batch before compression is applied.
        min_batch: usize,
    },
}

impl Compression {
    /// Compress every batch of ≥ 2 readings (the usual burst setting).
    pub fn bursts() -> Compression {
        Compression::Batches { min_batch: 2 }
    }
}

/// Raw publish callback: `(topic, payload)`.
pub type RawPublishCallback = Arc<dyn Fn(&str, &Bytes) + Send + Sync>;

/// Where publishes go.
pub enum MqttBackend {
    /// A real MQTT connection.
    Tcp(Arc<Client>),
    /// The in-process bus used by the simulation harness.
    Inproc(Arc<InprocBus>),
    /// A raw callback `(topic, payload)` for tests.
    Callback(RawPublishCallback),
    /// Discard (pure overhead experiments).
    Null,
}

/// Output-stage statistics.
#[derive(Debug, Default)]
pub struct OutStats {
    /// MQTT messages published.
    pub messages: AtomicU64,
    /// Readings shipped (≥ messages under bursting).
    pub readings: AtomicU64,
    /// Flush rounds executed.
    pub flushes: AtomicU64,
    /// Messages published with the compressed payload encoding.
    pub compressed_messages: AtomicU64,
    /// Payload bytes actually published.
    pub payload_bytes: AtomicU64,
    /// Payload bytes the same readings would cost fixed-width.
    pub fixed_width_bytes: AtomicU64,
}

/// The buffering publisher.
pub struct MqttOut {
    backend: MqttBackend,
    policy: SendPolicy,
    compression: Compression,
    qos: QoS,
    queue: Mutex<HashMap<String, Vec<(i64, f64)>>>,
    next_flush_ns: Mutex<i64>,
    stats: OutStats,
}

impl MqttOut {
    /// Create an output stage publishing fixed-width payloads.
    pub fn new(backend: MqttBackend, policy: SendPolicy) -> MqttOut {
        MqttOut::with_compression(backend, policy, Compression::Off)
    }

    /// Create an output stage with a payload [`Compression`] setting.
    pub fn with_compression(
        backend: MqttBackend,
        policy: SendPolicy,
        compression: Compression,
    ) -> MqttOut {
        MqttOut {
            backend,
            policy,
            compression,
            qos: QoS::AtMostOnce,
            queue: Mutex::new(HashMap::new()),
            next_flush_ns: Mutex::new(0),
            stats: OutStats::default(),
        }
    }

    /// Queue a reading and flush according to policy.
    pub fn push(&self, topic: &str, ts: i64, value: f64) {
        match self.policy {
            SendPolicy::Continuous => {
                self.publish(topic, &[(ts, value)]);
            }
            SendPolicy::Burst { interval_ns } => {
                {
                    let mut q = self.queue.lock();
                    q.entry(topic.to_string()).or_default().push((ts, value));
                }
                let mut next = self.next_flush_ns.lock();
                if *next == 0 {
                    *next = ts + interval_ns;
                } else if ts >= *next {
                    *next = ts + interval_ns;
                    drop(next);
                    self.flush();
                }
            }
        }
    }

    /// Flush all queued readings (also called on shutdown).
    pub fn flush(&self) {
        let drained: Vec<(String, Vec<(i64, f64)>)> = {
            let mut q = self.queue.lock();
            q.drain().collect()
        };
        if drained.is_empty() {
            return;
        }
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        for (topic, readings) in drained {
            self.publish(&topic, &readings);
        }
    }

    fn publish(&self, topic: &str, readings: &[(i64, f64)]) {
        let payload = match self.compression {
            Compression::Batches { min_batch } if readings.len() >= min_batch => {
                self.stats.compressed_messages.fetch_add(1, Ordering::Relaxed);
                encode_readings_compressed(readings)
            }
            _ => encode_readings(readings),
        };
        self.stats.payload_bytes.fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.stats
            .fixed_width_bytes
            .fetch_add((readings.len() * RECORD_SIZE) as u64, Ordering::Relaxed);
        match &self.backend {
            MqttBackend::Tcp(client) => {
                let _ = client.publish_qos0(topic, &payload);
            }
            MqttBackend::Inproc(bus) => bus.publish(topic, &payload, self.qos),
            MqttBackend::Callback(cb) => cb(topic, &payload),
            MqttBackend::Null => {}
        }
        self.stats.messages.fetch_add(1, Ordering::Relaxed);
        self.stats.readings.fetch_add(readings.len() as u64, Ordering::Relaxed);
    }

    /// Output statistics.
    pub fn stats(&self) -> &OutStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdb_mqtt::payload::decode_readings;
    use parking_lot::Mutex as PMutex;

    type CaptureLog = Arc<PMutex<Vec<(String, Vec<(i64, f64)>)>>>;

    fn capture() -> (MqttBackend, CaptureLog) {
        let log = Arc::new(PMutex::new(Vec::new()));
        let l2 = Arc::clone(&log);
        let backend = MqttBackend::Callback(Arc::new(move |topic: &str, payload: &Bytes| {
            l2.lock().push((topic.to_string(), decode_readings(payload).unwrap()));
        }));
        (backend, log)
    }

    #[test]
    fn continuous_publishes_immediately() {
        let (backend, log) = capture();
        let out = MqttOut::new(backend, SendPolicy::Continuous);
        out.push("/a", 1, 1.0);
        out.push("/a", 2, 2.0);
        assert_eq!(log.lock().len(), 2);
        assert_eq!(out.stats().messages.load(Ordering::Relaxed), 2);
        assert_eq!(out.stats().readings.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn burst_accumulates_until_interval() {
        let (backend, log) = capture();
        let out = MqttOut::new(backend, SendPolicy::Burst { interval_ns: 100 });
        out.push("/a", 0, 1.0); // sets next flush to 100
        out.push("/a", 50, 2.0);
        out.push("/b", 60, 3.0);
        assert!(log.lock().is_empty(), "nothing flushed before interval");
        out.push("/a", 120, 4.0); // crosses flush boundary
        let entries = log.lock();
        let total: usize = entries.iter().map(|(_, r)| r.len()).sum();
        assert_eq!(total, 4);
        // one message per topic, batching multiple readings
        let a = entries.iter().find(|(t, _)| t == "/a").unwrap();
        assert_eq!(a.1.len(), 3);
    }

    #[test]
    fn explicit_flush_drains() {
        let (backend, log) = capture();
        let out = MqttOut::new(backend, SendPolicy::Burst { interval_ns: 1_000_000 });
        out.push("/x", 1, 1.0);
        assert!(log.lock().is_empty());
        out.flush();
        assert_eq!(log.lock().len(), 1);
        out.flush(); // no-op on empty queue
        assert_eq!(out.stats().flushes.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn null_backend_counts_only() {
        let out = MqttOut::new(MqttBackend::Null, SendPolicy::Continuous);
        out.push("/x", 1, 1.0);
        assert_eq!(out.stats().messages.load(Ordering::Relaxed), 1);
    }

    fn capture_any() -> (MqttBackend, CaptureLog) {
        let log = Arc::new(PMutex::new(Vec::new()));
        let l2 = Arc::clone(&log);
        let backend = MqttBackend::Callback(Arc::new(move |topic: &str, payload: &Bytes| {
            let (_, readings) = dcdb_mqtt::payload::decode_payload(payload).unwrap();
            l2.lock().push((topic.to_string(), readings));
        }));
        (backend, log)
    }

    #[test]
    fn compressed_bursts_shrink_payloads() {
        let (backend, log) = capture_any();
        let out = MqttOut::with_compression(
            backend,
            SendPolicy::Burst { interval_ns: 60_000_000_000 },
            Compression::bursts(),
        );
        for i in 0..120i64 {
            out.push("/rack0/node0/power", i * 250_000_000, 240.0 + (i % 3) as f64);
        }
        out.flush();
        let entries = log.lock();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].1.len(), 120);
        assert_eq!(entries[0].1[7], (7 * 250_000_000, 241.0));
        assert_eq!(out.stats().compressed_messages.load(Ordering::Relaxed), 1);
        let sent = out.stats().payload_bytes.load(Ordering::Relaxed);
        let fixed = out.stats().fixed_width_bytes.load(Ordering::Relaxed);
        assert!(sent * 4 < fixed, "expected ≥ 4× payload shrink, sent {sent} vs fixed {fixed}");
    }

    #[test]
    fn small_batches_stay_fixed_width() {
        let (backend, log) = capture_any();
        let out = MqttOut::with_compression(backend, SendPolicy::Continuous, Compression::bursts());
        out.push("/a", 1, 1.0);
        out.push("/a", 2, 2.0);
        assert_eq!(log.lock().len(), 2);
        assert_eq!(out.stats().compressed_messages.load(Ordering::Relaxed), 0);
        assert_eq!(
            out.stats().payload_bytes.load(Ordering::Relaxed),
            out.stats().fixed_width_bytes.load(Ordering::Relaxed)
        );
    }
}
