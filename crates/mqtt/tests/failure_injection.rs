//! Failure injection: the broker must survive hostile and broken clients,
//! and clients must survive broker loss.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dcdb_mqtt::{Broker, BrokerConfig, Client, ClientConfig};

fn start_broker() -> (Broker, Arc<AtomicUsize>) {
    let received = Arc::new(AtomicUsize::new(0));
    let r2 = Arc::clone(&received);
    let broker = Broker::start(
        BrokerConfig::default(),
        Some(Arc::new(move |_t, _p, _q| {
            r2.fetch_add(1, Ordering::Relaxed);
        })),
    )
    .expect("broker");
    (broker, received)
}

#[test]
fn broker_survives_garbage_bytes() {
    let (broker, received) = start_broker();
    // throw raw garbage at the broker
    for chunk in [&[0xFFu8; 64][..], &[0x00; 3], b"GET / HTTP/1.1\r\n\r\n"] {
        let mut s = TcpStream::connect(broker.local_addr()).unwrap();
        s.write_all(chunk).unwrap();
        drop(s);
    }
    std::thread::sleep(Duration::from_millis(100));
    // a well-behaved client still works afterwards
    let client = Client::connect(ClientConfig::new(broker.local_addr(), "after-garbage")).unwrap();
    client.publish_qos1("/ok", b"fine").unwrap();
    assert_eq!(received.load(Ordering::Relaxed), 1);
    assert!(broker.stats().errors.load(Ordering::Relaxed) >= 1);
}

#[test]
fn broker_rejects_publish_before_connect() {
    let (broker, received) = start_broker();
    // a valid PUBLISH packet without a preceding CONNECT
    let mut buf = bytes::BytesMut::new();
    dcdb_mqtt::codec::encode_packet(
        &dcdb_mqtt::codec::Packet::Publish {
            topic: "/sneaky".into(),
            payload: bytes::Bytes::from_static(b"x"),
            qos: dcdb_mqtt::codec::QoS::AtMostOnce,
            retain: false,
            dup: false,
            pid: None,
        },
        &mut buf,
    )
    .unwrap();
    let mut s = TcpStream::connect(broker.local_addr()).unwrap();
    s.write_all(&buf).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(received.load(Ordering::Relaxed), 0, "unauthenticated publish dropped");
}

#[test]
fn half_written_packet_then_disconnect() {
    let (broker, received) = start_broker();
    // CONNECT, then half a PUBLISH frame, then vanish
    let mut connect = bytes::BytesMut::new();
    dcdb_mqtt::codec::encode_packet(
        &dcdb_mqtt::codec::Packet::Connect {
            client_id: "torn".into(),
            keep_alive: 10,
            clean_session: true,
            will: None,
            username: None,
            password: None,
        },
        &mut connect,
    )
    .unwrap();
    let mut publish = bytes::BytesMut::new();
    dcdb_mqtt::codec::encode_packet(
        &dcdb_mqtt::codec::Packet::Publish {
            topic: "/torn/topic".into(),
            payload: bytes::Bytes::from(vec![0u8; 256]),
            qos: dcdb_mqtt::codec::QoS::AtMostOnce,
            retain: false,
            dup: false,
            pid: None,
        },
        &mut publish,
    )
    .unwrap();
    let mut s = TcpStream::connect(broker.local_addr()).unwrap();
    s.write_all(&connect).unwrap();
    s.write_all(&publish[..publish.len() / 2]).unwrap();
    drop(s); // connection dies mid-frame
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(received.load(Ordering::Relaxed), 0, "torn publish must not surface");
    // broker still healthy
    let client = Client::connect(ClientConfig::new(broker.local_addr(), "healthy")).unwrap();
    client.publish_qos1("/fine", b"y").unwrap();
    assert_eq!(received.load(Ordering::Relaxed), 1);
}

#[test]
fn client_fails_cleanly_when_broker_gone() {
    let (mut broker, _received) = start_broker();
    let addr = broker.local_addr();
    let client = Client::connect(ClientConfig {
        ack_timeout: Duration::from_millis(300),
        max_reconnects: 1,
        ..ClientConfig::new(addr, "orphan")
    })
    .unwrap();
    client.publish_qos0("/before", b"ok").unwrap();
    broker.shutdown();
    drop(broker);
    std::thread::sleep(Duration::from_millis(100));
    // eventually the publish path reports an error instead of hanging
    let mut failed = false;
    for _ in 0..20 {
        if client.publish_qos1("/after", b"x").is_err() {
            failed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(failed, "publishing to a dead broker must fail");
}

#[test]
fn oversized_packet_is_rejected() {
    let (broker, received) = start_broker();
    // hand-craft a remaining-length header claiming ~256 MB
    let mut s = TcpStream::connect(broker.local_addr()).unwrap();
    s.write_all(&[0x30, 0xFF, 0xFF, 0xFF, 0x7F]).unwrap();
    s.write_all(&[0u8; 1024]).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(received.load(Ordering::Relaxed), 0);
    assert!(broker.stats().errors.load(Ordering::Relaxed) >= 1);
}
