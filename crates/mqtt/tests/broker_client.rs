//! End-to-end tests: real TCP broker + client.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use dcdb_mqtt::{Broker, BrokerConfig, Client, ClientConfig, QoS};

fn start_broker(allow_subscribe: bool) -> (Broker, Arc<AtomicUsize>) {
    let received = Arc::new(AtomicUsize::new(0));
    let r2 = Arc::clone(&received);
    let sink: dcdb_mqtt::PublishSink = Arc::new(move |_t, _p, _q| {
        r2.fetch_add(1, Ordering::Relaxed);
    });
    let broker =
        Broker::start(BrokerConfig { allow_subscribe, ..BrokerConfig::default() }, Some(sink))
            .expect("broker start");
    (broker, received)
}

#[test]
fn qos0_publish_reaches_sink() {
    let (broker, received) = start_broker(false);
    let client =
        Client::connect(ClientConfig::new(broker.local_addr(), "test-0")).expect("connect");
    for i in 0..50 {
        client.publish_qos0(&format!("/t/{i}"), b"payload").unwrap();
    }
    // QoS0 is fire-and-forget; wait for broker to drain.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while received.load(Ordering::Relaxed) < 50 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(received.load(Ordering::Relaxed), 50);
    assert_eq!(broker.stats().publishes.load(Ordering::Relaxed), 50);
    client.disconnect();
}

#[test]
fn qos1_publish_is_acked() {
    let (broker, received) = start_broker(false);
    let client =
        Client::connect(ClientConfig::new(broker.local_addr(), "test-1")).expect("connect");
    for i in 0..20 {
        client.publish_qos1(&format!("/q1/{i}"), &i.to_string().into_bytes()).unwrap();
    }
    // QoS1 waits for PUBACK, so the sink must have seen every message already.
    assert_eq!(received.load(Ordering::Relaxed), 20);
    client.disconnect();
}

#[test]
fn many_concurrent_publishers() {
    let (broker, received) = start_broker(false);
    let addr = broker.local_addr();
    let mut handles = Vec::new();
    for p in 0..8 {
        handles.push(std::thread::spawn(move || {
            let client =
                Client::connect(ClientConfig::new(addr, format!("pusher-{p}"))).expect("connect");
            for i in 0..100 {
                client.publish_qos0(&format!("/host{p}/s{i}"), b"1234567890123456").unwrap();
            }
            client.disconnect();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while received.load(Ordering::Relaxed) < 800 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(received.load(Ordering::Relaxed), 800);
    assert_eq!(broker.stats().publish_bytes.load(Ordering::Relaxed), 800 * 16);
}

#[test]
fn publish_only_broker_rejects_subscriptions() {
    let (broker, _received) = start_broker(false);
    let client =
        Client::connect(ClientConfig::new(broker.local_addr(), "sub-reject")).expect("connect");
    // Subscribe succeeds at the transport level; broker answers 0x80 per filter.
    client.subscribe(&[("/a/#", QoS::AtMostOnce)]).unwrap();
    // Messages published by another client must not be forwarded.
    let publisher =
        Client::connect(ClientConfig::new(broker.local_addr(), "pub")).expect("connect");
    let got = Arc::new(AtomicUsize::new(0));
    let g2 = Arc::clone(&got);
    client.on_message(Arc::new(move |_t, _p| {
        g2.fetch_add(1, Ordering::Relaxed);
    }));
    publisher.publish_qos1("/a/x", b"data").unwrap();
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(got.load(Ordering::Relaxed), 0);
}

#[test]
fn subscribe_enabled_broker_forwards() {
    let (broker, _received) = start_broker(true);
    let subscriber =
        Client::connect(ClientConfig::new(broker.local_addr(), "sub")).expect("connect");
    let got = Arc::new(AtomicUsize::new(0));
    let payloads = Arc::new(parking_lot::Mutex::new(Vec::<Bytes>::new()));
    let g2 = Arc::clone(&got);
    let p2 = Arc::clone(&payloads);
    subscriber.on_message(Arc::new(move |_t, p| {
        g2.fetch_add(1, Ordering::Relaxed);
        p2.lock().push(p.clone());
    }));
    subscriber.subscribe(&[("/fwd/#", QoS::AtMostOnce)]).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    let publisher =
        Client::connect(ClientConfig::new(broker.local_addr(), "pub2")).expect("connect");
    publisher.publish_qos1("/fwd/a", b"hello").unwrap();
    publisher.publish_qos1("/other/a", b"nope").unwrap();

    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while got.load(Ordering::Relaxed) < 1 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(got.load(Ordering::Relaxed), 1);
    assert_eq!(payloads.lock()[0], Bytes::from_static(b"hello"));
    assert_eq!(broker.stats().forwarded.load(Ordering::Relaxed), 1);
}

#[test]
fn ping_keeps_connection() {
    let (broker, _r) = start_broker(false);
    let client =
        Client::connect(ClientConfig::new(broker.local_addr(), "pinger")).expect("connect");
    for _ in 0..3 {
        client.ping().unwrap();
        std::thread::sleep(Duration::from_millis(30));
    }
    client.publish_qos1("/after/ping", b"ok").unwrap();
}
