//! Property tests: the codec round-trips arbitrary packets and never panics
//! on arbitrary input bytes.

use bytes::{Bytes, BytesMut};
use dcdb_mqtt::codec::{decode_packet, encode_packet, Packet, QoS};
use proptest::prelude::*;

fn qos_strategy() -> impl Strategy<Value = QoS> {
    prop_oneof![Just(QoS::AtMostOnce), Just(QoS::AtLeastOnce), Just(QoS::ExactlyOnce)]
}

fn topic_strategy() -> impl Strategy<Value = String> {
    "[a-z0-9/_]{1,60}"
}

fn publish_strategy() -> impl Strategy<Value = Packet> {
    (
        topic_strategy(),
        prop::collection::vec(any::<u8>(), 0..512),
        qos_strategy(),
        any::<bool>(),
        any::<bool>(),
        1u16..u16::MAX,
    )
        .prop_map(|(topic, payload, qos, retain, dup, pid)| Packet::Publish {
            topic,
            payload: Bytes::from(payload),
            qos,
            retain,
            dup,
            pid: if qos == QoS::AtMostOnce { None } else { Some(pid) },
        })
}

fn packet_strategy() -> impl Strategy<Value = Packet> {
    prop_oneof![
        publish_strategy(),
        any::<u16>().prop_map(|pid| Packet::Puback { pid }),
        any::<u16>().prop_map(|pid| Packet::Pubrec { pid }),
        any::<u16>().prop_map(|pid| Packet::Pubrel { pid }),
        any::<u16>().prop_map(|pid| Packet::Pubcomp { pid }),
        any::<u16>().prop_map(|pid| Packet::Unsuback { pid }),
        Just(Packet::Pingreq),
        Just(Packet::Pingresp),
        Just(Packet::Disconnect),
        (any::<u16>(), prop::collection::vec((topic_strategy(), qos_strategy()), 1..5))
            .prop_map(|(pid, filters)| Packet::Subscribe { pid, filters }),
        (any::<u16>(), prop::collection::vec(topic_strategy(), 1..5))
            .prop_map(|(pid, filters)| Packet::Unsubscribe { pid, filters }),
    ]
}

proptest! {
    #[test]
    fn roundtrip(pkt in packet_strategy()) {
        let mut buf = BytesMut::new();
        encode_packet(&pkt, &mut buf).unwrap();
        let decoded = decode_packet(&mut buf).unwrap().unwrap();
        prop_assert_eq!(decoded, pkt);
        prop_assert!(buf.is_empty());
    }

    #[test]
    fn decoder_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..2048)) {
        let mut buf = BytesMut::from(&data[..]);
        // Decode until error or exhaustion; must never panic.
        while let Ok(Some(_)) = decode_packet(&mut buf) {}
    }

    #[test]
    fn split_stream_reassembles(pkts in prop::collection::vec(publish_strategy(), 1..8),
                                cut in any::<prop::sample::Index>()) {
        let mut full = BytesMut::new();
        for p in &pkts {
            encode_packet(p, &mut full).unwrap();
        }
        let cut_at = cut.index(full.len().max(1));
        let (a, b) = full.split_at(cut_at);
        let mut buf = BytesMut::from(a);
        let mut decoded = Vec::new();
        while let Ok(Some(p)) = decode_packet(&mut buf) {
            decoded.push(p);
        }
        buf.extend_from_slice(b);
        while let Ok(Some(p)) = decode_packet(&mut buf) {
            decoded.push(p);
        }
        prop_assert_eq!(decoded, pkts);
    }

    #[test]
    fn filter_matching_consistent_with_manual(topic in "[a-z]{1,5}(/[a-z]{1,5}){0,4}") {
        // '#' matches everything
        prop_assert!(dcdb_mqtt::filter_matches("#", &topic));
        // exact filter matches itself
        prop_assert!(dcdb_mqtt::filter_matches(&topic, &topic));
        // one-level-deeper filter never matches
        let deeper = format!("{topic}/zzz");
        prop_assert!(!dcdb_mqtt::filter_matches(&deeper, &topic));
    }
}
