//! In-process MQTT transport.
//!
//! The evaluation harness pushes up to 500,000 sensor readings per second
//! through a Collect Agent (paper Fig. 8).  Running those volumes through
//! kernel sockets would measure the host OS rather than the framework, so
//! the simulation uses this in-process bus: the same publish semantics as
//! [`crate::broker::Broker`] (topic + payload delivered to a sink, optional
//! subscriber fan-out with wildcard filters) with plain function calls.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use crate::codec::QoS;
use crate::topic::filter_matches;

/// Subscriber callback: `(topic, payload)`.
pub type InprocCallback = Arc<dyn Fn(&str, &Bytes) + Send + Sync>;

struct Subscription {
    id: u64,
    filter: String,
    callback: InprocCallback,
}

/// An in-process publish/subscribe bus with MQTT topic semantics.
#[derive(Default)]
pub struct InprocBus {
    sink: RwLock<Option<crate::broker::PublishSink>>,
    subs: RwLock<Vec<Subscription>>,
    next_id: AtomicU64,
    /// PUBLISH count, mirroring [`crate::broker::BrokerStats::publishes`].
    pub publishes: AtomicU64,
    /// Total payload bytes published.
    pub publish_bytes: AtomicU64,
}

impl InprocBus {
    /// Create an empty bus.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Install the broker-side sink that receives *every* publish
    /// (the Collect Agent's storage writer).
    pub fn set_sink(&self, sink: crate::broker::PublishSink) {
        *self.sink.write() = Some(sink);
    }

    /// Register a wildcard subscription; returns an id for unsubscribing.
    pub fn subscribe(&self, filter: &str, callback: InprocCallback) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.subs.write().push(Subscription { id, filter: filter.to_string(), callback });
        id
    }

    /// Remove a subscription by id; returns whether it existed.
    pub fn unsubscribe(&self, id: u64) -> bool {
        let mut subs = self.subs.write();
        let before = subs.len();
        subs.retain(|s| s.id != id);
        subs.len() != before
    }

    /// Publish a message to the bus.
    pub fn publish(&self, topic: &str, payload: &Bytes, qos: QoS) {
        self.publishes.fetch_add(1, Ordering::Relaxed);
        self.publish_bytes.fetch_add(payload.len() as u64, Ordering::Relaxed);
        if let Some(sink) = self.sink.read().as_ref() {
            sink(topic, payload, qos);
        }
        let subs = self.subs.read();
        for s in subs.iter() {
            if filter_matches(&s.filter, topic) {
                (s.callback)(topic, payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn sink_sees_everything() {
        let bus = InprocBus::new();
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        bus.set_sink(Arc::new(move |_t, _p, _q| {
            c2.fetch_add(1, Ordering::Relaxed);
        }));
        for i in 0..10 {
            bus.publish(&format!("/a/{i}"), &Bytes::from_static(b"x"), QoS::AtMostOnce);
        }
        assert_eq!(count.load(Ordering::Relaxed), 10);
        assert_eq!(bus.publishes.load(Ordering::Relaxed), 10);
        assert_eq!(bus.publish_bytes.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn subscriptions_filter() {
        let bus = InprocBus::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h2 = Arc::clone(&hits);
        let id = bus.subscribe(
            "/a/#",
            Arc::new(move |_t, _p| {
                h2.fetch_add(1, Ordering::Relaxed);
            }),
        );
        bus.publish("/a/x", &Bytes::new(), QoS::AtMostOnce);
        bus.publish("/b/x", &Bytes::new(), QoS::AtMostOnce);
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert!(bus.unsubscribe(id));
        assert!(!bus.unsubscribe(id));
        bus.publish("/a/y", &Bytes::new(), QoS::AtMostOnce);
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
