//! The sensor-reading payload formats used on top of MQTT.
//!
//! Pushers publish each sensor's readings under the sensor's topic; the
//! payload is one or more `(timestamp, value)` records — more than one when
//! the Pusher accumulates readings and sends in bursts (paper §6.2.1 studies
//! bursty vs. continuous sending).  Two encodings exist, negotiated per
//! topic by the publisher's choice and detected by the subscriber:
//!
//! * **fixed-width** ([`encode_readings`]) — little-endian `i64` nanosecond
//!   timestamp followed by `f64` value, 16 bytes per reading,
//! * **compressed** ([`encode_readings_compressed`]) — the 4-byte magic
//!   [`COMPRESSED_MAGIC`] followed by a `dcdb-compress` Gorilla series
//!   (delta-of-delta timestamps + XOR floats, raw fallback included).
//!   Burst batches of regularly-sampled sensors shrink well over 4×.
//!
//! [`decode_payload`] dispatches on the magic.  A fixed-width payload can
//! start with the magic bytes — its first 4 bytes are the *low-order*
//! little-endian bytes of the first timestamp, so any `ts` with
//! `ts & 0xFFFF_FFFF == 0x315A_4344` collides — which is why detection
//! alone is not trusted: when a magic-prefixed payload fails to parse as a
//! compressed series but is a valid multiple of 16 bytes, [`decode_payload`]
//! falls back to fixed-width decoding.  A colliding payload that *also*
//! parses as a complete, length-exact compressed series is the only
//! remaining ambiguity (astronomically unlikely: flags, count and bitstream
//! length must all line up); the Collect Agent additionally records each
//! topic's negotiated encoding on first contact.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Size of one encoded reading.
pub const RECORD_SIZE: usize = 16;

/// Magic prefix marking a compressed payload (`"DCZ1"`).
pub const COMPRESSED_MAGIC: &[u8; 4] = b"DCZ1";

/// How a payload was (or should be) encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadEncoding {
    /// Fixed-width 16-byte records.
    Fixed,
    /// Gorilla-compressed series behind [`COMPRESSED_MAGIC`].
    Compressed,
}

/// Encode readings into a payload.
pub fn encode_readings(readings: &[(i64, f64)]) -> Bytes {
    let mut buf = BytesMut::with_capacity(readings.len() * RECORD_SIZE);
    for &(ts, value) in readings {
        buf.put_i64_le(ts);
        buf.put_f64_le(value);
    }
    buf.freeze()
}

/// Decode a payload into readings.
///
/// Returns `None` when the payload length is not a multiple of
/// [`RECORD_SIZE`] (malformed).
pub fn decode_readings(payload: &[u8]) -> Option<Vec<(i64, f64)>> {
    if !payload.len().is_multiple_of(RECORD_SIZE) {
        return None;
    }
    let mut buf = payload;
    let mut out = Vec::with_capacity(payload.len() / RECORD_SIZE);
    while buf.has_remaining() {
        let ts = buf.get_i64_le();
        let value = buf.get_f64_le();
        out.push((ts, value));
    }
    Some(out)
}

/// Encode readings into a compressed payload (magic + Gorilla series).
///
/// Lossless for any `(ts, value)` sequence; a raw fallback inside the
/// series bounds pathological batches at `9 + 16·n` bytes.
pub fn encode_readings_compressed(readings: &[(i64, f64)]) -> Bytes {
    let mut out = Vec::with_capacity(4 + 5 + readings.len() * 4);
    out.extend_from_slice(COMPRESSED_MAGIC);
    dcdb_compress::encode_series_into(readings, &mut out);
    Bytes::from(out)
}

/// Decode a compressed payload produced by [`encode_readings_compressed`].
pub fn decode_readings_compressed(payload: &[u8]) -> Option<Vec<(i64, f64)>> {
    let body = payload.strip_prefix(COMPRESSED_MAGIC)?;
    dcdb_compress::decode_series(body).ok()
}

/// Detect a payload's encoding from its framing.
pub fn detect_encoding(payload: &[u8]) -> PayloadEncoding {
    if payload.len() >= COMPRESSED_MAGIC.len() && payload.starts_with(COMPRESSED_MAGIC) {
        PayloadEncoding::Compressed
    } else {
        PayloadEncoding::Fixed
    }
}

/// Decode either payload encoding, reporting which one was seen.
///
/// Magic-prefixed payloads that fail compressed decoding fall back to
/// fixed-width decoding (see the module docs on collisions).  Returns
/// `None` on payloads malformed under both interpretations.
pub fn decode_payload(payload: &[u8]) -> Option<(PayloadEncoding, Vec<(i64, f64)>)> {
    match detect_encoding(payload) {
        PayloadEncoding::Compressed => decode_readings_compressed(payload)
            .map(|r| (PayloadEncoding::Compressed, r))
            .or_else(|| decode_readings(payload).map(|r| (PayloadEncoding::Fixed, r))),
        PayloadEncoding::Fixed => decode_readings(payload).map(|r| (PayloadEncoding::Fixed, r)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single() {
        let payload = encode_readings(&[(1_000_000_000, 240.5)]);
        assert_eq!(payload.len(), RECORD_SIZE);
        assert_eq!(decode_readings(&payload).unwrap(), vec![(1_000_000_000, 240.5)]);
    }

    #[test]
    fn roundtrip_burst() {
        let readings: Vec<(i64, f64)> = (0..120).map(|i| (i * 1_000, i as f64 * 0.1)).collect();
        let payload = encode_readings(&readings);
        assert_eq!(payload.len(), 120 * RECORD_SIZE);
        assert_eq!(decode_readings(&payload).unwrap(), readings);
    }

    #[test]
    fn rejects_torn_payload() {
        assert!(decode_readings(&[0u8; 15]).is_none());
        assert!(decode_readings(&[0u8; 17]).is_none());
        assert_eq!(decode_readings(&[]).unwrap(), vec![]);
    }

    #[test]
    fn special_values_survive() {
        let vals = vec![(0i64, f64::MAX), (1, f64::MIN_POSITIVE), (2, -0.0), (i64::MAX, 1e-300)];
        assert_eq!(decode_readings(&encode_readings(&vals)).unwrap(), vals);
    }

    #[test]
    fn compressed_roundtrip_and_detection() {
        let readings: Vec<(i64, f64)> =
            (0..240).map(|i| (i * 250_000_000, 240.0 + (i % 4) as f64)).collect();
        let payload = encode_readings_compressed(&readings);
        assert_eq!(detect_encoding(&payload), PayloadEncoding::Compressed);
        assert_eq!(decode_readings_compressed(&payload).unwrap(), readings);
        let (enc, decoded) = decode_payload(&payload).unwrap();
        assert_eq!(enc, PayloadEncoding::Compressed);
        assert_eq!(decoded, readings);
    }

    #[test]
    fn compressed_burst_beats_fixed_width() {
        let readings: Vec<(i64, f64)> =
            (0..120).map(|i| (i * 1_000_000_000, 52.5 + (i % 3) as f64)).collect();
        let fixed = encode_readings(&readings);
        let compressed = encode_readings_compressed(&readings);
        assert!(
            compressed.len() * 4 < fixed.len(),
            "compressed {} vs fixed {}",
            compressed.len(),
            fixed.len()
        );
    }

    #[test]
    fn decode_payload_handles_fixed_width() {
        let readings = vec![(1_000i64, 1.5), (2_000, 2.5)];
        let payload = encode_readings(&readings);
        let (enc, decoded) = decode_payload(&payload).unwrap();
        assert_eq!(enc, PayloadEncoding::Fixed);
        assert_eq!(decoded, readings);
    }

    #[test]
    fn malformed_compressed_payload_rejected() {
        assert!(decode_payload(b"DCZ1").is_none());
        assert!(decode_payload(b"DCZ1\xff\x00\x00\x00\x00").is_none());
        // a truncated compressed payload must not decode
        let payload = encode_readings_compressed(&[(1, 1.0), (2, 2.0), (3, 3.0)]);
        assert!(decode_readings_compressed(&payload[..payload.len() - 1]).is_none());
    }

    #[test]
    fn empty_compressed_batch() {
        let payload = encode_readings_compressed(&[]);
        assert_eq!(decode_payload(&payload).unwrap().1, vec![]);
    }

    #[test]
    fn magic_colliding_fixed_payload_falls_back() {
        // a fixed-width payload whose first timestamp's low-order LE bytes
        // spell the compressed magic: ts & 0xFFFF_FFFF == 0x315A_4344
        let readings = vec![(0x315A_4344i64, 1.5), (0x1_315A_4344i64, 2.5)];
        let payload = encode_readings(&readings);
        assert_eq!(&payload[..4], COMPRESSED_MAGIC, "test premise: collision");
        assert_eq!(detect_encoding(&payload), PayloadEncoding::Compressed);
        let (enc, decoded) = decode_payload(&payload).unwrap();
        assert_eq!(enc, PayloadEncoding::Fixed, "must fall back, not drop");
        assert_eq!(decoded, readings);
    }
}
