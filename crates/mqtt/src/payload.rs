//! The sensor-reading payload format used on top of MQTT.
//!
//! Pushers publish each sensor's readings under the sensor's topic; the
//! payload is one or more `(timestamp, value)` records — more than one when
//! the Pusher accumulates readings and sends in bursts (paper §6.2.1 studies
//! bursty vs. continuous sending).  Records are fixed-width little-endian:
//! `i64` nanosecond timestamp followed by `f64` value, 16 bytes per reading.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Size of one encoded reading.
pub const RECORD_SIZE: usize = 16;

/// Encode readings into a payload.
pub fn encode_readings(readings: &[(i64, f64)]) -> Bytes {
    let mut buf = BytesMut::with_capacity(readings.len() * RECORD_SIZE);
    for &(ts, value) in readings {
        buf.put_i64_le(ts);
        buf.put_f64_le(value);
    }
    buf.freeze()
}

/// Decode a payload into readings.
///
/// Returns `None` when the payload length is not a multiple of
/// [`RECORD_SIZE`] (malformed).
pub fn decode_readings(payload: &[u8]) -> Option<Vec<(i64, f64)>> {
    if !payload.len().is_multiple_of(RECORD_SIZE) {
        return None;
    }
    let mut buf = payload;
    let mut out = Vec::with_capacity(payload.len() / RECORD_SIZE);
    while buf.has_remaining() {
        let ts = buf.get_i64_le();
        let value = buf.get_f64_le();
        out.push((ts, value));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single() {
        let payload = encode_readings(&[(1_000_000_000, 240.5)]);
        assert_eq!(payload.len(), RECORD_SIZE);
        assert_eq!(decode_readings(&payload).unwrap(), vec![(1_000_000_000, 240.5)]);
    }

    #[test]
    fn roundtrip_burst() {
        let readings: Vec<(i64, f64)> = (0..120).map(|i| (i * 1_000, i as f64 * 0.1)).collect();
        let payload = encode_readings(&readings);
        assert_eq!(payload.len(), 120 * RECORD_SIZE);
        assert_eq!(decode_readings(&payload).unwrap(), readings);
    }

    #[test]
    fn rejects_torn_payload() {
        assert!(decode_readings(&[0u8; 15]).is_none());
        assert!(decode_readings(&[0u8; 17]).is_none());
        assert_eq!(decode_readings(&[]).unwrap(), vec![]);
    }

    #[test]
    fn special_values_survive() {
        let vals = vec![(0i64, f64::MAX), (1, f64::MIN_POSITIVE), (2, -0.0), (i64::MAX, 1e-300)];
        assert_eq!(decode_readings(&encode_readings(&vals)).unwrap(), vals);
    }
}
