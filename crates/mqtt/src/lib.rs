//! # dcdb-mqtt
//!
//! A self-contained MQTT 3.1.1 implementation: the transport layer between
//! DCDB Pushers and Collect Agents (paper §3.1).  MQTT was chosen by the
//! paper because it is lightweight, telemetry-oriented and widely supported;
//! this crate reproduces the protocol surface the framework relies on:
//!
//! * [`codec`] — wire format for all fourteen 3.1.1 control packets,
//! * [`topic`] — topic filters with `+`/`#` wildcard matching,
//! * [`broker`] — a threaded TCP broker.  Like DCDB's Collect Agent it is
//!   *publish-only by default*: subscriptions can be disabled entirely so no
//!   topic-filtering overhead is paid (paper §4.2), with an in-process sink
//!   callback receiving every publish instead,
//! * [`client`] — a blocking client with QoS 0/1 publish, keep-alive and
//!   automatic reconnect,
//! * [`inproc`] — an in-process transport used by the simulation harness so
//!   millions of messages per second can be pushed without kernel sockets.

pub mod broker;
pub mod client;
pub mod codec;
pub mod inproc;
pub mod payload;
pub mod topic;

pub use broker::{Broker, BrokerConfig, BrokerStats, PublishSink};
pub use client::{Client, ClientConfig, ClientError};
pub use codec::{decode_packet, encode_packet, ConnectReturnCode, Packet, QoS};
pub use topic::{filter_matches, is_valid_filter};
