//! A threaded MQTT 3.1.1 TCP broker.
//!
//! The DCDB Collect Agent embeds a *custom MQTT implementation that only
//! provides a subset of features necessary for its tasks*: it supports the
//! publish interface but not the subscribe interface, because the Storage
//! Backend is the only consumer and filtering every message through a topic
//! trie would be wasted work (paper §4.2).  This broker reproduces that
//! design: every received PUBLISH is handed to a [`PublishSink`] callback,
//! and SUBSCRIBE support can be switched on for the general-purpose case
//! (the paper notes additional subscribers, e.g. on-line analytics, are
//! possible).

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::{Bytes, BytesMut};
use parking_lot::Mutex;

use crate::codec::{decode_packet, encode_packet, ConnectReturnCode, Packet, QoS};
use crate::topic::filter_matches;

/// Callback receiving every PUBLISH accepted by the broker.
///
/// Arguments: topic, payload, QoS.  This is the hook the Collect Agent uses
/// to forward readings to Storage Backends without a subscription round-trip.
pub type PublishSink = Arc<dyn Fn(&str, &Bytes, QoS) + Send + Sync>;

/// Broker tuning knobs.
#[derive(Clone)]
pub struct BrokerConfig {
    /// Address to bind (use port 0 for an ephemeral port in tests).
    pub bind: SocketAddr,
    /// Whether SUBSCRIBE/UNSUBSCRIBE are honoured.  Defaults to `false`,
    /// mirroring the publish-only Collect Agent broker.
    pub allow_subscribe: bool,
    /// Read timeout used to poll for shutdown.
    pub read_timeout: Duration,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            bind: "127.0.0.1:0".parse().expect("static addr"),
            allow_subscribe: false,
            read_timeout: Duration::from_millis(100),
        }
    }
}

/// Counters exposed for the evaluation harness.
#[derive(Debug, Default)]
pub struct BrokerStats {
    /// CONNECTs accepted.
    pub connects: AtomicU64,
    /// PUBLISH packets received.
    pub publishes: AtomicU64,
    /// Total payload bytes received in PUBLISH packets.
    pub publish_bytes: AtomicU64,
    /// Messages forwarded to subscribers.
    pub forwarded: AtomicU64,
    /// Protocol errors observed.
    pub errors: AtomicU64,
}

struct Subscriber {
    filters: Vec<(String, QoS)>,
    writer: Arc<Mutex<TcpStream>>,
}

struct Shared {
    cfg: BrokerConfig,
    sink: Option<PublishSink>,
    stats: BrokerStats,
    running: AtomicBool,
    subscribers: Mutex<HashMap<u64, Subscriber>>,
    next_conn_id: AtomicU64,
}

/// Handle to a running broker; dropping it stops the broker.
pub struct Broker {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl Broker {
    /// Start a broker with `cfg`, forwarding publishes to `sink`.
    ///
    /// # Errors
    /// Propagates socket bind failures.
    pub fn start(cfg: BrokerConfig, sink: Option<PublishSink>) -> std::io::Result<Broker> {
        let listener = TcpListener::bind(cfg.bind)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cfg,
            sink,
            stats: BrokerStats::default(),
            running: AtomicBool::new(true),
            subscribers: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(1),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("mqtt-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        Ok(Broker { shared, local_addr, accept_thread: Some(accept_thread) })
    }

    /// The address the broker actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live statistics.
    pub fn stats(&self) -> &BrokerStats {
        &self.shared.stats
    }

    /// Request shutdown and join the accept thread.
    pub fn shutdown(&mut self) {
        self.shared.running.store(false, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Broker {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while shared.running.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(&shared);
                let _ = std::thread::Builder::new().name("mqtt-conn".into()).spawn(move || {
                    if connection_loop(stream, &conn_shared).is_err() {
                        conn_shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn send(writer: &Mutex<TcpStream>, packet: &Packet) -> std::io::Result<()> {
    let mut out = BytesMut::new();
    encode_packet(packet, &mut out)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    // lint: allow(lock-across-slow-op) -- the per-connection writer mutex
    // exists precisely to serialise whole frames onto the socket; writing
    // outside it would interleave packets from concurrent publishers
    let mut w = writer.lock();
    w.write_all(&out)
}

fn connection_loop(stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    stream.set_read_timeout(Some(shared.cfg.read_timeout))?;
    stream.set_nodelay(true)?;
    let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    let mut reader = stream;
    let mut buf = BytesMut::with_capacity(8 * 1024);
    let mut chunk = [0u8; 16 * 1024];
    let mut connected = false;

    let result = loop {
        if !shared.running.load(Ordering::SeqCst) {
            break Ok(());
        }
        // Drain complete packets already buffered.
        loop {
            match decode_packet(&mut buf) {
                Ok(Some(packet)) => {
                    match handle_packet(packet, shared, conn_id, &writer, &mut connected) {
                        Ok(HandleOutcome::Continue) => {}
                        Ok(HandleOutcome::Disconnect) => {
                            shared.subscribers.lock().remove(&conn_id);
                            return Ok(());
                        }
                        Err(()) => {
                            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                            shared.subscribers.lock().remove(&conn_id);
                            return Ok(());
                        }
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                    shared.subscribers.lock().remove(&conn_id);
                    return Ok(());
                }
            }
        }
        match reader.read(&mut chunk) {
            Ok(0) => break Ok(()),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => break Err(e),
        }
    };
    shared.subscribers.lock().remove(&conn_id);
    result
}

enum HandleOutcome {
    Continue,
    Disconnect,
}

fn handle_packet(
    packet: Packet,
    shared: &Shared,
    conn_id: u64,
    writer: &Arc<Mutex<TcpStream>>,
    connected: &mut bool,
) -> Result<HandleOutcome, ()> {
    match packet {
        Packet::Connect { .. } => {
            *connected = true;
            shared.stats.connects.fetch_add(1, Ordering::Relaxed);
            send(
                writer,
                &Packet::Connack { session_present: false, code: ConnectReturnCode::Accepted },
            )
            .map_err(|_| ())?;
        }
        Packet::Publish { topic, payload, qos, pid, .. } => {
            if !*connected {
                return Err(());
            }
            shared.stats.publishes.fetch_add(1, Ordering::Relaxed);
            shared.stats.publish_bytes.fetch_add(payload.len() as u64, Ordering::Relaxed);
            if let Some(sink) = &shared.sink {
                sink(&topic, &payload, qos);
            }
            if qos == QoS::AtLeastOnce {
                if let Some(pid) = pid {
                    send(writer, &Packet::Puback { pid }).map_err(|_| ())?;
                }
            }
            if shared.cfg.allow_subscribe {
                forward_to_subscribers(shared, conn_id, &topic, &payload);
            }
        }
        Packet::Subscribe { pid, filters } => {
            if !shared.cfg.allow_subscribe {
                // publish-only broker: reject all filters
                let codes = vec![0x80u8; filters.len()];
                send(writer, &Packet::Suback { pid, return_codes: codes }).map_err(|_| ())?;
            } else {
                let codes: Vec<u8> = filters
                    .iter()
                    .map(|(f, q)| if crate::topic::is_valid_filter(f) { *q as u8 } else { 0x80 })
                    .collect();
                let accepted: Vec<(String, QoS)> =
                    filters.into_iter().filter(|(f, _)| crate::topic::is_valid_filter(f)).collect();
                let mut subs = shared.subscribers.lock();
                let entry = subs.entry(conn_id).or_insert_with(|| Subscriber {
                    filters: Vec::new(),
                    writer: Arc::clone(writer),
                });
                entry.filters.extend(accepted);
                drop(subs);
                send(writer, &Packet::Suback { pid, return_codes: codes }).map_err(|_| ())?;
            }
        }
        Packet::Unsubscribe { pid, filters } => {
            let mut subs = shared.subscribers.lock();
            if let Some(sub) = subs.get_mut(&conn_id) {
                sub.filters.retain(|(f, _)| !filters.contains(f));
            }
            drop(subs);
            send(writer, &Packet::Unsuback { pid }).map_err(|_| ())?;
        }
        Packet::Pingreq => {
            send(writer, &Packet::Pingresp).map_err(|_| ())?;
        }
        Packet::Disconnect => return Ok(HandleOutcome::Disconnect),
        Packet::Pubrel { pid } => {
            send(writer, &Packet::Pubcomp { pid }).map_err(|_| ())?;
        }
        // Packets a broker does not expect from clients are ignored.
        _ => {}
    }
    Ok(HandleOutcome::Continue)
}

fn forward_to_subscribers(shared: &Shared, from_conn: u64, topic: &str, payload: &Bytes) {
    // snapshot the matching writers under the registry lock, then write
    // after releasing it — one slow subscriber socket must not stall
    // connects/subscribes (and every other publisher) behind the registry
    let targets: Vec<Arc<Mutex<TcpStream>>> = {
        let subs = shared.subscribers.lock();
        subs.iter()
            .filter(|(id, sub)| {
                **id != from_conn && sub.filters.iter().any(|(f, _)| filter_matches(f, topic))
            })
            .map(|(_, sub)| Arc::clone(&sub.writer))
            .collect()
    };
    if targets.is_empty() {
        return;
    }
    let pkt = Packet::Publish {
        topic: topic.to_string(),
        payload: payload.clone(),
        qos: QoS::AtMostOnce,
        retain: false,
        dup: false,
        pid: None,
    };
    for writer in targets {
        if send(&writer, &pkt).is_ok() {
            shared.stats.forwarded.fetch_add(1, Ordering::Relaxed);
        }
    }
}
