//! MQTT 3.1.1 wire format.
//!
//! Implements encoding and decoding for all fourteen control packet types of
//! the OASIS MQTT 3.1.1 specification, including the variable-length
//! "remaining length" encoding and UTF-8 string fields.  Decoding is
//! incremental: [`decode_packet`] returns `Ok(None)` when the buffer does not
//! yet hold a complete packet, so callers can accumulate TCP reads.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Quality-of-service level (3.1.1 supports 0, 1, 2; DCDB uses 0 and 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QoS {
    /// Fire and forget.
    AtMostOnce = 0,
    /// Acknowledged delivery (PUBACK).
    AtLeastOnce = 1,
    /// Assured delivery (PUBREC/PUBREL/PUBCOMP).
    ExactlyOnce = 2,
}

impl QoS {
    /// Parse from the 2-bit wire value.
    pub fn from_bits(b: u8) -> Result<QoS, CodecError> {
        match b {
            0 => Ok(QoS::AtMostOnce),
            1 => Ok(QoS::AtLeastOnce),
            2 => Ok(QoS::ExactlyOnce),
            _ => Err(CodecError::Malformed("QoS 3 is reserved")),
        }
    }
}

/// CONNACK return codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectReturnCode {
    /// Connection accepted.
    Accepted = 0,
    /// The broker does not support the requested protocol level.
    UnacceptableProtocol = 1,
    /// Client identifier rejected.
    IdentifierRejected = 2,
    /// Broker unavailable.
    ServerUnavailable = 3,
    /// Bad user name or password.
    BadCredentials = 4,
    /// Client is not authorised.
    NotAuthorized = 5,
}

impl ConnectReturnCode {
    fn from_u8(v: u8) -> Result<Self, CodecError> {
        Ok(match v {
            0 => ConnectReturnCode::Accepted,
            1 => ConnectReturnCode::UnacceptableProtocol,
            2 => ConnectReturnCode::IdentifierRejected,
            3 => ConnectReturnCode::ServerUnavailable,
            4 => ConnectReturnCode::BadCredentials,
            5 => ConnectReturnCode::NotAuthorized,
            _ => return Err(CodecError::Malformed("unknown CONNACK return code")),
        })
    }
}

/// A will message registered at CONNECT time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LastWill {
    /// Topic the will is published to.
    pub topic: String,
    /// Will payload.
    pub payload: Bytes,
    /// Will QoS.
    pub qos: QoS,
    /// Will retain flag.
    pub retain: bool,
}

/// A decoded MQTT control packet.
#[derive(Debug, Clone, PartialEq)]
pub enum Packet {
    /// Client → broker session request.
    Connect {
        /// Client identifier (may be empty with clean_session).
        client_id: String,
        /// Keep-alive interval in seconds (0 disables).
        keep_alive: u16,
        /// Discard previous session state.
        clean_session: bool,
        /// Optional will message.
        will: Option<LastWill>,
        /// Optional user name.
        username: Option<String>,
        /// Optional password.
        password: Option<Bytes>,
    },
    /// Broker → client session response.
    Connack {
        /// Broker has stored session state for this client.
        session_present: bool,
        /// Accept/reject code.
        code: ConnectReturnCode,
    },
    /// Application message (either direction).
    Publish {
        /// Destination topic.
        topic: String,
        /// Message body.
        payload: Bytes,
        /// Delivery QoS.
        qos: QoS,
        /// Retain flag.
        retain: bool,
        /// Duplicate delivery flag.
        dup: bool,
        /// Packet identifier, present when qos > 0.
        pid: Option<u16>,
    },
    /// QoS 1 acknowledgement.
    Puback {
        /// Acknowledged packet identifier.
        pid: u16,
    },
    /// QoS 2 step 1.
    Pubrec {
        /// Packet identifier.
        pid: u16,
    },
    /// QoS 2 step 2.
    Pubrel {
        /// Packet identifier.
        pid: u16,
    },
    /// QoS 2 step 3.
    Pubcomp {
        /// Packet identifier.
        pid: u16,
    },
    /// Subscription request.
    Subscribe {
        /// Packet identifier.
        pid: u16,
        /// `(filter, requested QoS)` pairs.
        filters: Vec<(String, QoS)>,
    },
    /// Subscription response.
    Suback {
        /// Packet identifier.
        pid: u16,
        /// Granted QoS per filter; 0x80 = failure.
        return_codes: Vec<u8>,
    },
    /// Unsubscribe request.
    Unsubscribe {
        /// Packet identifier.
        pid: u16,
        /// Filters to remove.
        filters: Vec<String>,
    },
    /// Unsubscribe response.
    Unsuback {
        /// Packet identifier.
        pid: u16,
    },
    /// Keep-alive ping.
    Pingreq,
    /// Keep-alive response.
    Pingresp,
    /// Clean disconnect.
    Disconnect,
}

/// Decode/encode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Structurally invalid packet.
    Malformed(&'static str),
    /// Remaining-length field exceeds the 4-byte maximum.
    RemainingLengthOverflow,
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// Payload exceeds the configured maximum packet size.
    PacketTooLarge(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Malformed(m) => write!(f, "malformed packet: {m}"),
            CodecError::RemainingLengthOverflow => write!(f, "remaining length overflow"),
            CodecError::InvalidUtf8 => write!(f, "invalid UTF-8 in string field"),
            CodecError::PacketTooLarge(n) => write!(f, "packet of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Hard upper bound on accepted packets (defensive; spec max is 256 MB).
pub const MAX_PACKET_SIZE: usize = 8 * 1024 * 1024;

// ---------------------------------------------------------------- encoding

fn put_remaining_length(buf: &mut BytesMut, mut len: usize) -> Result<(), CodecError> {
    if len > 268_435_455 {
        return Err(CodecError::RemainingLengthOverflow);
    }
    loop {
        let mut byte = (len % 128) as u8;
        len /= 128;
        if len > 0 {
            byte |= 0x80;
        }
        buf.put_u8(byte);
        if len == 0 {
            return Ok(());
        }
    }
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn string_len(s: &str) -> usize {
    2 + s.len()
}

/// Encode `packet` onto `buf`.
///
/// # Errors
/// Only fails for over-long payloads ([`CodecError::RemainingLengthOverflow`]).
pub fn encode_packet(packet: &Packet, buf: &mut BytesMut) -> Result<(), CodecError> {
    match packet {
        Packet::Connect { client_id, keep_alive, clean_session, will, username, password } => {
            let mut flags = 0u8;
            if *clean_session {
                flags |= 0x02;
            }
            let mut len = string_len("MQTT") + 1 + 1 + 2 + string_len(client_id);
            if let Some(w) = will {
                flags |= 0x04 | ((w.qos as u8) << 3) | if w.retain { 0x20 } else { 0 };
                len += string_len(&w.topic) + 2 + w.payload.len();
            }
            if let Some(u) = username {
                flags |= 0x80;
                len += string_len(u);
            }
            if let Some(p) = password {
                flags |= 0x40;
                len += 2 + p.len();
            }
            buf.put_u8(0x10);
            put_remaining_length(buf, len)?;
            put_string(buf, "MQTT");
            buf.put_u8(4); // protocol level 3.1.1
            buf.put_u8(flags);
            buf.put_u16(*keep_alive);
            put_string(buf, client_id);
            if let Some(w) = will {
                put_string(buf, &w.topic);
                buf.put_u16(w.payload.len() as u16);
                buf.put_slice(&w.payload);
            }
            if let Some(u) = username {
                put_string(buf, u);
            }
            if let Some(p) = password {
                buf.put_u16(p.len() as u16);
                buf.put_slice(p);
            }
        }
        Packet::Connack { session_present, code } => {
            buf.put_u8(0x20);
            put_remaining_length(buf, 2)?;
            buf.put_u8(u8::from(*session_present));
            buf.put_u8(*code as u8);
        }
        Packet::Publish { topic, payload, qos, retain, dup, pid } => {
            let mut first = 0x30u8;
            if *dup {
                first |= 0x08;
            }
            first |= (*qos as u8) << 1;
            if *retain {
                first |= 0x01;
            }
            let mut len = string_len(topic) + payload.len();
            if *qos != QoS::AtMostOnce {
                len += 2;
            }
            buf.put_u8(first);
            put_remaining_length(buf, len)?;
            put_string(buf, topic);
            if *qos != QoS::AtMostOnce {
                buf.put_u16(pid.ok_or(CodecError::Malformed("QoS>0 publish requires pid"))?);
            }
            buf.put_slice(payload);
        }
        Packet::Puback { pid } => put_ack(buf, 0x40, *pid)?,
        Packet::Pubrec { pid } => put_ack(buf, 0x50, *pid)?,
        Packet::Pubrel { pid } => put_ack(buf, 0x62, *pid)?,
        Packet::Pubcomp { pid } => put_ack(buf, 0x70, *pid)?,
        Packet::Subscribe { pid, filters } => {
            let len = 2 + filters.iter().map(|(f, _)| string_len(f) + 1).sum::<usize>();
            buf.put_u8(0x82);
            put_remaining_length(buf, len)?;
            buf.put_u16(*pid);
            for (f, q) in filters {
                put_string(buf, f);
                buf.put_u8(*q as u8);
            }
        }
        Packet::Suback { pid, return_codes } => {
            buf.put_u8(0x90);
            put_remaining_length(buf, 2 + return_codes.len())?;
            buf.put_u16(*pid);
            for rc in return_codes {
                buf.put_u8(*rc);
            }
        }
        Packet::Unsubscribe { pid, filters } => {
            let len = 2 + filters.iter().map(|f| string_len(f)).sum::<usize>();
            buf.put_u8(0xA2);
            put_remaining_length(buf, len)?;
            buf.put_u16(*pid);
            for f in filters {
                put_string(buf, f);
            }
        }
        Packet::Unsuback { pid } => put_ack(buf, 0xB0, *pid)?,
        Packet::Pingreq => {
            buf.put_u8(0xC0);
            buf.put_u8(0);
        }
        Packet::Pingresp => {
            buf.put_u8(0xD0);
            buf.put_u8(0);
        }
        Packet::Disconnect => {
            buf.put_u8(0xE0);
            buf.put_u8(0);
        }
    }
    Ok(())
}

fn put_ack(buf: &mut BytesMut, first: u8, pid: u16) -> Result<(), CodecError> {
    buf.put_u8(first);
    put_remaining_length(buf, 2)?;
    buf.put_u16(pid);
    Ok(())
}

// ---------------------------------------------------------------- decoding

/// Try to read the remaining-length header; `Ok(None)` when incomplete.
fn peek_remaining_length(buf: &[u8]) -> Result<Option<(usize, usize)>, CodecError> {
    // returns (value, header_bytes_after_first)
    let mut mult = 1usize;
    let mut value = 0usize;
    for i in 1..=4 {
        let Some(&b) = buf.get(i) else { return Ok(None) };
        value += (b & 0x7F) as usize * mult;
        if b & 0x80 == 0 {
            return Ok(Some((value, i)));
        }
        mult *= 128;
    }
    Err(CodecError::RemainingLengthOverflow)
}

fn get_string(buf: &mut Bytes) -> Result<String, CodecError> {
    if buf.remaining() < 2 {
        return Err(CodecError::Malformed("truncated string length"));
    }
    let len = buf.get_u16() as usize;
    if buf.remaining() < len {
        return Err(CodecError::Malformed("truncated string body"));
    }
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|_| CodecError::InvalidUtf8)
}

fn get_u16(buf: &mut Bytes) -> Result<u16, CodecError> {
    if buf.remaining() < 2 {
        return Err(CodecError::Malformed("truncated u16"));
    }
    Ok(buf.get_u16())
}

/// Decode one packet from the front of `buf`.
///
/// Consumes the packet bytes on success.  Returns `Ok(None)` when `buf` does
/// not yet hold a complete packet (read more from the socket and retry).
pub fn decode_packet(buf: &mut BytesMut) -> Result<Option<Packet>, CodecError> {
    if buf.is_empty() {
        return Ok(None);
    }
    let Some((remaining, hdr_extra)) = peek_remaining_length(buf)? else {
        return Ok(None);
    };
    let total = 1 + hdr_extra + remaining;
    if total > MAX_PACKET_SIZE {
        return Err(CodecError::PacketTooLarge(total));
    }
    if buf.len() < total {
        return Ok(None);
    }
    let first = buf[0];
    let frame = buf.split_to(total).freeze();
    let mut body = frame.slice(1 + hdr_extra..);
    let ptype = first >> 4;
    let flags = first & 0x0F;

    let packet = match ptype {
        1 => {
            let proto = get_string(&mut body)?;
            if proto != "MQTT" && proto != "MQIsdp" {
                return Err(CodecError::Malformed("bad protocol name"));
            }
            if body.remaining() < 4 {
                return Err(CodecError::Malformed("truncated CONNECT"));
            }
            let _level = body.get_u8();
            let cflags = body.get_u8();
            let keep_alive = body.get_u16();
            let client_id = get_string(&mut body)?;
            let will = if cflags & 0x04 != 0 {
                let topic = get_string(&mut body)?;
                let plen = get_u16(&mut body)? as usize;
                if body.remaining() < plen {
                    return Err(CodecError::Malformed("truncated will payload"));
                }
                let payload = body.split_to(plen);
                Some(LastWill {
                    topic,
                    payload,
                    qos: QoS::from_bits((cflags >> 3) & 0x03)?,
                    retain: cflags & 0x20 != 0,
                })
            } else {
                None
            };
            let username = if cflags & 0x80 != 0 { Some(get_string(&mut body)?) } else { None };
            let password = if cflags & 0x40 != 0 {
                let plen = get_u16(&mut body)? as usize;
                if body.remaining() < plen {
                    return Err(CodecError::Malformed("truncated password"));
                }
                Some(body.split_to(plen))
            } else {
                None
            };
            Packet::Connect {
                client_id,
                keep_alive,
                clean_session: cflags & 0x02 != 0,
                will,
                username,
                password,
            }
        }
        2 => {
            if body.remaining() < 2 {
                return Err(CodecError::Malformed("truncated CONNACK"));
            }
            let sp = body.get_u8() & 0x01 != 0;
            let code = ConnectReturnCode::from_u8(body.get_u8())?;
            Packet::Connack { session_present: sp, code }
        }
        3 => {
            let qos = QoS::from_bits((flags >> 1) & 0x03)?;
            let topic = get_string(&mut body)?;
            let pid = if qos != QoS::AtMostOnce { Some(get_u16(&mut body)?) } else { None };
            Packet::Publish {
                topic,
                payload: body,
                qos,
                retain: flags & 0x01 != 0,
                dup: flags & 0x08 != 0,
                pid,
            }
        }
        4 => Packet::Puback { pid: get_u16(&mut body)? },
        5 => Packet::Pubrec { pid: get_u16(&mut body)? },
        6 => Packet::Pubrel { pid: get_u16(&mut body)? },
        7 => Packet::Pubcomp { pid: get_u16(&mut body)? },
        8 => {
            let pid = get_u16(&mut body)?;
            let mut filters = Vec::new();
            while body.has_remaining() {
                let f = get_string(&mut body)?;
                if !body.has_remaining() {
                    return Err(CodecError::Malformed("subscribe filter missing QoS"));
                }
                let q = QoS::from_bits(body.get_u8() & 0x03)?;
                filters.push((f, q));
            }
            if filters.is_empty() {
                return Err(CodecError::Malformed("SUBSCRIBE without filters"));
            }
            Packet::Subscribe { pid, filters }
        }
        9 => {
            let pid = get_u16(&mut body)?;
            let return_codes = body.to_vec();
            Packet::Suback { pid, return_codes }
        }
        10 => {
            let pid = get_u16(&mut body)?;
            let mut filters = Vec::new();
            while body.has_remaining() {
                filters.push(get_string(&mut body)?);
            }
            Packet::Unsubscribe { pid, filters }
        }
        11 => Packet::Unsuback { pid: get_u16(&mut body)? },
        12 => Packet::Pingreq,
        13 => Packet::Pingresp,
        14 => Packet::Disconnect,
        _ => return Err(CodecError::Malformed("reserved packet type")),
    };
    Ok(Some(packet))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(p: Packet) {
        let mut buf = BytesMut::new();
        encode_packet(&p, &mut buf).unwrap();
        let got = decode_packet(&mut buf).unwrap().unwrap();
        assert_eq!(got, p);
        assert!(buf.is_empty(), "decoder must consume the whole frame");
    }

    #[test]
    fn roundtrip_connect_minimal() {
        roundtrip(Packet::Connect {
            client_id: "pusher-node42".into(),
            keep_alive: 60,
            clean_session: true,
            will: None,
            username: None,
            password: None,
        });
    }

    #[test]
    fn roundtrip_connect_full() {
        roundtrip(Packet::Connect {
            client_id: "c".into(),
            keep_alive: 0,
            clean_session: false,
            will: Some(LastWill {
                topic: "/dead/pusher".into(),
                payload: Bytes::from_static(b"gone"),
                qos: QoS::AtLeastOnce,
                retain: true,
            }),
            username: Some("admin".into()),
            password: Some(Bytes::from_static(b"s3cret")),
        });
    }

    #[test]
    fn roundtrip_connack() {
        roundtrip(Packet::Connack { session_present: true, code: ConnectReturnCode::Accepted });
        roundtrip(Packet::Connack {
            session_present: false,
            code: ConnectReturnCode::NotAuthorized,
        });
    }

    #[test]
    fn roundtrip_publish_qos0() {
        roundtrip(Packet::Publish {
            topic: "/lrz/sys/node0/power".into(),
            payload: Bytes::from_static(&[0u8; 16]),
            qos: QoS::AtMostOnce,
            retain: false,
            dup: false,
            pid: None,
        });
    }

    #[test]
    fn roundtrip_publish_qos1_flags() {
        roundtrip(Packet::Publish {
            topic: "/t".into(),
            payload: Bytes::from_static(b"x"),
            qos: QoS::AtLeastOnce,
            retain: true,
            dup: true,
            pid: Some(777),
        });
    }

    #[test]
    fn roundtrip_acks_and_pings() {
        roundtrip(Packet::Puback { pid: 1 });
        roundtrip(Packet::Pubrec { pid: 2 });
        roundtrip(Packet::Pubrel { pid: 3 });
        roundtrip(Packet::Pubcomp { pid: 4 });
        roundtrip(Packet::Unsuback { pid: 5 });
        roundtrip(Packet::Pingreq);
        roundtrip(Packet::Pingresp);
        roundtrip(Packet::Disconnect);
    }

    #[test]
    fn roundtrip_subscribe() {
        roundtrip(Packet::Subscribe {
            pid: 10,
            filters: vec![("/a/#".into(), QoS::AtLeastOnce), ("/b/+/c".into(), QoS::AtMostOnce)],
        });
        roundtrip(Packet::Suback { pid: 10, return_codes: vec![1, 0, 0x80] });
        roundtrip(Packet::Unsubscribe { pid: 11, filters: vec!["/a/#".into()] });
    }

    #[test]
    fn incremental_decode() {
        let mut full = BytesMut::new();
        encode_packet(
            &Packet::Publish {
                topic: "/x".into(),
                payload: Bytes::from(vec![7u8; 300]),
                qos: QoS::AtMostOnce,
                retain: false,
                dup: false,
                pid: None,
            },
            &mut full,
        )
        .unwrap();
        // feed byte by byte; must return None until the frame is complete
        let mut partial = BytesMut::new();
        let total = full.len();
        for (i, b) in full.iter().enumerate() {
            partial.put_u8(*b);
            let r = decode_packet(&mut partial).unwrap();
            if i + 1 < total {
                assert!(r.is_none(), "decoded early at byte {i}");
            } else {
                assert!(r.is_some());
            }
        }
    }

    #[test]
    fn two_packets_back_to_back() {
        let mut buf = BytesMut::new();
        encode_packet(&Packet::Pingreq, &mut buf).unwrap();
        encode_packet(&Packet::Puback { pid: 9 }, &mut buf).unwrap();
        assert_eq!(decode_packet(&mut buf).unwrap(), Some(Packet::Pingreq));
        assert_eq!(decode_packet(&mut buf).unwrap(), Some(Packet::Puback { pid: 9 }));
        assert_eq!(decode_packet(&mut buf).unwrap(), None);
    }

    #[test]
    fn remaining_length_boundaries() {
        // payload sizes crossing the 1/2/3-byte remaining-length boundaries
        for size in [0usize, 127 - 4, 128, 16383, 16384, 100_000] {
            let p = Packet::Publish {
                topic: "/t".into(),
                payload: Bytes::from(vec![0u8; size]),
                qos: QoS::AtMostOnce,
                retain: false,
                dup: false,
                pid: None,
            };
            let mut buf = BytesMut::new();
            encode_packet(&p, &mut buf).unwrap();
            assert_eq!(decode_packet(&mut buf).unwrap(), Some(p));
        }
    }

    #[test]
    fn rejects_garbage() {
        let mut buf = BytesMut::from(&[0x00u8, 0x00][..]);
        assert!(decode_packet(&mut buf).is_err());
        let mut buf = BytesMut::from(&[0xF0u8, 0x00][..]);
        assert!(decode_packet(&mut buf).is_err());
    }

    #[test]
    fn rejects_qos3_publish() {
        // 0x36 = publish with QoS bits 11
        let mut buf = BytesMut::from(&[0x36u8, 0x03, 0x00, 0x01, b'a'][..]);
        assert!(decode_packet(&mut buf).is_err());
    }

    #[test]
    fn qos1_publish_without_pid_fails_to_encode() {
        let p = Packet::Publish {
            topic: "/t".into(),
            payload: Bytes::new(),
            qos: QoS::AtLeastOnce,
            retain: false,
            dup: false,
            pid: None,
        };
        let mut buf = BytesMut::new();
        assert!(encode_packet(&p, &mut buf).is_err());
    }

    #[test]
    fn invalid_utf8_topic_rejected() {
        // hand-craft publish with invalid UTF-8 topic
        let mut buf = BytesMut::new();
        buf.put_u8(0x30);
        buf.put_u8(4); // remaining
        buf.put_u16(2);
        buf.put_slice(&[0xFF, 0xFE]);
        assert_eq!(decode_packet(&mut buf), Err(CodecError::InvalidUtf8));
    }
}
