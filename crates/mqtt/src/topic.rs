//! MQTT topic filters and wildcard matching.
//!
//! Filters may contain `+` (matches exactly one level) and a trailing `#`
//! (matches any number of remaining levels, including zero).  DCDB's Storage
//! Backend subscriber uses the catch-all `#` filter; the rules here follow
//! MQTT 3.1.1 §4.7.

/// Validate a subscription filter.
///
/// `+` must occupy a whole level; `#` must occupy a whole level *and* be
/// last.  Empty filters are invalid; empty levels (`a//b`) are allowed by the
/// MQTT spec but rejected here for consistency with DCDB topics.
pub fn is_valid_filter(filter: &str) -> bool {
    if filter.is_empty() {
        return false;
    }
    let trimmed = filter.strip_prefix('/').unwrap_or(filter);
    if trimmed.is_empty() {
        return false;
    }
    let levels: Vec<&str> = trimmed.split('/').collect();
    for (i, level) in levels.iter().enumerate() {
        if level.is_empty() {
            return false;
        }
        if level.contains('#') && (*level != "#" || i != levels.len() - 1) {
            return false;
        }
        if level.contains('+') && *level != "+" {
            return false;
        }
    }
    true
}

/// Does `filter` match the concrete `topic`?
///
/// Both are interpreted with an optional leading `/` stripped, matching the
/// convention used throughout dcdb-rs.
pub fn filter_matches(filter: &str, topic: &str) -> bool {
    let f = filter.strip_prefix('/').unwrap_or(filter);
    let t = topic.strip_prefix('/').unwrap_or(topic);
    let mut fl = f.split('/');
    let mut tl = t.split('/');
    loop {
        match (fl.next(), tl.next()) {
            (Some("#"), _) => return true,
            (Some("+"), Some(_)) => continue,
            (Some(fseg), Some(tseg)) if fseg == tseg => continue,
            (None, None) => return true,
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_filters() {
        for f in ["#", "/#", "/a/#", "+", "/a/+/b", "/a/b/c", "a/b"] {
            assert!(is_valid_filter(f), "{f} should be valid");
        }
    }

    #[test]
    fn invalid_filters() {
        for f in ["", "/", "/a//b", "/a/#/b", "/a#", "/a+/b", "/#x"] {
            assert!(!is_valid_filter(f), "{f} should be invalid");
        }
    }

    #[test]
    fn exact_match() {
        assert!(filter_matches("/a/b/c", "/a/b/c"));
        assert!(filter_matches("a/b/c", "/a/b/c"));
        assert!(!filter_matches("/a/b", "/a/b/c"));
        assert!(!filter_matches("/a/b/c", "/a/b"));
    }

    #[test]
    fn plus_matches_one_level() {
        assert!(filter_matches("/a/+/c", "/a/b/c"));
        assert!(filter_matches("/+/b/c", "/a/b/c"));
        assert!(!filter_matches("/a/+", "/a/b/c"));
        assert!(filter_matches("/a/+", "/a/x"));
    }

    #[test]
    fn hash_matches_subtree() {
        assert!(filter_matches("#", "/anything/at/all"));
        assert!(filter_matches("/a/#", "/a/b/c"));
        assert!(filter_matches("/a/#", "/a"));
        assert!(!filter_matches("/a/#", "/b/a"));
    }

    #[test]
    fn mixed_wildcards() {
        assert!(filter_matches("/s/+/node0/#", "/s/rack1/node0/cpu0/instr"));
        assert!(!filter_matches("/s/+/node0/#", "/s/rack1/node1/cpu0/instr"));
    }
}
