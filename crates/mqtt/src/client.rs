//! A blocking MQTT 3.1.1 client.
//!
//! This is the Pusher side of the transport: QoS 0/1 publishing, keep-alive
//! pings and automatic reconnection, mirroring the role the Mosquitto
//! library plays in the C++ implementation (paper §4.1).  Incoming publishes
//! (when the client subscribes) are dispatched to a user callback from a
//! background reader thread.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU16, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::codec::{decode_packet, encode_packet, Packet, QoS};

/// Client configuration.
#[derive(Clone)]
pub struct ClientConfig {
    /// Broker address.
    pub broker: SocketAddr,
    /// MQTT client identifier.
    pub client_id: String,
    /// Keep-alive interval (seconds granularity on the wire).
    pub keep_alive: Duration,
    /// How long QoS 1 publishes wait for their PUBACK.
    pub ack_timeout: Duration,
    /// Number of reconnect attempts before a publish fails.
    pub max_reconnects: u32,
}

impl ClientConfig {
    /// Reasonable defaults for `broker`.
    pub fn new(broker: SocketAddr, client_id: impl Into<String>) -> Self {
        ClientConfig {
            broker,
            client_id: client_id.into(),
            keep_alive: Duration::from_secs(60),
            ack_timeout: Duration::from_secs(5),
            max_reconnects: 3,
        }
    }
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure after exhausting reconnect attempts.
    Io(std::io::Error),
    /// The broker rejected the connection.
    Rejected,
    /// A QoS 1 publish was not acknowledged within the timeout.
    AckTimeout,
    /// The client has been closed.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Rejected => write!(f, "connection rejected by broker"),
            ClientError::AckTimeout => write!(f, "PUBACK timeout"),
            ClientError::Closed => write!(f, "client closed"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Callback for received publishes: `(topic, payload)`.
pub type MessageCallback = Arc<dyn Fn(&str, &Bytes) + Send + Sync>;

struct Conn {
    stream: TcpStream,
    reader_stop: Arc<AtomicBool>,
}

/// Counters for the evaluation harness.
#[derive(Debug, Default)]
pub struct ClientStats {
    /// PUBLISH packets sent.
    pub published: AtomicU64,
    /// Payload bytes sent.
    pub published_bytes: AtomicU64,
    /// Reconnections performed.
    pub reconnects: AtomicU64,
}

/// The blocking client.
pub struct Client {
    cfg: ClientConfig,
    conn: Mutex<Option<Conn>>,
    next_pid: AtomicU16,
    acks: Receiver<u16>,
    acks_tx: Sender<u16>,
    on_message: Arc<Mutex<Option<MessageCallback>>>,
    stats: ClientStats,
    closed: AtomicBool,
}

impl Client {
    /// Connect to the broker.
    ///
    /// # Errors
    /// Fails when the TCP connection or the MQTT handshake fails.
    pub fn connect(cfg: ClientConfig) -> Result<Arc<Client>, ClientError> {
        let (acks_tx, acks) = bounded(1024);
        let client = Arc::new(Client {
            cfg,
            conn: Mutex::new(None),
            next_pid: AtomicU16::new(1),
            acks,
            acks_tx,
            on_message: Arc::new(Mutex::new(None)),
            stats: ClientStats::default(),
            closed: AtomicBool::new(false),
        });
        client.reconnect_locked(&mut client.conn.lock())?;
        Ok(client)
    }

    /// Register a callback for publishes delivered to this client.
    pub fn on_message(&self, cb: MessageCallback) {
        *self.on_message.lock() = Some(cb);
    }

    /// Client statistics.
    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    fn handshake(&self, stream: &mut TcpStream) -> Result<(), ClientError> {
        let mut out = BytesMut::new();
        encode_packet(
            &Packet::Connect {
                client_id: self.cfg.client_id.clone(),
                keep_alive: self.cfg.keep_alive.as_secs().min(u16::MAX as u64) as u16,
                clean_session: true,
                will: None,
                username: None,
                password: None,
            },
            &mut out,
        )
        .expect("CONNECT always encodes");
        stream.write_all(&out)?;
        // Wait for CONNACK synchronously.
        let mut buf = BytesMut::new();
        let mut chunk = [0u8; 1024];
        let deadline = Instant::now() + self.cfg.ack_timeout;
        stream.set_read_timeout(Some(Duration::from_millis(50)))?;
        loop {
            if let Some(pkt) = decode_packet(&mut buf)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?
            {
                return match pkt {
                    Packet::Connack { code: crate::codec::ConnectReturnCode::Accepted, .. } => {
                        Ok(())
                    }
                    Packet::Connack { .. } => Err(ClientError::Rejected),
                    _ => Err(ClientError::Rejected),
                };
            }
            if Instant::now() > deadline {
                return Err(ClientError::AckTimeout);
            }
            match stream.read(&mut chunk) {
                Ok(0) => return Err(ClientError::Rejected),
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn reconnect_locked(&self, slot: &mut Option<Conn>) -> Result<(), ClientError> {
        if let Some(old) = slot.take() {
            old.reader_stop.store(true, Ordering::SeqCst);
        }
        let mut last_err: Option<ClientError> = None;
        for attempt in 0..=self.cfg.max_reconnects {
            if attempt > 0 {
                self.stats.reconnects.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(20 * attempt as u64));
            }
            match TcpStream::connect(self.cfg.broker) {
                Ok(mut stream) => {
                    stream.set_nodelay(true).ok();
                    match self.handshake(&mut stream) {
                        Ok(()) => {
                            let reader_stop = Arc::new(AtomicBool::new(false));
                            self.spawn_reader(stream.try_clone()?, Arc::clone(&reader_stop));
                            *slot = Some(Conn { stream, reader_stop });
                            return Ok(());
                        }
                        Err(e) => last_err = Some(e),
                    }
                }
                Err(e) => last_err = Some(e.into()),
            }
        }
        Err(last_err.unwrap_or(ClientError::Closed))
    }

    fn spawn_reader(&self, mut stream: TcpStream, stop: Arc<AtomicBool>) {
        let acks_tx = self.acks_tx.clone();
        // The callback is looked up per message so it can be registered or
        // swapped after the connection is already up.
        let cb_slot = Arc::clone(&self.on_message);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
        std::thread::Builder::new()
            .name("mqtt-client-reader".into())
            .spawn(move || {
                let mut buf = BytesMut::new();
                let mut chunk = [0u8; 16 * 1024];
                loop {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    while let Ok(Some(pkt)) = decode_packet(&mut buf) {
                        match pkt {
                            Packet::Puback { pid } => {
                                let _ = acks_tx.try_send(pid);
                            }
                            Packet::Publish { topic, payload, .. } => {
                                if let Some(cb) = cb_slot.lock().as_ref() {
                                    cb(&topic, &payload);
                                }
                            }
                            _ => {}
                        }
                    }
                    match stream.read(&mut chunk) {
                        Ok(0) => return,
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut => {}
                        Err(_) => return,
                    }
                }
            })
            .expect("spawn reader");
    }

    fn send_packet(&self, packet: &Packet) -> Result<(), ClientError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(ClientError::Closed);
        }
        let mut out = BytesMut::new();
        encode_packet(packet, &mut out)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        // lint: allow(lock-across-slow-op) -- the connection mutex serialises
        // whole frames onto the socket and guards reconnect; writing outside
        // it would interleave packets from concurrent senders
        let mut conn = self.conn.lock();
        for _ in 0..2 {
            if conn.is_none() {
                self.reconnect_locked(&mut conn)?;
            }
            let stream = &mut conn.as_mut().expect("just reconnected").stream;
            match stream.write_all(&out) {
                Ok(()) => return Ok(()),
                Err(_) => {
                    // drop the broken connection and retry once
                    if let Some(old) = conn.take() {
                        old.reader_stop.store(true, Ordering::SeqCst);
                    }
                }
            }
        }
        Err(ClientError::Closed)
    }

    /// Publish with QoS 0 (fire and forget) — DCDB's hot path.
    pub fn publish_qos0(&self, topic: &str, payload: &[u8]) -> Result<(), ClientError> {
        self.send_packet(&Packet::Publish {
            topic: topic.to_string(),
            payload: Bytes::copy_from_slice(payload),
            qos: QoS::AtMostOnce,
            retain: false,
            dup: false,
            pid: None,
        })?;
        self.stats.published.fetch_add(1, Ordering::Relaxed);
        self.stats.published_bytes.fetch_add(payload.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Publish with QoS 1 and wait for the PUBACK.
    pub fn publish_qos1(&self, topic: &str, payload: &[u8]) -> Result<(), ClientError> {
        let pid = self.next_pid.fetch_add(1, Ordering::Relaxed).max(1);
        self.send_packet(&Packet::Publish {
            topic: topic.to_string(),
            payload: Bytes::copy_from_slice(payload),
            qos: QoS::AtLeastOnce,
            retain: false,
            dup: false,
            pid: Some(pid),
        })?;
        self.stats.published.fetch_add(1, Ordering::Relaxed);
        self.stats.published_bytes.fetch_add(payload.len() as u64, Ordering::Relaxed);
        let deadline = Instant::now() + self.cfg.ack_timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(ClientError::AckTimeout);
            }
            match self.acks.recv_timeout(deadline - now) {
                Ok(got) if got == pid => return Ok(()),
                Ok(_) => continue, // ack for an earlier pid
                Err(_) => return Err(ClientError::AckTimeout),
            }
        }
    }

    /// Subscribe to `filters` (requires a broker with subscriptions enabled).
    pub fn subscribe(&self, filters: &[(&str, QoS)]) -> Result<(), ClientError> {
        let pid = self.next_pid.fetch_add(1, Ordering::Relaxed).max(1);
        self.send_packet(&Packet::Subscribe {
            pid,
            filters: filters.iter().map(|(f, q)| (f.to_string(), *q)).collect(),
        })
    }

    /// Send a keep-alive ping.
    pub fn ping(&self) -> Result<(), ClientError> {
        self.send_packet(&Packet::Pingreq)
    }

    /// Cleanly disconnect.
    pub fn disconnect(&self) {
        let _ = self.send_packet(&Packet::Disconnect);
        self.closed.store(true, Ordering::SeqCst);
        if let Some(conn) = self.conn.lock().take() {
            conn.reader_stop.store(true, Ordering::SeqCst);
        }
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        if !self.closed.load(Ordering::SeqCst) {
            self.disconnect();
        }
    }
}
