//! Per-query trace spans.
//!
//! When a query opts in (`QueryRequest::trace`), the execution path builds
//! a tree of [`TraceSpan`]s — one per stage (plan, fetch/fold, group
//! merge, finalize) — each carrying wall time and a small bag of counters
//! (blocks decoded, cache hits/misses, readings folded).  The tree rides
//! back in the `QueryResponse` and renders as the `dcdbquery --explain`
//! output.
//!
//! Tracing never changes results: the traced execution path performs the
//! same merges in the same order as the untraced one, so aggregates stay
//! bit-identical.

use std::fmt::Write as _;
use std::time::Instant;

/// One timed stage of a query, possibly with child stages.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceSpan {
    /// Stage name, e.g. `"plan"`, `"fold"`, `"group:rack0"`, `"chunk:0"`.
    pub stage: String,
    /// Wall-clock duration of the stage in nanoseconds.
    pub wall_ns: u64,
    /// Named counters observed during the stage (deltas, not totals),
    /// e.g. `("blocks_decoded", 12)`, `("cache_hits", 9)`.
    pub meta: Vec<(String, u64)>,
    /// Nested stages, in execution order.
    pub children: Vec<TraceSpan>,
}

impl TraceSpan {
    /// An empty span with the given stage name.
    pub fn new(stage: impl Into<String>) -> TraceSpan {
        TraceSpan { stage: stage.into(), ..TraceSpan::default() }
    }

    /// Time `f` and return its result alongside the finished span.
    pub fn time<T>(
        stage: impl Into<String>,
        f: impl FnOnce(&mut TraceSpan) -> T,
    ) -> (T, TraceSpan) {
        let mut span = TraceSpan::new(stage);
        let t0 = Instant::now();
        let out = f(&mut span);
        span.wall_ns = t0.elapsed().as_nanos() as u64;
        (out, span)
    }

    /// Attach a named counter value to this span.
    pub fn put(&mut self, key: impl Into<String>, value: u64) {
        self.meta.push((key.into(), value));
    }

    /// Look up a counter on this span by name.
    pub fn get(&self, key: &str) -> Option<u64> {
        self.meta.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }

    /// Add a child span (kept in execution order).
    pub fn push_child(&mut self, child: TraceSpan) {
        self.children.push(child);
    }

    /// Total number of spans in the tree, including `self`.
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(TraceSpan::span_count).sum::<usize>()
    }

    /// Render the tree as indented text, one span per line:
    ///
    /// ```text
    /// query                        1204.3us
    ///   plan                          8.1us
    ///   fold                       1180.0us  blocks_decoded=42 cache_hits=40
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let _ = write!(out, "{:indent$}{}", "", self.stage, indent = depth * 2);
        // pad stage names so durations line up for shallow trees
        let used = depth * 2 + self.stage.len();
        let pad = 32usize.saturating_sub(used).max(1);
        let _ = write!(out, "{:pad$}{:>10.1}us", "", self.wall_ns as f64 / 1_000.0);
        for (k, v) in &self.meta {
            let _ = write!(out, " {k}={v}");
        }
        out.push('\n');
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_captures_duration_and_result() {
        let (out, span) = TraceSpan::time("work", |s| {
            s.put("items", 3);
            7u32
        });
        assert_eq!(out, 7);
        assert_eq!(span.stage, "work");
        assert_eq!(span.get("items"), Some(3));
        assert_eq!(span.get("missing"), None);
    }

    #[test]
    fn render_shows_tree_and_meta() {
        let mut root = TraceSpan::new("query");
        root.wall_ns = 1_204_300;
        let mut fold = TraceSpan::new("fold");
        fold.wall_ns = 1_180_000;
        fold.put("blocks_decoded", 42);
        root.push_child(TraceSpan { stage: "plan".into(), wall_ns: 8_100, ..Default::default() });
        root.push_child(fold);
        assert_eq!(root.span_count(), 3);
        let text = root.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("query"));
        assert!(lines[1].trim_start().starts_with("plan"));
        assert!(lines[2].contains("blocks_decoded=42"));
        assert!(lines[2].contains("1180.0us"));
    }
}
