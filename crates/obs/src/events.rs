//! The structured event journal and the slow-query log.
//!
//! Metrics (the [`registry`](crate::registry)) answer *how much*; the
//! journal answers *what happened*.  Every notable state change — an alert
//! transition, a flush failure, a corrupt block, a backpressure stall, a
//! config change — is recorded as a typed [`EventRecord`] in a bounded
//! ring.  Records carry a strictly increasing sequence number, so a poller
//! (`GET /events?since=<seq>`) can resume exactly where it left off and
//! detect loss: when the ring overflows, the *oldest* records are dropped
//! and the drop count is surfaced.
//!
//! The [`SlowQueryLog`] is the same idea for the query path: when armed
//! with a latency threshold, `execute()` deposits the full
//! [`TraceSpan`] tree of every offending query into a
//! ring of the last N offenders (`GET /debug/slow_queries`).
//!
//! Both rings live on the [`Registry`](crate::Registry) — one per store
//! cluster — so every layer that can already reach the metrics can reach
//! the journal without new plumbing.  Writes take a plain mutex: events
//! are rare by construction (they mark *exceptional* conditions), so the
//! ring is never on a hot path; the sequence number is assigned inside the
//! critical section, which is what makes `since()` loss-detection exact.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
// lint: allow(std-sync-lock) -- dcdb-obs is dependency-free by design (see
// the crate docs): the instrumentation layer must not depend on the code
// it instruments, vendored stubs included
use std::sync::Mutex;

use crate::trace::TraceSpan;

/// How loud an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Expected state changes (config loaded, alert resolved).
    Info,
    /// Degraded but functioning (stall, alert pending/firing).
    Warning,
    /// Data at risk (flush failure, corrupt block).
    Error,
}

impl Severity {
    /// Lowercase wire name (`"info"` / `"warning"` / `"error"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// What class of thing happened.  The set is closed on purpose: consumers
/// (the self-monitor's `events_*` sensors, dashboards keying on `kind`)
/// rely on a stable, enumerable vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An alert rule instance changed state (pending / firing / resolved).
    AlertTransition,
    /// A memtable flush failed.
    FlushFailed,
    /// A compaction merge was aborted.
    CompactionAborted,
    /// An SSTable block failed checksum/decode.
    CorruptBlock,
    /// A writer stalled on the bounded flush backlog.
    BackpressureStall,
    /// Runtime configuration changed (rules loaded, thresholds set).
    ConfigChange,
    /// The runtime lock tracker observed an acquisition order that closes a
    /// cycle in the lock-order graph (`lock-trace` feature).
    LockOrderCycle,
}

impl EventKind {
    /// Snake-case wire name, stable across releases.
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::AlertTransition => "alert_transition",
            EventKind::FlushFailed => "flush_failed",
            EventKind::CompactionAborted => "compaction_aborted",
            EventKind::CorruptBlock => "corrupt_block",
            EventKind::BackpressureStall => "backpressure_stall",
            EventKind::ConfigChange => "config_change",
            EventKind::LockOrderCycle => "lock_order_cycle",
        }
    }
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Strictly increasing per journal, never reused.  `since(seq)`
    /// returns records with a seq **greater** than the argument.
    pub seq: u64,
    /// Unix timestamp in nanoseconds at record time.
    pub ts_unix_ns: i64,
    /// Event class.
    pub kind: EventKind,
    /// Severity.
    pub severity: Severity,
    /// What the event is about: a sensor topic, an alert rule name, a
    /// store-node index — whatever identifies the subject.
    pub subject: String,
    /// Human-readable detail.
    pub message: String,
}

struct JournalInner {
    buf: VecDeque<EventRecord>,
    next_seq: u64,
    dropped: u64,
}

/// Bounded ring of [`EventRecord`]s with exact resume semantics.
pub struct EventJournal {
    capacity: usize,
    /// Total records ever accepted — mirrored outside the lock so metric
    /// callbacks can scrape without contending with writers.
    total: AtomicU64,
    dropped: AtomicU64,
    inner: Mutex<JournalInner>,
}

impl std::fmt::Debug for EventJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventJournal")
            .field("capacity", &self.capacity)
            .field("total", &self.total_recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl EventJournal {
    /// A journal holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> EventJournal {
        let capacity = capacity.max(1);
        EventJournal {
            capacity,
            total: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            inner: Mutex::new(JournalInner {
                buf: VecDeque::with_capacity(capacity),
                next_seq: 1,
                dropped: 0,
            }),
        }
    }

    /// Maximum records retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append one event with the current wall-clock timestamp; returns the
    /// assigned sequence number.
    pub fn record(
        &self,
        kind: EventKind,
        severity: Severity,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> u64 {
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as i64)
            .unwrap_or(0);
        self.record_at(ts, kind, severity, subject, message)
    }

    /// Append one event with an explicit timestamp (deterministic tests,
    /// replayed streams).  Returns the assigned sequence number.
    pub fn record_at(
        &self,
        ts_unix_ns: i64,
        kind: EventKind,
        severity: Severity,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> u64 {
        let mut inner = self.inner.lock().expect("event journal");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        inner.buf.push_back(EventRecord {
            seq,
            ts_unix_ns,
            kind,
            severity,
            subject: subject.into(),
            message: message.into(),
        });
        self.total.fetch_add(1, Ordering::Relaxed);
        seq
    }

    /// All retained records with `seq > since`, oldest first.  Passing the
    /// `seq` of the last record seen resumes without duplicates; passing
    /// `0` returns everything retained.
    pub fn since(&self, since: u64) -> Vec<EventRecord> {
        let inner = self.inner.lock().expect("event journal");
        let start = inner.buf.partition_point(|r| r.seq <= since);
        inner.buf.iter().skip(start).cloned().collect()
    }

    /// The most recent `n` records, oldest first.
    pub fn recent(&self, n: usize) -> Vec<EventRecord> {
        let inner = self.inner.lock().expect("event journal");
        let skip = inner.buf.len().saturating_sub(n);
        inner.buf.iter().skip(skip).cloned().collect()
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("event journal").buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total records ever accepted (including since-dropped ones).
    pub fn total_recorded(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Records lost to ring overflow (oldest-first).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Highest sequence number assigned so far (0 = none yet).
    pub fn last_seq(&self) -> u64 {
        self.inner.lock().expect("event journal").next_seq - 1
    }
}

/// One captured offender in the [`SlowQueryLog`].
#[derive(Debug, Clone, PartialEq)]
pub struct SlowQuery {
    /// Strictly increasing capture number (shares overflow semantics with
    /// the journal: oldest entries fall out first).
    pub seq: u64,
    /// Unix timestamp in nanoseconds at capture time.
    pub ts_unix_ns: i64,
    /// Total query wall time in nanoseconds.
    pub total_ns: u64,
    /// One-line description of the request (target, range, aggregation).
    pub summary: String,
    /// The full span tree of the offending execution.
    pub trace: TraceSpan,
}

struct SlowLogInner {
    buf: VecDeque<SlowQuery>,
    next_seq: u64,
}

/// Ring of the last N queries that exceeded the latency threshold.
///
/// Disarmed (`threshold_ns == 0`, the default) it costs one relaxed atomic
/// load per query; armed, the query path traces every execution and
/// deposits offenders here.
pub struct SlowQueryLog {
    capacity: usize,
    /// 0 = disarmed.  Relaxed atomic so `execute()` checks it without
    /// locking.
    threshold_ns: AtomicU64,
    inner: Mutex<SlowLogInner>,
}

impl std::fmt::Debug for SlowQueryLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowQueryLog")
            .field("capacity", &self.capacity)
            .field("threshold_ns", &self.threshold_ns())
            .field("len", &self.len())
            .finish()
    }
}

impl SlowQueryLog {
    /// A disarmed log retaining at most `capacity` offenders (min 1).
    pub fn new(capacity: usize) -> SlowQueryLog {
        let capacity = capacity.max(1);
        SlowQueryLog {
            capacity,
            threshold_ns: AtomicU64::new(0),
            inner: Mutex::new(SlowLogInner { buf: VecDeque::with_capacity(capacity), next_seq: 1 }),
        }
    }

    /// Maximum offenders retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current latency threshold in nanoseconds (0 = disarmed).
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns.load(Ordering::Relaxed)
    }

    /// Arm (non-zero) or disarm (0) the log.
    pub fn set_threshold_ns(&self, ns: u64) {
        self.threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// True when a threshold is set.
    pub fn armed(&self) -> bool {
        self.threshold_ns() > 0
    }

    /// Deposit one offender (caller has already compared against the
    /// threshold).  Returns the assigned capture number.
    pub fn record(&self, total_ns: u64, summary: impl Into<String>, trace: TraceSpan) -> u64 {
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as i64)
            .unwrap_or(0);
        let mut inner = self.inner.lock().expect("slow query log");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
        }
        inner.buf.push_back(SlowQuery {
            seq,
            ts_unix_ns: ts,
            total_ns,
            summary: summary.into(),
            trace,
        });
        seq
    }

    /// Retained offenders, oldest first.
    pub fn entries(&self) -> Vec<SlowQuery> {
        self.inner.lock().expect("slow query log").buf.iter().cloned().collect()
    }

    /// Offenders currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("slow query log").buf.len()
    }

    /// True when no offender has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total offenders ever captured.
    pub fn total_captured(&self) -> u64 {
        self.inner.lock().expect("slow query log").next_seq - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqs_are_strictly_increasing_and_since_resumes() {
        let j = EventJournal::new(8);
        let a = j.record(EventKind::ConfigChange, Severity::Info, "rules", "loaded");
        let b = j.record(EventKind::BackpressureStall, Severity::Warning, "node0", "stalled");
        assert!(b > a);
        let all = j.since(0);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].seq, a);
        let tail = j.since(a);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].seq, b);
        assert!(j.since(b).is_empty());
        assert_eq!(j.last_seq(), b);
    }

    #[test]
    fn overflow_drops_oldest_first_and_counts() {
        let j = EventJournal::new(3);
        for i in 0..5 {
            j.record_at(i, EventKind::CorruptBlock, Severity::Error, "node0", format!("blk {i}"));
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 2);
        assert_eq!(j.total_recorded(), 5);
        let kept = j.since(0);
        assert_eq!(kept.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![3, 4, 5]);
        // the two oldest are gone: asking for them returns what's left
        assert_eq!(j.since(1).len(), 3);
    }

    #[test]
    fn recent_returns_tail_in_order() {
        let j = EventJournal::new(8);
        for i in 0..4 {
            j.record_at(i, EventKind::ConfigChange, Severity::Info, "x", format!("{i}"));
        }
        let last2 = j.recent(2);
        assert_eq!(last2.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![3, 4]);
        assert_eq!(j.recent(99).len(), 4);
    }

    #[test]
    fn slow_log_arms_and_keeps_last_n() {
        let log = SlowQueryLog::new(2);
        assert!(!log.armed());
        log.set_threshold_ns(1_000);
        assert!(log.armed());
        for i in 0..3u64 {
            log.record(2_000 + i, format!("q{i}"), TraceSpan::new("query"));
        }
        let entries = log.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].summary, "q1");
        assert_eq!(entries[1].summary, "q2");
        assert_eq!(log.total_captured(), 3);
        assert!(entries[1].seq > entries[0].seq);
    }
}
