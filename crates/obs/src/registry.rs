//! The metrics registry: one name → instrument map per store cluster.
//!
//! Registration and scraping take the registry lock; the hot paths never
//! do — they resolve their instrument `Arc`s once (at node/agent
//! construction) and afterwards touch only the instruments' atomics.
//!
//! Besides owned instruments the registry accepts **callback** instruments
//! ([`Registry::func`]) that read a value computed elsewhere at scrape
//! time.  This is how pre-existing counters (per-node LSM stats, the block
//! decode counters) join `/metrics` without moving: the callback reads the
//! *same* atomics the legacy accessor reads, so the two surfaces cannot
//! disagree.
//!
//! ## Naming convention
//!
//! Names are Prometheus-style: `dcdb_<what>_total` for counters,
//! `dcdb_<what>` for gauges, `dcdb_<what>_ns` for latency histograms.  A
//! label set may be baked into the name (`dcdb_query_stage_ns{stage="plan"}`);
//! the renderer folds it into each exposition line and keeps the family
//! grouped.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
// lint: allow(std-sync-lock) -- dcdb-obs is dependency-free by design (see
// the crate docs): the instrumentation layer must not depend on the code
// it instruments, vendored stubs included
use std::sync::{Arc, RwLock};

use crate::events::{EventJournal, SlowQueryLog};
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

/// Default event-journal capacity for a registry's journal.
const EVENT_JOURNAL_CAPACITY: usize = 1024;
/// Default slow-query ring size for a registry's slow-query log.
const SLOW_QUERY_CAPACITY: usize = 32;

/// Exposition kind of a scalar instrument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotonically increasing.
    Counter,
    /// Moves both ways.
    Gauge,
}

enum Slot {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    Func(Kind, Box<dyn Fn() -> u64 + Send + Sync>),
}

/// One scraped value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter's current value.
    Counter(u64),
    /// A gauge's current value.
    Gauge(u64),
    /// A histogram's full snapshot.
    Histogram(HistogramSnapshot),
}

/// A point-in-time scrape of the whole registry, in name order.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs sorted by name.
    pub samples: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Look up one sample by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.samples.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }
}

/// The name → instrument map.  Create one per store cluster (a process may
/// host several independent clusters, so this is deliberately *not* a
/// global).
pub struct Registry {
    /// Cheap global toggle for the timed instrumentation; hot paths check
    /// it before calling `Instant::now`.  Shared as an `Arc` so leaf
    /// components can hold the flag without holding the registry (which
    /// would create reference cycles through callback instruments).
    enabled: Arc<AtomicBool>,
    slots: RwLock<BTreeMap<String, Slot>>,
    /// The cluster's structured event journal.  Anchored here — not as a
    /// slot — because it is not a scrapeable instrument; its counters
    /// (`total`/`dropped`) join `/metrics` as callback instruments where
    /// the owning layer chooses to register them.
    events: Arc<EventJournal>,
    /// Ring of the last N slow queries (armed via a latency threshold).
    slow_queries: Arc<SlowQueryLog>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.enabled())
            .field("instruments", &self.slots.read().map(|s| s.len()).unwrap_or(0))
            .finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            enabled: Arc::new(AtomicBool::new(true)),
            slots: RwLock::new(BTreeMap::new()),
            events: Arc::new(EventJournal::new(EVENT_JOURNAL_CAPACITY)),
            slow_queries: Arc::new(SlowQueryLog::new(SLOW_QUERY_CAPACITY)),
        }
    }
}

impl Registry {
    /// An empty, enabled registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Is timed instrumentation on?  Counters always count (one relaxed
    /// atomic add is cheaper than a branch worth protecting); this flag
    /// gates the `Instant::now` pairs around latency observations.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Toggle timed instrumentation (the `obs` bench's on/off arms).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// A clonable handle on the enabled flag for leaf components that must
    /// not hold the registry itself.
    pub fn enabled_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.enabled)
    }

    /// The cluster's structured event journal (see [`crate::events`]).
    pub fn events(&self) -> Arc<EventJournal> {
        Arc::clone(&self.events)
    }

    /// The cluster's slow-query log (see [`crate::events`]).
    pub fn slow_queries(&self) -> Arc<SlowQueryLog> {
        Arc::clone(&self.slow_queries)
    }

    /// Get or register the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut slots = self.slots.write().expect("obs registry");
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Counter(Arc::new(Counter::new())))
        {
            Slot::Counter(c) => Arc::clone(c),
            // lint: allow(no-unwrap) -- documented contract (`# Panics`): a
            // kind mismatch is a compile-time-style wiring bug, covered by a
            // #[should_panic] test
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Get or register the gauge `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut slots = self.slots.write().expect("obs registry");
        match slots.entry(name.to_string()).or_insert_with(|| Slot::Gauge(Arc::new(Gauge::new()))) {
            Slot::Gauge(g) => Arc::clone(g),
            // lint: allow(no-unwrap) -- documented contract, see counter()
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Get or register the histogram `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut slots = self.slots.write().expect("obs registry");
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Histogram(Arc::new(Histogram::new())))
        {
            Slot::Histogram(h) => Arc::clone(h),
            // lint: allow(no-unwrap) -- documented contract, see counter()
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Register a callback instrument: `f` is evaluated at scrape time.
    /// First registration wins; re-registering the same name is a no-op
    /// (idempotent wiring from multiple construction paths).
    ///
    /// Callbacks must not capture anything that (transitively) owns this
    /// registry, or the cycle leaks both.
    pub fn func(&self, name: &str, kind: Kind, f: impl Fn() -> u64 + Send + Sync + 'static) {
        let mut slots = self.slots.write().expect("obs registry");
        slots.entry(name.to_string()).or_insert_with(|| Slot::Func(kind, Box::new(f)));
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.slots.read().expect("obs registry").len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Scrape every instrument into an owned snapshot, in name order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let slots = self.slots.read().expect("obs registry");
        let samples = slots
            .iter()
            .map(|(name, slot)| {
                let value = match slot {
                    Slot::Counter(c) => MetricValue::Counter(c.get()),
                    Slot::Gauge(g) => MetricValue::Gauge(g.get()),
                    Slot::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    Slot::Func(Kind::Counter, f) => MetricValue::Counter(f()),
                    Slot::Func(Kind::Gauge, f) => MetricValue::Gauge(f()),
                };
                (name.clone(), value)
            })
            .collect();
        MetricsSnapshot { samples }
    }

    /// Render the whole registry as Prometheus text exposition (scalars as
    /// `counter`/`gauge` families, histograms as `summary` families with
    /// `quantile` labels, `_sum`, `_count` and the exact max as
    /// `{quantile="1"}`).
    pub fn render_prometheus(&self) -> String {
        render_prometheus(&self.snapshot())
    }
}

/// Split a metric name into `(family, labels)`:
/// `dcdb_query_stage_ns{stage="plan"}` → `("dcdb_query_stage_ns", "stage=\"plan\"")`.
fn split_name(name: &str) -> (&str, &str) {
    match name.split_once('{') {
        Some((family, rest)) => (family, rest.strip_suffix('}').unwrap_or(rest)),
        None => (name, ""),
    }
}

fn sample_line(out: &mut String, family: &str, suffix: &str, labels: &str, value: u64) {
    if labels.is_empty() {
        let _ = writeln!(out, "{family}{suffix} {value}");
    } else {
        let _ = writeln!(out, "{family}{suffix}{{{labels}}} {value}");
    }
}

fn quantile_line(out: &mut String, family: &str, labels: &str, q: &str, value: u64) {
    if labels.is_empty() {
        let _ = writeln!(out, "{family}{{quantile=\"{q}\"}} {value}");
    } else {
        let _ = writeln!(out, "{family}{{{labels},quantile=\"{q}\"}} {value}");
    }
}

/// Render a scrape as Prometheus text exposition format.  Families are
/// grouped (all label variants of a name render under one `# TYPE` header)
/// and emitted in name order, so output is deterministic.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    // group samples by family, preserving the snapshot's name order
    let mut families: Vec<(&str, Vec<(&str, &MetricValue)>)> = Vec::new();
    for (name, value) in &snap.samples {
        let (family, labels) = split_name(name);
        match families.last_mut() {
            Some((f, group)) if *f == family => group.push((labels, value)),
            _ => families.push((family, vec![(labels, value)])),
        }
    }
    let mut out = String::new();
    for (family, group) in families {
        let ty = match group[0].1 {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "summary",
        };
        let _ = writeln!(out, "# TYPE {family} {ty}");
        for (labels, value) in group {
            match value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    sample_line(&mut out, family, "", labels, *v);
                }
                MetricValue::Histogram(h) => {
                    quantile_line(&mut out, family, labels, "0.5", h.quantile(0.5));
                    quantile_line(&mut out, family, labels, "0.9", h.quantile(0.9));
                    quantile_line(&mut out, family, labels, "0.99", h.quantile(0.99));
                    quantile_line(&mut out, family, labels, "1", h.max);
                    sample_line(&mut out, family, "_sum", labels, h.sum);
                    sample_line(&mut out, family, "_count", labels, h.count);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_instrument() {
        let reg = Registry::new();
        let a = reg.counter("dcdb_x_total");
        let b = reg.counter("dcdb_x_total");
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("dcdb_x");
        reg.gauge("dcdb_x");
    }

    #[test]
    fn func_instruments_scrape_live_values() {
        let reg = Registry::new();
        let source = Arc::new(Counter::new());
        let s = Arc::clone(&source);
        reg.func("dcdb_ext_total", Kind::Counter, move || s.get());
        source.add(41);
        source.inc();
        assert_eq!(reg.snapshot().get("dcdb_ext_total"), Some(&MetricValue::Counter(42)));
        // re-registration is a no-op
        reg.func("dcdb_ext_total", Kind::Counter, || 0);
        assert_eq!(reg.snapshot().get("dcdb_ext_total"), Some(&MetricValue::Counter(42)));
    }

    #[test]
    fn enabled_flag_round_trips() {
        let reg = Registry::new();
        assert!(reg.enabled());
        let flag = reg.enabled_flag();
        reg.set_enabled(false);
        assert!(!flag.load(Ordering::Relaxed));
        assert!(reg.is_empty());
    }

    #[test]
    fn prometheus_rendering_groups_families() {
        let reg = Registry::new();
        reg.counter("dcdb_inserts_total").add(7);
        reg.gauge("dcdb_pending_flushes").set(2);
        reg.histogram("dcdb_query_stage_ns{stage=\"fold\"}").observe(1000);
        reg.histogram("dcdb_query_stage_ns{stage=\"plan\"}").observe(10);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE dcdb_inserts_total counter"));
        assert!(text.contains("dcdb_inserts_total 7"));
        assert!(text.contains("# TYPE dcdb_pending_flushes gauge"));
        assert!(text.contains("dcdb_pending_flushes 2"));
        // one summary family header covering both label variants
        assert_eq!(text.matches("# TYPE dcdb_query_stage_ns summary").count(), 1);
        assert!(text.contains("dcdb_query_stage_ns{stage=\"plan\",quantile=\"0.5\"}"));
        assert!(text.contains("dcdb_query_stage_ns_sum{stage=\"fold\"} 1000"));
        assert!(text.contains("dcdb_query_stage_ns_count{stage=\"plan\"} 1"));
        // exact max rides as quantile="1"
        assert!(text.contains("dcdb_query_stage_ns{stage=\"fold\",quantile=\"1\"} 1000"));
    }
}
