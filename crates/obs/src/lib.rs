//! # dcdb-obs
//!
//! The self-monitoring observability layer (paper §6.1: the framework
//! "monitors itself like any other sensor" and stays under 1% overhead).
//! Every other crate funnels its telemetry through the types here so the
//! REST `/stats` JSON, the Prometheus `GET /metrics` exposition and the
//! `_dcdb/` self-sensor hierarchy are three views of **one** set of
//! atomics and can never disagree.
//!
//! * [`metrics`] — the lock-free instruments: [`Counter`], [`Gauge`] and
//!   the fixed-bucket log-scale [`Histogram`] whose [`HistogramSnapshot`]s
//!   merge exactly (bucket-wise `u64` addition) and bound every quantile
//!   estimate by its bucket edges; the maximum is tracked exactly.
//! * [`registry`] — [`Registry`]: a name → instrument map.  Hot paths
//!   resolve their instrument `Arc`s **once** and then touch only atomics;
//!   the registry lock is taken on registration and scrape only.
//!   Pre-existing counters that live elsewhere (per-node LSM stats, block
//!   decode counters) join the registry as *callback* instruments reading
//!   the very same atomics their legacy accessors read.
//! * [`trace`] — [`TraceSpan`], the per-query span tree returned by
//!   `QueryRequest::trace` / `dcdbquery --explain`.
//! * [`events`] — the structured [`EventJournal`] (typed, sequence-numbered
//!   ring of notable state changes: alert transitions, flush failures,
//!   corrupt blocks, stalls, config changes; `GET /events?since=<seq>`)
//!   and the [`SlowQueryLog`] (ring of the last N queries over a latency
//!   threshold, full span tree attached; `GET /debug/slow_queries`).
//!   Both are anchored on the [`Registry`] so every layer that reaches the
//!   metrics reaches them too.
//!
//! * [`lockgraph`] — runtime lock-order tracking (`lock-trace` feature):
//!   `lockgraph::TrackedMutex`/`lockgraph::TrackedRwLock` record the
//!   observed acquisition-order graph, journal + panic when an acquisition
//!   closes a cycle, and export the edges for CI to check against the
//!   static graph from `dcdb-lint` (observed ⊆ static).
//!
//! No dependencies beyond `std` by default: pure atomics, no vendored
//! crates.  The opt-in `lock-trace` feature pulls in the workspace
//! `parking_lot` to wrap its primitives.
//!
//! ## Example
//!
//! ```
//! use dcdb_obs::Registry;
//!
//! let reg = Registry::new();
//! let inserts = reg.counter("dcdb_inserts_total");
//! let latency = reg.histogram("dcdb_insert_latency_ns");
//! inserts.add(64);
//! latency.observe(1_500);
//! let text = reg.render_prometheus();
//! assert!(text.contains("dcdb_inserts_total 64"));
//! assert!(text.contains("dcdb_insert_latency_ns_count 1"));
//! ```

pub mod events;
pub mod lockgraph;
pub mod metrics;
pub mod registry;
pub mod trace;

pub use events::{EventJournal, EventKind, EventRecord, Severity, SlowQuery, SlowQueryLog};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{Kind, MetricValue, MetricsSnapshot, Registry};
pub use trace::TraceSpan;
