//! Lock-free instruments: counters, gauges and log-scale histograms.
//!
//! All instruments are plain `std` atomics updated with `Relaxed` ordering —
//! the hot paths (a reading insert, a block decode) touch exactly one or two
//! atomics and never take a lock.  Readers take point-in-time snapshots;
//! under concurrent writers a snapshot's `count`/`sum`/bucket totals may be
//! mutually skewed by the in-flight increments, which is the usual (and
//! documented) monitoring trade-off.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depths, cache fill).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrement by `n` (saturating at zero under a racing `sub`; callers
    /// own the invariant that decrements never exceed increments overall).
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: 4 linear sub-buckets per power of two over
/// the full `u64` range (values 0–3 each get their own exact bucket).
///
/// The layout gives every bucket a relative width of at most 25%, so a
/// quantile estimate is always within 25% of the true value — and the exact
/// bucket edges are available via [`Histogram::bucket_bounds`], which is
/// what "quantile estimates bounded by bucket edges" means precisely.
pub const BUCKETS: usize = 252;

/// Index of the bucket holding `v`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < 4 {
        v as usize
    } else {
        let k = 63 - v.leading_zeros() as usize; // k >= 2
        let sub = ((v >> (k - 2)) & 3) as usize;
        4 * (k - 1) + sub
    }
}

/// Inclusive lower edge of bucket `idx`.
fn bucket_lo(idx: usize) -> u64 {
    if idx < 4 {
        idx as u64
    } else {
        let k = idx / 4 + 1;
        let sub = (idx % 4) as u64;
        (1u64 << k) + (sub << (k - 2))
    }
}

/// Inclusive upper edge of bucket `idx`.
fn bucket_hi(idx: usize) -> u64 {
    if idx + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_lo(idx + 1) - 1
    }
}

/// A fixed-bucket log-scale latency histogram.
///
/// Designed for nanosecond durations: `observe` is three relaxed atomic
/// adds plus one atomic max, with no allocation and no lock.  Buckets are
/// powers of two split into 4 linear sub-buckets (≤ 25% relative error);
/// `count`, `sum` and the exact maximum ride along so means and totals are
/// exact even though quantiles are bucketed.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The inclusive `[lo, hi]` value range of bucket `idx`.
    pub fn bucket_bounds(idx: usize) -> (u64, u64) {
        (bucket_lo(idx), bucket_hi(idx))
    }

    /// Point-in-time copy of the whole histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`].
///
/// Snapshots from different histograms (per-thread partials, per-shard
/// instances) merge by bucket-wise `u64` addition — **bit-identical** to
/// having fed every observation into a single histogram, which the obs
/// proptests verify.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Exact maximum observation (0 when empty).
    pub max: u64,
    /// Per-bucket observation counts ([`BUCKETS`] entries).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn new() -> HistogramSnapshot {
        HistogramSnapshot { count: 0, sum: 0, max: 0, buckets: vec![0; BUCKETS] }
    }

    /// True when nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold `other` into `self`: exact bucket-wise addition.  The sum
    /// wraps like the live `AtomicU64` would, keeping merged partials
    /// bit-identical to a single-feed histogram even at extreme totals.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// The inclusive `[lo, hi]` bucket-edge bounds of the `q`-quantile
    /// (`0.0..=1.0`): the true quantile value lies within the returned
    /// bounds.  `(0, 0)` when empty; the upper bound of the top quantile is
    /// clamped to the exact tracked maximum.
    pub fn quantile_bounds(&self, q: f64) -> (u64, u64) {
        if self.count == 0 {
            return (0, 0);
        }
        // rank of the q-quantile among `count` ordered observations
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (lo, hi) = (bucket_lo(idx), bucket_hi(idx));
                return (lo, hi.min(self.max));
            }
        }
        (self.max, self.max)
    }

    /// Point estimate of the `q`-quantile: the upper bucket edge (never an
    /// under-estimate, and within 25% of the true value by construction).
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_bounds(q).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_contiguous_and_monotone() {
        // every u64 maps into exactly one bucket whose bounds contain it
        for v in [0u64, 1, 2, 3, 4, 5, 7, 8, 15, 16, 100, 1_000, 123_456_789, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "{v} -> {idx}");
            let (lo, hi) = Histogram::bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "{v} not in [{lo}, {hi}] (bucket {idx})");
        }
        // edges chain: hi(i) + 1 == lo(i+1)
        for idx in 0..BUCKETS - 1 {
            assert_eq!(bucket_hi(idx) + 1, bucket_lo(idx + 1), "gap after bucket {idx}");
        }
        assert_eq!(bucket_hi(BUCKETS - 1), u64::MAX);
        // relative width <= 25% from 4 upward
        for idx in 4..BUCKETS - 1 {
            let (lo, hi) = Histogram::bucket_bounds(idx);
            assert!((hi - lo) as f64 <= 0.25 * lo as f64, "bucket {idx} too wide");
        }
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        let g = Gauge::new();
        g.set(7);
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn histogram_counts_sum_and_max() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 1_000_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1_000_060);
        assert_eq!(h.max(), 1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert!((s.mean() - 250_015.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_bounded_by_bucket_edges() {
        let h = Histogram::new();
        let values: Vec<u64> = (1..=1000).map(|i| i * 37).collect();
        for &v in &values {
            h.observe(v);
        }
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * 1000.0_f64).ceil() as usize).clamp(1, 1000);
            let truth = values[rank - 1];
            let (lo, hi) = s.quantile_bounds(q);
            assert!(lo <= truth && truth <= hi, "q={q}: {truth} not in [{lo}, {hi}]");
        }
        // p100 upper bound is the exact max
        assert_eq!(s.quantile(1.0), 37_000);
    }

    #[test]
    fn empty_histogram_quantiles() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.quantile_bounds(0.99), (0, 0));
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_equals_single_feed() {
        let whole = Histogram::new();
        let parts: Vec<Histogram> = (0..4).map(|_| Histogram::new()).collect();
        for i in 0..10_000u64 {
            let v = i.wrapping_mul(0x9E37_79B9).rotate_left((i % 17) as u32);
            whole.observe(v);
            parts[(i % 4) as usize].observe(v);
        }
        let mut merged = HistogramSnapshot::new();
        for p in &parts {
            merged.merge(&p.snapshot());
        }
        assert_eq!(merged, whole.snapshot());
    }

    #[test]
    fn concurrent_writers_lose_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads = 8;
        let per_thread = 50_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        h.observe(t * 1_000 + i % 97);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, threads * per_thread, "lost increments");
        assert_eq!(s.buckets.iter().sum::<u64>(), threads * per_thread);
    }
}
