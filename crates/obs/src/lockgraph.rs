//! Runtime lock-order tracking — the dynamic counterpart of `dcdb-lint`'s
//! static lock-order analysis.
//!
//! With the `lock-trace` feature enabled, `TrackedMutex` and
//! `TrackedRwLock` wrap the workspace's `parking_lot` primitives and give
//! each lock a `&'static str` node name matching the static analysis
//! (`"NodeCore.memtable"`, `"BlockCache.shards"`, …).  Every acquisition
//! records one `held -> acquired` edge per lock currently held by the same
//! thread into a process-global observed graph.  If a new edge closes a
//! cycle the tracker records a [`LockOrderCycle`](crate::events::EventKind::LockOrderCycle)
//! journal event
//! (when a journal is installed via [`install_journal`]) and panics with
//! the witness path — an actual deadlock is at most one unlucky schedule
//! away, so tests should die loudly instead.
//!
//! The observed graph is exported by [`edges`] so CI can assert it is a
//! subset of the statically derived graph in `results/LINT_report.json`
//! (an observed edge the static analysis missed means the analysis has a
//! resolution gap; a static edge never observed is merely untested).
//!
//! Without the feature this module compiles to the same public free
//! functions returning empty/no-op results, and the wrapper types are
//! absent entirely — adopters alias them back to plain `parking_lot`
//! types, so the tracking is zero-cost when disabled.

#[cfg(feature = "lock-trace")]
pub use imp::{
    TrackedMutex, TrackedMutexGuard, TrackedReadGuard, TrackedRwLock, TrackedWriteGuard,
};

#[cfg(feature = "lock-trace")]
mod imp {
    use crate::events::{EventJournal, EventKind, Severity};
    use std::cell::RefCell;
    use std::collections::BTreeSet;
    use std::ops::{Deref, DerefMut};
    use std::sync::Arc;

    /// Observed acquisition-order edges plus the optional journal sink.
    pub(super) struct GraphState {
        pub(super) edges: BTreeSet<(&'static str, &'static str)>,
        pub(super) journal: Option<Arc<EventJournal>>,
    }

    pub(super) static GRAPH: parking_lot::Mutex<GraphState> =
        parking_lot::Mutex::new(GraphState { edges: BTreeSet::new(), journal: None });

    thread_local! {
        /// Stack of lock node names this thread currently holds.
        static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    /// Is `to` reachable from `from` over `edges`?  Returns the node path
    /// (excluding `from` itself) when it is.
    fn path_to(
        edges: &BTreeSet<(&'static str, &'static str)>,
        from: &'static str,
        to: &'static str,
    ) -> Option<Vec<&'static str>> {
        let mut stack: Vec<(&'static str, Vec<&'static str>)> = vec![(from, Vec::new())];
        let mut seen: BTreeSet<&'static str> = BTreeSet::new();
        while let Some((node, path)) = stack.pop() {
            for &(a, b) in edges.range((node, "")..) {
                if a != node {
                    break;
                }
                if b == to {
                    let mut p = path.clone();
                    p.push(b);
                    return Some(p);
                }
                if seen.insert(b) {
                    let mut p = path.clone();
                    p.push(b);
                    stack.push((b, p));
                }
            }
        }
        None
    }

    /// Record `held -> name` edges for everything this thread holds, then
    /// check whether any new edge closed a cycle.  Called *before* blocking
    /// on the lock, so a would-be deadlock dies with a witness instead of
    /// hanging.
    pub(super) fn record_acquire(name: &'static str) {
        let held: Vec<&'static str> = HELD.with(|h| h.borrow().clone());
        if held.is_empty() {
            return;
        }
        let mut cycle: Option<String> = None;
        let journal = {
            let mut g = GRAPH.lock();
            for &h in &held {
                if !g.edges.insert((h, name)) || cycle.is_some() {
                    continue;
                }
                // new edge h -> name: a path name ->* h closes a cycle
                // (h == name is the degenerate recursive-acquisition case)
                let back = if h == name { Some(Vec::new()) } else { path_to(&g.edges, name, h) };
                if let Some(back) = back {
                    let mut ring = vec![h, name];
                    ring.extend(back);
                    cycle = Some(ring.join(" -> "));
                }
            }
            if cycle.is_some() {
                g.journal.clone()
            } else {
                None
            }
        };
        // the graph guard is dropped before touching the journal (which has
        // its own lock) or unwinding
        if let Some(ring) = cycle {
            if let Some(j) = journal {
                j.record(
                    EventKind::LockOrderCycle,
                    Severity::Error,
                    name,
                    format!("observed lock-order cycle: {ring}"),
                );
            }
            // lint: allow(no-unwrap) -- dying loudly with a witness is this
            // tracker's whole job: an observed cycle means a real deadlock
            // is one unlucky schedule away
            panic!(
                "lock-order cycle observed at runtime while acquiring `{name}`: {ring} \
                 (held: {held:?})"
            );
        }
    }

    pub(super) fn push_held(name: &'static str) {
        HELD.with(|h| h.borrow_mut().push(name));
    }

    pub(super) fn pop_held(name: &'static str) {
        HELD.with(|h| {
            let mut v = h.borrow_mut();
            if let Some(p) = v.iter().rposition(|&n| n == name) {
                v.remove(p);
            }
        });
    }

    /// A `parking_lot::Mutex` that reports its acquisitions to the global
    /// observed lock-order graph under a fixed node name.
    #[derive(Debug)]
    pub struct TrackedMutex<T> {
        name: &'static str,
        inner: parking_lot::Mutex<T>,
    }

    impl<T> TrackedMutex<T> {
        /// Wrap `value`; `name` must match the static analysis node
        /// (`"Struct.field"` or the static's name).
        pub const fn new(name: &'static str, value: T) -> TrackedMutex<T> {
            TrackedMutex { name, inner: parking_lot::Mutex::new(value) }
        }

        /// Acquire, recording `held -> self` edges first.
        pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
            record_acquire(self.name);
            let inner = self.inner.lock();
            push_held(self.name);
            TrackedMutexGuard { inner, name: self.name }
        }

        /// Non-blocking acquire; records edges only on success.
        pub fn try_lock(&self) -> Option<TrackedMutexGuard<'_, T>> {
            let inner = self.inner.try_lock()?;
            record_acquire(self.name);
            push_held(self.name);
            Some(TrackedMutexGuard { inner, name: self.name })
        }

        /// Consume the lock, returning the inner value.
        pub fn into_inner(self) -> T {
            self.inner.into_inner()
        }
    }

    /// Guard for [`TrackedMutex`]; pops the held stack on drop.
    pub struct TrackedMutexGuard<'a, T> {
        inner: parking_lot::MutexGuard<'a, T>,
        name: &'static str,
    }

    impl<T> Deref for TrackedMutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> DerefMut for TrackedMutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T> Drop for TrackedMutexGuard<'_, T> {
        fn drop(&mut self) {
            pop_held(self.name);
        }
    }

    /// A `parking_lot::RwLock` that reports its acquisitions (read and
    /// write alike — ordering is what deadlocks, not exclusivity) to the
    /// global observed lock-order graph.
    #[derive(Debug)]
    pub struct TrackedRwLock<T> {
        name: &'static str,
        inner: parking_lot::RwLock<T>,
    }

    impl<T> TrackedRwLock<T> {
        /// Wrap `value` under a fixed lock-graph node name.
        pub const fn new(name: &'static str, value: T) -> TrackedRwLock<T> {
            TrackedRwLock { name, inner: parking_lot::RwLock::new(value) }
        }

        /// Acquire shared, recording `held -> self` edges first.
        pub fn read(&self) -> TrackedReadGuard<'_, T> {
            record_acquire(self.name);
            let inner = self.inner.read();
            push_held(self.name);
            TrackedReadGuard { inner, name: self.name }
        }

        /// Acquire exclusive, recording `held -> self` edges first.
        pub fn write(&self) -> TrackedWriteGuard<'_, T> {
            record_acquire(self.name);
            let inner = self.inner.write();
            push_held(self.name);
            TrackedWriteGuard { inner, name: self.name }
        }

        /// Consume the lock, returning the inner value.
        pub fn into_inner(self) -> T {
            self.inner.into_inner()
        }
    }

    /// Shared guard for [`TrackedRwLock`].
    pub struct TrackedReadGuard<'a, T> {
        inner: parking_lot::RwLockReadGuard<'a, T>,
        name: &'static str,
    }

    impl<T> Deref for TrackedReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> Drop for TrackedReadGuard<'_, T> {
        fn drop(&mut self) {
            pop_held(self.name);
        }
    }

    /// Exclusive guard for [`TrackedRwLock`].
    pub struct TrackedWriteGuard<'a, T> {
        inner: parking_lot::RwLockWriteGuard<'a, T>,
        name: &'static str,
    }

    impl<T> Deref for TrackedWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> DerefMut for TrackedWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T> Drop for TrackedWriteGuard<'_, T> {
        fn drop(&mut self) {
            pop_held(self.name);
        }
    }
}

/// Is runtime lock tracking compiled in?
#[cfg(feature = "lock-trace")]
pub fn enabled() -> bool {
    true
}

/// The observed acquisition-order edges, sorted.
#[cfg(feature = "lock-trace")]
pub fn edges() -> Vec<(&'static str, &'static str)> {
    imp::GRAPH.lock().edges.iter().copied().collect()
}

/// Forget all observed edges (test isolation).
#[cfg(feature = "lock-trace")]
pub fn clear() {
    imp::GRAPH.lock().edges.clear();
}

/// Route cycle detections into `journal` as
/// [`EventKind::LockOrderCycle`][crate::EventKind::LockOrderCycle] events.
#[cfg(feature = "lock-trace")]
pub fn install_journal(journal: std::sync::Arc<crate::events::EventJournal>) {
    imp::GRAPH.lock().journal = Some(journal);
}

/// Is runtime lock tracking compiled in?
#[cfg(not(feature = "lock-trace"))]
pub fn enabled() -> bool {
    false
}

/// The observed acquisition-order edges (always empty without the
/// `lock-trace` feature).
#[cfg(not(feature = "lock-trace"))]
pub fn edges() -> Vec<(&'static str, &'static str)> {
    Vec::new()
}

/// Forget all observed edges (no-op without the `lock-trace` feature).
#[cfg(not(feature = "lock-trace"))]
pub fn clear() {}

/// No-op without the `lock-trace` feature.
#[cfg(not(feature = "lock-trace"))]
pub fn install_journal(_journal: std::sync::Arc<crate::events::EventJournal>) {}

#[cfg(all(test, feature = "lock-trace"))]
mod tests {
    use super::*;

    // the observed graph is process-global, so every assertion about it
    // lives in this one test to avoid cross-test interference
    #[test]
    fn records_edges_and_panics_on_cycle() {
        clear();
        let a = TrackedMutex::new("T.a", 1u32);
        let b = TrackedMutex::new("T.b", 2u32);
        {
            let ga = a.lock();
            let gb = b.lock();
            assert_eq!(*ga + *gb, 3);
        }
        assert!(edges().contains(&("T.a", "T.b")));
        assert!(!edges().contains(&("T.b", "T.a")));

        // same order again: no new edge, no cycle
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }

        // reversed order closes the cycle and must panic with a witness
        let err = std::thread::spawn(move || {
            let _gb = b.lock();
            let _ga = a.lock();
        })
        .join()
        .expect_err("ABBA acquisition must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lock-order cycle"), "unexpected panic: {msg}");
        assert!(msg.contains("T.a") && msg.contains("T.b"), "witness names both locks: {msg}");
        clear();
    }
}
