//! Histogram correctness properties.
//!
//! 1. **Merge is exact**: folding any partition of an observation stream
//!    through [`HistogramSnapshot::merge`] is bit-identical to feeding the
//!    whole stream into one histogram — merge order and partition shape
//!    never matter (bucket counts are plain `u64` adds).
//! 2. **Quantile bounds hold**: for every quantile the true order
//!    statistic of the fed values lies inside `quantile_bounds(q)`, and
//!    the bucket-edge bounds are within the documented ≤25% relative
//!    width; `quantile(1.0)` is the exact maximum.

use dcdb_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// Mixed magnitudes: small exact-bucket values, mid-range, and huge.
fn value_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![0u64..16, 0u64..100_000, 0u64..u64::MAX / 2,]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_of_any_partition_is_bit_identical_to_single_feed(
        values in prop::collection::vec(value_strategy(), 1..500),
        parts in 1usize..8,
    ) {
        let whole = Histogram::new();
        let partials: Vec<Histogram> = (0..parts).map(|_| Histogram::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            whole.observe(v);
            partials[i % parts].observe(v);
        }
        let mut merged = HistogramSnapshot::new();
        for p in &partials {
            merged.merge(&p.snapshot());
        }
        prop_assert_eq!(merged, whole.snapshot());
    }

    #[test]
    fn quantile_bounds_contain_the_true_order_statistic(
        mut values in prop::collection::vec(value_strategy(), 1..500),
        qs in prop::collection::vec(0.0f64..1.0, 1..8),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        let snap = h.snapshot();
        values.sort_unstable();
        for &q in &qs {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let truth = values[rank - 1];
            let (lo, hi) = snap.quantile_bounds(q);
            prop_assert!(
                lo <= truth && truth <= hi,
                "q={}: true order statistic {} outside [{}, {}]", q, truth, lo, hi
            );
            // documented resolution: bucket width ≤ 25% of its lower edge
            // (the top quantile's hi is clamped to the exact max instead)
            if hi != snap.max {
                prop_assert!(
                    hi - lo <= lo / 4 + 1,
                    "q={}: bucket [{}, {}] wider than 25% relative", q, lo, hi
                );
            }
        }
        prop_assert_eq!(snap.quantile(1.0), *values.last().unwrap());
    }
}
