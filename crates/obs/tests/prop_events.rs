//! Event-journal ring properties.
//!
//! 1. **Concurrent writers, strictly increasing seqs**: any number of
//!    threads recording in parallel get globally unique, gap-free
//!    sequence numbers — the seq is assigned inside the ring's critical
//!    section, never racing with an eviction.
//! 2. **`since(seq)` never duplicates**: a poller that always passes the
//!    last seq it saw observes every retained record at most once, in
//!    order, even while the ring overflows underneath it.
//! 3. **Overflow drops oldest-first and is surfaced**: after `n` records
//!    through a capacity-`c` ring, exactly the last `min(n, c)` seqs are
//!    retained contiguously and `dropped()` reports the rest.

use dcdb_obs::{EventJournal, EventKind, Severity};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn concurrent_writers_get_unique_increasing_seqs(
        threads in 2usize..6,
        per_thread in 1usize..50,
        capacity in 1usize..64,
    ) {
        let journal = Arc::new(EventJournal::new(capacity));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let j = Arc::clone(&journal);
                std::thread::spawn(move || {
                    (0..per_thread)
                        .map(|i| {
                            j.record_at(
                                (t * per_thread + i) as i64,
                                EventKind::ConfigChange,
                                Severity::Info,
                                format!("writer{t}"),
                                "concurrent",
                            )
                        })
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        let mut seqs: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("writer thread"))
            .collect();
        let total = (threads * per_thread) as u64;
        seqs.sort_unstable();
        // unique and gap-free: exactly 1..=total
        prop_assert_eq!(&seqs, &(1..=total).collect::<Vec<u64>>());
        prop_assert_eq!(journal.last_seq(), total);
        prop_assert_eq!(journal.total_recorded(), total);
        prop_assert_eq!(journal.len(), capacity.min(threads * per_thread));
        // per-thread seqs are strictly increasing in record order — checked
        // via the retained tail being sorted
        let retained = journal.since(0);
        prop_assert!(retained.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn since_pagination_never_duplicates(
        capacity in 1usize..32,
        bursts in prop::collection::vec(1usize..40, 1..10),
    ) {
        let journal = EventJournal::new(capacity);
        let mut cursor = 0u64;
        let mut seen = Vec::new();
        for (b, burst) in bursts.iter().enumerate() {
            for i in 0..*burst {
                journal.record_at(
                    i as i64,
                    EventKind::BackpressureStall,
                    Severity::Warning,
                    format!("burst{b}"),
                    "overflowing",
                );
            }
            let page = journal.since(cursor);
            for r in &page {
                prop_assert!(r.seq > cursor, "since({cursor}) returned seq {}", r.seq);
                cursor = r.seq;
                seen.push(r.seq);
            }
        }
        // every seq observed at most once, in increasing order
        prop_assert!(seen.windows(2).all(|w| w[0] < w[1]), "duplicate or reordered: {seen:?}");
        // the final page drained everything retained
        prop_assert!(journal.since(cursor).is_empty());
        prop_assert_eq!(cursor, journal.last_seq());
    }

    #[test]
    fn overflow_drops_oldest_first_and_reports_it(
        capacity in 1usize..32,
        n in 1usize..200,
    ) {
        let journal = EventJournal::new(capacity);
        for i in 0..n {
            journal.record_at(
                i as i64,
                EventKind::CorruptBlock,
                Severity::Error,
                "sensor",
                format!("record {i}"),
            );
        }
        let retained = journal.since(0);
        let kept = n.min(capacity);
        prop_assert_eq!(retained.len(), kept);
        // exactly the newest `kept` seqs, contiguous and in order
        let expect: Vec<u64> = ((n - kept + 1) as u64..=n as u64).collect();
        let got: Vec<u64> = retained.iter().map(|r| r.seq).collect();
        prop_assert_eq!(got, expect);
        prop_assert_eq!(journal.dropped(), (n - kept) as u64);
        prop_assert_eq!(journal.total_recorded(), n as u64);
    }
}
