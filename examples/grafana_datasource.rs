//! Grafana data source: the hierarchy-aware query API of §5.4 / Fig. 3.
//!
//! Populates a sensor hierarchy (system → rack → node → sensor), serves the
//! data-source API over HTTP, and walks it exactly like the Grafana panel's
//! drop-down menus would: list racks, list nodes, then query a node's power
//! series and a virtual rack-aggregate.
//!
//! ```text
//! cargo run --example grafana_datasource
//! ```

// CLI binary / example: stdout is the product.
#![allow(clippy::print_stdout)]

use std::sync::Arc;

use dcdb::core::{grafana, SensorDb, SensorMeta, Unit};
use dcdb::http::client;
use dcdb::http::json::Json;

fn main() {
    // Populate a day of per-node power data.
    let db = SensorDb::in_memory();
    for rack in 0..3 {
        for node in 0..4 {
            let topic = format!("/lrz/smucng/rack{rack}/node{node}/power");
            for minute in 0..60 {
                let ts = minute * 60_000_000_000i64;
                let value = 350.0 + 40.0 * ((minute + node * 7 + rack * 13) % 17) as f64 / 17.0;
                db.insert(&topic, ts, value).unwrap();
            }
            db.set_meta(&topic, SensorMeta::with_unit(Unit::WATT));
        }
    }
    db.define_virtual(
        "/v/rack0/power",
        "\"/lrz/smucng/rack0/node0/power\" + \"/lrz/smucng/rack0/node1/power\" \
         + \"/lrz/smucng/rack0/node2/power\" + \"/lrz/smucng/rack0/node3/power\"",
        Unit::WATT,
    )
    .unwrap();

    // Serve the data-source API.
    let server = grafana::serve(Arc::clone(&db), "127.0.0.1:0".parse().unwrap()).expect("serve");
    let addr = server.local_addr();
    println!("grafana data source at http://{addr}\n");

    // Drop-down 1: racks below /lrz/smucng (hierarchy level 2).
    let racks = client::get(addr, "/search?prefix=/lrz/smucng&level=2").unwrap();
    println!("racks: {}", racks.text());

    // Drop-down 2: nodes below rack1.
    let nodes = client::get(addr, "/search?prefix=/lrz/smucng/rack1&level=3").unwrap();
    println!("rack1 nodes: {}", nodes.text());

    // Panel query: one node's power, downsampled to 12 points.
    let resp =
        client::get(addr, "/query?topic=/lrz/smucng/rack1/node2/power&maxDataPoints=12").unwrap();
    let j = Json::parse(&resp.text()).unwrap();
    let points = j.get("datapoints").unwrap().as_arr().unwrap();
    println!(
        "\n/lrz/smucng/rack1/node2/power ({}; {} points):",
        j.get("unit").unwrap().as_str().unwrap_or("?"),
        points.len()
    );
    for p in points {
        println!("  value={:8.2} ts={}", p.idx(0).unwrap().as_f64().unwrap(), {
            p.idx(1).unwrap().as_f64().unwrap()
        });
    }
    assert!(points.len() <= 12 && !points.is_empty());

    // Panel legend: stats of the virtual rack aggregate.
    let stats = client::get(addr, "/stats?topic=/v/rack0/power").unwrap();
    println!("\nrack0 aggregate stats: {}", stats.text());
    let sj = Json::parse(&stats.text()).unwrap();
    let avg = sj.get("avg").unwrap().as_f64().unwrap();
    assert!(avg > 4.0 * 330.0, "four nodes aggregate: {avg}");
    println!("\ngrafana datasource OK");
}
