//! Energy case study: the paper's use case 1 (Fig. 9) as an application.
//!
//! Monitors the simulated CooLMUC-3 warm-water cooling circuit out-of-band
//! (SNMP + REST), aggregates with virtual sensors, and reports the
//! heat-removal efficiency — expected around 90%, independent of inlet
//! temperature.
//!
//! ```text
//! cargo run --example energy_case_study
//! ```

// CLI binary / example: stdout is the product.
#![allow(clippy::print_stdout)]

fn main() {
    println!("running the 24 h CooLMUC-3 heat-removal study (5-minute sampling)...\n");
    let cs = dcdb_bench_like();
    println!("{cs}");
}

/// Drive the same pipeline the fig9 harness uses, at coarse resolution.
fn dcdb_bench_like() -> String {
    use dcdb::collectagent::CollectAgent;
    use dcdb::core::{SensorDb, SensorMeta, Unit};
    use dcdb::mqtt::inproc::InprocBus;
    use dcdb::pusher::mqtt_out::{MqttBackend, MqttOut, SendPolicy};
    use dcdb::pusher::plugins::{RestPlugin, SnmpPlugin};
    use dcdb::pusher::scheduler::{Pusher, PusherConfig};
    use dcdb::sim::devices::cooling::CoolingCircuit;
    use dcdb::sim::devices::rest::RestSource;
    use dcdb::sim::devices::snmp::SnmpAgent;
    use dcdb::store::reading::TimeRange;
    use dcdb::store::StoreCluster;
    use std::sync::Arc;

    const POWER_OID: &str = "1.3.6.1.4.1.318.1.1.26.6.3.1.7.1";
    let step_s = 300.0;

    let mut circuit = CoolingCircuit::new(7);
    let snmp = Arc::new(SnmpAgent::new());
    snmp.set(POWER_OID, 0.0);
    let rest = Arc::new(RestSource::new());
    rest.set("heat_removed_kw", 0.0);
    rest.set("inlet_temp_c", 0.0);

    let bus = InprocBus::new();
    let agent = CollectAgent::new(Arc::new(StoreCluster::single()));
    agent.attach_inproc(&bus);

    let pusher = Pusher::new(
        PusherConfig { prefix: "/lrz/coolmuc3".into(), ..Default::default() },
        MqttOut::new(MqttBackend::Inproc(Arc::clone(&bus)), SendPolicy::Continuous),
    );
    let mut sp = SnmpPlugin::new();
    sp.add_walk("pdu", Arc::clone(&snmp), "1.3.6.1.4.1.318", (step_s * 1000.0) as u64);
    pusher.add_plugin(Box::new(sp));
    let mut rp = RestPlugin::new();
    rp.add_endpoint("cooling", Arc::clone(&rest), (step_s * 1000.0) as u64);
    pusher.add_plugin(Box::new(rp));

    let steps = (24.0 * 3600.0 / step_s) as usize;
    for i in 0..steps {
        let t_s = i as f64 * step_s;
        let s = circuit.sample(t_s);
        snmp.set(POWER_OID, s.power_kw);
        rest.set("heat_removed_kw", s.heat_removed_kw);
        rest.set("inlet_temp_c", s.inlet_temp_c);
        pusher.sample_due((t_s * 1e9) as i64);
    }

    let db = SensorDb::new(Arc::clone(agent.store()), Arc::clone(agent.registry()));
    let power_topic = format!("/lrz/coolmuc3/pdu/snmp/{}", POWER_OID.replace('.', "_"));
    let heat_topic = "/lrz/coolmuc3/cooling/heat_removed_kw";
    db.set_meta(&power_topic, SensorMeta::with_unit(Unit::KILOWATT));
    db.set_meta(heat_topic, SensorMeta::with_unit(Unit::KILOWATT));
    db.define_virtual(
        "/v/efficiency",
        &format!("\"{heat_topic}\" / \"{power_topic}\""),
        Unit::NONE,
    )
    .expect("expression");

    let eff = db.query("/v/efficiency", TimeRange::all()).expect("query");
    let mean = eff.readings.iter().map(|r| r.value).sum::<f64>() / eff.readings.len() as f64;
    assert!((0.85..0.95).contains(&mean), "efficiency {mean}");
    format!(
        "heat-removal efficiency over {} samples: {:.1}%  (paper: ~90%)\nenergy case study OK",
        eff.readings.len(),
        mean * 100.0
    )
}
