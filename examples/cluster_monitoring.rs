//! Cluster monitoring: the paper's deployment scenario (Fig. 1) in miniature.
//!
//! Eight simulated KNL compute nodes run CORAL-2 workloads; each node's
//! Pusher samples Perfevents + ProcFS + SysFS in-band, one management-node
//! Pusher samples every BMC out-of-band via IPMI, and all of them publish
//! into a Collect Agent backed by a four-node storage cluster partitioned by
//! SID prefix.  At the end we show per-node data locality and query a few
//! sensors hierarchically.
//!
//! ```text
//! cargo run --example cluster_monitoring
//! ```

// CLI binary / example: stdout is the product.
#![allow(clippy::print_stdout)]

use std::sync::Arc;

use dcdb::collectagent::CollectAgent;
use dcdb::mqtt::inproc::InprocBus;
use dcdb::pusher::mqtt_out::{MqttBackend, MqttOut, SendPolicy};
use dcdb::pusher::plugins::{IpmiPlugin, PerfeventsPlugin, ProcFsPlugin, SysFsPlugin};
use dcdb::pusher::scheduler::{Pusher, PusherConfig};
use dcdb::sid::PartitionMap;
use dcdb::sim::{Arch, SimClock, SimNode, Workload, NS_PER_SEC};
use dcdb::store::reading::TimeRange;
use dcdb::store::{NodeConfig, StoreCluster};

fn main() {
    let clock = SimClock::new();
    let workloads = [Workload::Kripke, Workload::Amg, Workload::Lammps, Workload::Quicksilver];

    // Storage: 4 servers, sub-trees pinned by the node level of the hierarchy.
    let store = Arc::new(StoreCluster::new(NodeConfig::default(), PartitionMap::prefix(4, 4), 1));
    let agent = CollectAgent::new(store);
    let bus = InprocBus::new();
    agent.attach_inproc(&bus);

    // Compute nodes with in-band Pushers.
    let mut nodes: Vec<SimNode> = (0..8)
        .map(|i| {
            SimNode::new(
                Arch::KnightsLanding,
                format!("node{i:02}"),
                Arc::clone(&clock),
                workloads[i % workloads.len()],
                i as u64,
            )
        })
        .collect();
    let pushers: Vec<Pusher> = nodes
        .iter()
        .map(|n| {
            let p = Pusher::new(
                PusherConfig {
                    prefix: format!("/lrz/coolmuc3/rack0/{}", n.hostname),
                    ..Default::default()
                },
                MqttOut::new(MqttBackend::Inproc(Arc::clone(&bus)), SendPolicy::Continuous),
            );
            p.add_plugin(Box::new(PerfeventsPlugin::standard(Arc::clone(&n.perf), 1000)));
            p.add_plugin(Box::new(ProcFsPlugin::standard(
                Arc::clone(&n.procfs) as Arc<dyn dcdb::sim::devices::TextFileSource>,
                1000,
            )));
            p.add_plugin(Box::new(SysFsPlugin::for_sim_node(Arc::clone(&n.sysfs), 1000)));
            p
        })
        .collect();

    // One out-of-band Pusher on the management node reads all BMCs via IPMI.
    let mgmt = Pusher::new(
        PusherConfig { prefix: "/lrz/coolmuc3/oob".into(), ..Default::default() },
        MqttOut::new(
            MqttBackend::Inproc(Arc::clone(&bus)),
            // bursts twice per minute, the paper's network-friendly setting
            SendPolicy::Burst { interval_ns: 30 * NS_PER_SEC },
        ),
    );
    mgmt.add_plugin(Box::new(IpmiPlugin::discover(
        nodes.iter().map(|n| (n.hostname.clone(), Arc::clone(&n.bmc))).collect(),
        5000,
    )));

    // Run 60 virtual seconds.
    println!(
        "monitoring {} compute nodes ({} in-band sensors each) + {} BMC sensors out-of-band",
        nodes.len(),
        pushers[0].sensor_count(),
        mgmt.sensor_count()
    );
    for sec in 0..60 {
        let now = sec * NS_PER_SEC;
        clock.advance_to(now);
        for n in nodes.iter_mut() {
            n.advance_to(now);
        }
        for p in &pushers {
            p.sample_due(now);
        }
        mgmt.sample_due(now);
    }
    mgmt.out().flush();

    let stats = agent.stats();
    println!(
        "collect agent stored {} readings from {} messages",
        stats.readings.load(std::sync::atomic::Ordering::Relaxed),
        stats.messages.load(std::sync::atomic::Ordering::Relaxed)
    );

    // Data locality: every node sub-tree lives on exactly one storage server,
    // and different nodes spread across the cluster.
    let mut owners = std::collections::HashSet::new();
    for host in ["node00", "node03", "node07"] {
        let topics = agent.registry().sids_under(&format!("/lrz/coolmuc3/rack0/{host}"));
        let mut servers: Vec<usize> =
            topics.iter().map(|(_, sid)| agent.store().primary_for(*sid)).collect();
        servers.sort();
        servers.dedup();
        println!("{host}: {} sensors on storage server(s) {servers:?}", topics.len());
        assert_eq!(servers.len(), 1, "prefix partitioning keeps sub-trees together");
        owners.insert(servers[0]);
    }
    assert!(owners.len() >= 2, "node sub-trees spread across storage servers");

    // Hierarchical query: instructions of node00/cpu0 over the minute.
    let sid = agent
        .registry()
        .get("/lrz/coolmuc3/rack0/node00/cpu0/instructions")
        .expect("sensor registered");
    let series = agent.store().query(sid, TimeRange::all());
    println!(
        "node00/cpu0 instructions: {} samples, last delta = {:.2e}",
        series.len(),
        series.last().map(|r| r.value).unwrap_or(0.0)
    );
    assert!(series.len() >= 50);
    println!("cluster monitoring OK");
}
