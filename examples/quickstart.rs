//! Quickstart: the smallest end-to-end dcdb-rs pipeline.
//!
//! A tester-plugin Pusher samples 100 synthetic sensors once per second and
//! publishes them over a real TCP MQTT connection to a Collect Agent, which
//! stores them in the wide-column backend.  We then query the data back
//! through libDCDB and compute a virtual sensor.
//!
//! ```text
//! cargo run --example quickstart
//! ```

// CLI binary / example: stdout is the product.
#![allow(clippy::print_stdout)]

use std::sync::Arc;
use std::time::Duration;

use dcdb::collectagent::CollectAgent;
use dcdb::core::{SensorDb, Unit};
use dcdb::mqtt::broker::BrokerConfig;
use dcdb::pusher::mqtt_out::{MqttBackend, MqttOut, SendPolicy};
use dcdb::pusher::plugins::TesterPlugin;
use dcdb::pusher::scheduler::{Pusher, PusherConfig};
use dcdb::store::reading::TimeRange;
use dcdb::store::StoreCluster;

fn main() {
    // 1. Storage backend + Collect Agent with an embedded MQTT broker.
    let store = Arc::new(StoreCluster::single());
    let agent = CollectAgent::new(store);
    let broker = agent.start_broker(BrokerConfig::default()).expect("broker");
    println!("collect agent listening on mqtt://{}", broker.local_addr());

    // 2. A Pusher with 100 tester sensors at 1 s, pushing over TCP.
    let client = dcdb::mqtt::Client::connect(dcdb::mqtt::ClientConfig::new(
        broker.local_addr(),
        "quickstart-pusher",
    ))
    .expect("connect");
    let pusher = Pusher::new(
        PusherConfig { prefix: "/demo/node0".into(), ..Default::default() },
        MqttOut::new(MqttBackend::Tcp(client), SendPolicy::Continuous),
    );
    pusher.add_plugin(Box::new(TesterPlugin::new(100, 1000)));

    // 3. Run three (virtual) seconds of sampling.
    let produced = pusher.run_virtual(3_000_000_000);
    println!("pusher produced {produced} readings");
    std::thread::sleep(Duration::from_millis(300)); // let the broker drain

    // 4. Query back through libDCDB.
    let db = SensorDb::new(Arc::clone(agent.store()), Arc::clone(agent.registry()));
    let series = db.query("/demo/node0/tester/t0", TimeRange::all()).expect("query");
    println!("sensor t0 has {} stored readings:", series.readings.len());
    for r in &series.readings {
        println!("  ts={} value={:.3}", r.ts, r.value);
    }

    // 5. A virtual sensor over two physical ones.
    db.define_virtual(
        "/v/demo/sum",
        "\"/demo/node0/tester/t1\" + \"/demo/node0/tester/t2\"",
        Unit::NONE,
    )
    .expect("virtual sensor");
    let v = db.query("/v/demo/sum", TimeRange::all()).expect("vquery");
    println!("virtual sensor /v/demo/sum evaluated {} points", v.readings.len());
    assert!(!v.readings.is_empty());
    println!("quickstart OK");
}
