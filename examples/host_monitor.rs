//! Host monitor: point the real ProcFS plugin at *this machine's* `/proc`.
//!
//! Demonstrates that the plugins parse genuine kernel formats, not only the
//! simulator's: the same `ProcFsPlugin` code that runs against
//! `dcdb_sim::devices::procfs::SimProcFs` in the evaluation harness here
//! reads the host (falling back to the simulator off-Linux), samples for a
//! few seconds in real time, and serves the Pusher REST API.
//!
//! ```text
//! cargo run --example host_monitor
//! ```

// CLI binary / example: stdout is the product.
#![allow(clippy::print_stdout)]

use std::sync::Arc;
use std::time::Duration;

use dcdb::http::client;
use dcdb::pusher::mqtt_out::{MqttBackend, MqttOut, SendPolicy};
use dcdb::pusher::plugins::ProcFsPlugin;
use dcdb::pusher::scheduler::{Pusher, PusherConfig};
use dcdb::sim::devices::{HostFs, TextFileSource};

fn main() {
    let on_linux = std::path::Path::new("/proc/meminfo").exists();
    let source: Arc<dyn TextFileSource> = if on_linux {
        println!("monitoring the real /proc of this host");
        Arc::new(HostFs)
    } else {
        println!("no /proc here; monitoring a simulated node instead");
        let sim = Arc::new(dcdb::sim::devices::procfs::SimProcFs::new(8, 16));
        sim.advance(5.0, 0.5);
        sim
    };

    let pusher = Arc::new(Pusher::new(
        PusherConfig { prefix: "/localhost".into(), ..Default::default() },
        MqttOut::new(MqttBackend::Null, SendPolicy::Continuous),
    ));
    pusher.add_plugin(Box::new(ProcFsPlugin::standard(source, 500)));

    // REST API alongside the sampling loop (paper §5.3).
    let rest = dcdb::pusher::rest::serve(Arc::clone(&pusher), "127.0.0.1:0".parse().unwrap())
        .expect("REST server");
    let rest_addr = rest.local_addr();
    println!("pusher REST API at http://{rest_addr}");

    let produced = pusher.run_real(Duration::from_secs(3));
    println!("sampled {produced} readings in 3 s");

    // Read the cache back through REST, like an external tool would.
    let sensors = client::get(rest_addr, "/sensors").unwrap();
    println!("cached sensors: {}", sensors.text());
    let mem = client::get(rest_addr, "/cache/localhost/meminfo/MemTotal").unwrap();
    println!("MemTotal cache: {}", mem.text());
    let avg =
        client::get(rest_addr, "/average/localhost/meminfo/MemFree?window=10000000000").unwrap();
    println!("MemFree 10s average: {}", avg.text());

    assert!(produced > 0, "no readings sampled");
    println!("host monitor OK");
}
