//! Streaming analytics: the paper's future-work layer (§9) in action.
//!
//! A GPU-accelerated node is monitored live; the analytics pipeline attached
//! to the Collect Agent computes moving averages and counter rates on the
//! fly, guards a power band with a hysteresis threshold (the §1 motivating
//! use case), and flags anomalies with an online z-score detector.
//!
//! ```text
//! cargo run --example streaming_analytics
//! ```

// CLI binary / example: stdout is the product.
#![allow(clippy::print_stdout)]

use std::sync::Arc;

use dcdb::collectagent::analytics::{
    AnalyticsPipeline, MovingAverage, RateOfChange, Threshold, ZScoreAnomaly,
};
use dcdb::collectagent::CollectAgent;
use dcdb::mqtt::inproc::InprocBus;
use dcdb::pusher::mqtt_out::{MqttBackend, MqttOut, SendPolicy};
use dcdb::pusher::plugins::GpuPlugin;
use dcdb::pusher::scheduler::{Pusher, PusherConfig};
use dcdb::sim::devices::gpu::GpuDevice;
use dcdb::store::reading::TimeRange;
use dcdb::store::StoreCluster;

fn main() {
    // Pipeline: Pusher (GPU plugin) → inproc MQTT → Collect Agent → store,
    // with the analytics layer observing live readings.
    let agent = CollectAgent::new(Arc::new(StoreCluster::single()));
    let bus = InprocBus::new();
    agent.attach_inproc(&bus);

    let analytics = AnalyticsPipeline::attach(&agent);
    analytics.add_operator("/gpunode/gpu0/power", Arc::new(MovingAverage::new(10)));
    analytics.add_operator("/gpunode/gpu0/power", Arc::new(Threshold::new(280.0, 200.0)));
    analytics.add_operator("/gpunode/+/temperature", Arc::new(ZScoreAnomaly::new(5.0, 20)));
    analytics.add_operator("/gpunode/gpu0/memory_used", Arc::new(RateOfChange::new()));

    let gpu = Arc::new(GpuDevice::new());
    let pusher = Pusher::new(
        PusherConfig { prefix: "/gpunode".into(), ..Default::default() },
        MqttOut::new(MqttBackend::Inproc(Arc::clone(&bus)), SendPolicy::Continuous),
    );
    pusher.add_plugin(Box::new(GpuPlugin::new(vec![Arc::clone(&gpu)], 1000)));

    // 5 idle minutes, then a heavy job lands, then it finishes.
    println!("simulating 15 minutes of GPU activity (job arrives at t=5min)...");
    for sec in 0..900i64 {
        let intensity = if (300..780).contains(&sec) { 1.0 } else { 0.02 };
        gpu.advance(1.0, intensity);
        pusher.sample_due(sec * 1_000_000_000);
    }

    // What did the analytics layer see?
    let events = analytics.take_events();
    println!("\n{} events raised:", events.len());
    for e in events.iter().take(5) {
        println!("  t={:>4}s {:<28} {}", e.ts / 1_000_000_000, e.topic, e.message);
    }
    assert!(
        events.iter().any(|e| e.topic.ends_with("/power") && e.message.contains("exceeded")),
        "power-band alert expected when the job lands"
    );

    // Derived series are ordinary sensors in the store.
    let avg_sid = agent.registry().get("/analytics/avg/gpunode/gpu0/power").unwrap();
    let avg = agent.store().query(avg_sid, TimeRange::all());
    println!("\nmoving-average power series: {} points", avg.len());
    let during_job = avg.iter().find(|r| r.ts > 400 * 1_000_000_000).unwrap();
    println!("  smoothed power during the job: {:.0} W", during_job.value);
    assert!(during_job.value > 200.0);

    let rate_sid = agent.registry().get("/analytics/rate/gpunode/gpu0/memory_used").unwrap();
    let rates = agent.store().query(rate_sid, TimeRange::all());
    let peak_alloc = rates.iter().map(|r| r.value).fold(f64::MIN, f64::max);
    println!("  peak memory allocation rate: {peak_alloc:.0} MiB/s");
    assert!(peak_alloc > 0.0);

    println!(
        "\nanalytics processed {} readings, wrote {} derived readings",
        analytics.processed.load(std::sync::atomic::Ordering::Relaxed),
        analytics.derived_written.load(std::sync::atomic::Ordering::Relaxed)
    );
    println!("streaming analytics OK");
}
