//! Integration: property-tree configuration files driving Pusher
//! construction, CSV round-trips through the tools layer, and store
//! persistence across process boundaries (simulated by reopening).

use dcdb::config;
use dcdb::core::SensorDb;
use dcdb::pusher::mqtt_out::{MqttBackend, MqttOut, SendPolicy};
use dcdb::pusher::plugins::TesterPlugin;
use dcdb::pusher::scheduler::{Pusher, PusherConfig};
use dcdb::pusher::Plugin as _;
use dcdb::store::reading::TimeRange;

#[test]
fn pusher_from_config_file_text() {
    let text = r#"
global {
    mqttPrefix /cfg/node7
    cacheInterval 120
    threads 2
}
template_plugin fast {
    interval 100
}
plugin tester {
    default fast
    sensors 25
}
"#;
    let cfg = config::from_str(text).expect("parse");
    let prefix = cfg.get_str("global.mqttPrefix").unwrap().to_string();
    let cache_s = cfg.get_u64_or("global.cacheInterval", 120);
    let pusher = Pusher::new(
        PusherConfig {
            prefix,
            cache_window_ns: cache_s as i64 * 1_000_000_000,
            sampling_threads: cfg.get_u64_or("global.threads", 2) as usize,
        },
        MqttOut::new(MqttBackend::Null, SendPolicy::Continuous),
    );
    // the plugin block inherited interval=100 from the template
    let plugin_cfg = cfg.child("plugin").expect("plugin block");
    let tester = TesterPlugin::from_config(plugin_cfg).expect("tester config");
    assert_eq!(tester.groups()[0].interval_ms, 100);
    pusher.add_plugin(Box::new(tester));
    assert_eq!(pusher.sensor_count(), 25);

    let produced = pusher.run_virtual(1_000_000_000);
    assert_eq!(produced, 25 * 11);
    assert!(pusher.cache().latest("/cfg/node7/tester/t0").is_some());
}

#[test]
fn csv_database_roundtrip_via_tools() {
    let dir = std::env::temp_dir().join(format!("dcdb-it-csv-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // import CSV into a fresh database directory
    {
        let db = SensorDb::in_memory();
        let csv = "sensor,timestamp,value\n/it/power,1000,100.5\n/it/power,2000,101.5\n/it/temp,1000,42\n";
        let n = dcdb::store::csv::import(db.store(), db.registry(), csv.as_bytes()).unwrap();
        assert_eq!(n, 3);
        dcdb_tools::save_db(&db, &dir).unwrap();
    }
    // reopen: data and topics survive
    {
        let db = dcdb_tools::open_db(&dir).unwrap();
        let s = db.query("/it/power", TimeRange::all()).unwrap();
        assert_eq!(s.readings.len(), 2);
        assert_eq!(s.readings[1].value, 101.5);
        // export matches what was imported
        let sensors = db.registry().sids_under("/it");
        let out = dcdb::store::csv::export_to_string(db.store(), &sensors, TimeRange::all());
        assert!(out.contains("/it/power,1000,100.5"));
        assert!(out.contains("/it/temp,1000,42"));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn virtual_sensors_survive_interleaved_ingest() {
    // define a virtual sensor, ingest more data, query again: the write-back
    // cache must not hide fresh data outside the cached range
    let db = SensorDb::in_memory();
    for ts in 0..5 {
        db.insert("/x/a", ts * 1_000, 10.0).unwrap();
    }
    db.define_virtual("/v/x", "\"/x/a\" * 2", dcdb::core::Unit::NONE).unwrap();
    let first = db.query("/v/x", TimeRange::new(0, 5_000)).unwrap();
    assert_eq!(first.readings.len(), 5);
    // new data arrives later
    for ts in 5..10 {
        db.insert("/x/a", ts * 1_000, 20.0).unwrap();
    }
    let second = db.query("/v/x", TimeRange::new(0, 10_000)).unwrap();
    assert_eq!(second.readings.len(), 10);
    assert_eq!(second.readings[9].value, 40.0);
}

#[test]
fn store_maintenance_through_sensordb() {
    let db = SensorDb::in_memory();
    for ts in 0..100 {
        db.insert("/m/s", ts, ts as f64).unwrap();
    }
    db.store().delete_all_before(50);
    db.store().maintain();
    let s = db.query("/m/s", TimeRange::all()).unwrap();
    assert_eq!(s.readings.len(), 50);
    assert_eq!(s.readings[0].ts, 50);
    assert_eq!(db.store().total_entries(), 50);
}
