//! Cross-crate integration: the full monitoring pipeline over real TCP —
//! simulated node → Pusher plugins → MQTT client → broker → Collect Agent →
//! storage cluster → libDCDB queries and virtual sensors → REST APIs.

use std::sync::Arc;
use std::time::Duration;

use dcdb::collectagent::CollectAgent;
use dcdb::core::{SensorDb, SensorMeta, Unit};
use dcdb::http::client;
use dcdb::http::json::Json;
use dcdb::mqtt::broker::BrokerConfig;
use dcdb::pusher::mqtt_out::{MqttBackend, MqttOut, SendPolicy};
use dcdb::pusher::plugins::{PerfeventsPlugin, SysFsPlugin, TesterPlugin};
use dcdb::pusher::scheduler::{Pusher, PusherConfig};
use dcdb::sim::{Arch, SimClock, SimNode, Workload};
use dcdb::store::reading::TimeRange;
use dcdb::store::StoreCluster;

fn wait_for<F: Fn() -> bool>(cond: F, what: &str) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(std::time::Instant::now() < deadline, "timeout waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn tcp_pipeline_from_sim_node_to_query() {
    // Collect Agent with a real MQTT broker.
    let agent = CollectAgent::new(Arc::new(StoreCluster::single()));
    let broker = agent.start_broker(BrokerConfig::default()).expect("broker");

    // A simulated KNL node running Kripke.
    let clock = SimClock::new();
    let mut node =
        SimNode::new(Arch::KnightsLanding, "knl-e2e", Arc::clone(&clock), Workload::Kripke, 3);

    // In-band Pusher: perfevents + sysfs over TCP MQTT.
    let client = dcdb::mqtt::Client::connect(dcdb::mqtt::ClientConfig::new(
        broker.local_addr(),
        "e2e-pusher",
    ))
    .expect("client connect");
    let pusher = Pusher::new(
        PusherConfig { prefix: "/e2e/knl-e2e".into(), ..Default::default() },
        MqttOut::new(MqttBackend::Tcp(client), SendPolicy::Continuous),
    );
    pusher.add_plugin(Box::new(PerfeventsPlugin::standard(Arc::clone(&node.perf), 1000)));
    pusher.add_plugin(Box::new(SysFsPlugin::for_sim_node(Arc::clone(&node.sysfs), 1000)));

    // 10 virtual seconds, device state advancing alongside.
    for sec in 0..10 {
        let now = sec * 1_000_000_000;
        clock.advance_to(now);
        node.advance_to(now);
        pusher.sample_due(now);
    }
    let expected = pusher.stats().readings.load(std::sync::atomic::Ordering::Relaxed);
    assert!(expected > 1000, "pusher produced {expected}");
    wait_for(
        || agent.stats().readings.load(std::sync::atomic::Ordering::Relaxed) >= expected,
        "agent to receive all readings",
    );

    // Query back through libDCDB.
    let db = SensorDb::new(Arc::clone(agent.store()), Arc::clone(agent.registry()));
    let series = db.query("/e2e/knl-e2e/cpu0/instructions", TimeRange::all()).expect("query");
    // delta sensors: first reading swallowed
    assert_eq!(series.readings.len(), 9);
    assert!(series.readings.iter().all(|r| r.value > 0.0));

    // Virtual sensor: instructions per joule of package energy.
    db.set_meta("/e2e/knl-e2e/sysfs/energy_uj_intel-rapl:0", SensorMeta::with_unit(Unit::JOULE));
    db.define_virtual(
        "/v/e2e/instr_per_j",
        "\"/e2e/knl-e2e/cpu0/instructions\" / (\"/e2e/knl-e2e/sysfs/energy_uj_intel-rapl:0\" + 1)",
        Unit::NONE,
    )
    .expect("vsensor");
    let v = db.query("/v/e2e/instr_per_j", TimeRange::all()).expect("vquery");
    assert!(!v.readings.is_empty());
    assert!(v.readings.iter().all(|r| r.value.is_finite()));
}

#[test]
fn rest_apis_full_stack() {
    // Pusher with tester plugin + REST server.
    let pusher = Arc::new(Pusher::new(
        PusherConfig { prefix: "/rest/node".into(), ..Default::default() },
        MqttOut::new(MqttBackend::Null, SendPolicy::Continuous),
    ));
    pusher.add_plugin(Box::new(TesterPlugin::new(10, 100)));
    pusher.run_virtual(1_000_000_000);
    let rest = dcdb::pusher::rest::serve(Arc::clone(&pusher), "127.0.0.1:0".parse().unwrap())
        .expect("pusher REST");

    // plugin listing and control
    let resp = client::get(rest.local_addr(), "/plugins").unwrap();
    let j = Json::parse(&resp.text()).unwrap();
    assert_eq!(j.idx(0).unwrap().get("name").unwrap().as_str(), Some("tester"));
    assert_eq!(j.idx(0).unwrap().get("running").unwrap().as_bool(), Some(true));

    let resp = client::put(rest.local_addr(), "/plugins/tester/stop", None).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(pusher.plugin_enabled("tester"), Some(false));
    client::put(rest.local_addr(), "/plugins/tester/start", None).unwrap();
    assert_eq!(pusher.plugin_enabled("tester"), Some(true));
    let resp = client::put(rest.local_addr(), "/plugins/ghost/start", None).unwrap();
    assert_eq!(resp.status, 404);

    // cache access
    let resp = client::get(rest.local_addr(), "/cache/rest/node/tester/t3").unwrap();
    let j = Json::parse(&resp.text()).unwrap();
    assert!(j.get("readings").unwrap().as_arr().unwrap().len() >= 10);

    // config view
    let resp = client::get(rest.local_addr(), "/config").unwrap();
    let j = Json::parse(&resp.text()).unwrap();
    assert_eq!(j.get("sensors").unwrap().as_f64(), Some(10.0));
}

#[test]
fn plugin_reload_over_rest() {
    // "one can modify a plugin's configuration file at runtime and trigger a
    // reload of the configuration" (paper §5.3)
    let pusher = Arc::new(Pusher::new(
        PusherConfig { prefix: "/reload/node".into(), ..Default::default() },
        MqttOut::new(MqttBackend::Null, SendPolicy::Continuous),
    ));
    pusher.add_plugin(Box::new(TesterPlugin::new(5, 1000)));
    let rest = dcdb::pusher::rest::serve(Arc::clone(&pusher), "127.0.0.1:0".parse().unwrap())
        .expect("REST");
    assert_eq!(pusher.sensor_count(), 5);

    // reload with a new configuration: 20 sensors at 500 ms
    let resp = client::put(
        rest.local_addr(),
        "/plugins/tester/reload",
        Some(b"sensors 20\ninterval 500\n"),
    )
    .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(pusher.sensor_count(), 20);
    let produced = pusher.run_virtual(1_000_000_000);
    assert_eq!(produced, 20 * 3); // 0, 500ms, 1000ms

    // bad config is rejected without touching the plugin
    let resp =
        client::put(rest.local_addr(), "/plugins/tester/reload", Some(b"sensors zero\n")).unwrap();
    assert_eq!(resp.status, 400);
    assert_eq!(pusher.sensor_count(), 20);
    // unknown plugin
    let resp = client::put(rest.local_addr(), "/plugins/nope/reload", Some(b"x 1\n")).unwrap();
    assert_eq!(resp.status, 404);
}

#[test]
fn collect_agent_rest_hierarchy() {
    let agent = CollectAgent::new(Arc::new(StoreCluster::single()));
    let payload = dcdb::mqtt::payload::encode_readings(&[(1_000, 5.0)]);
    for rack in 0..2 {
        for node in 0..2 {
            agent.handle_publish(&format!("/site/rack{rack}/node{node}/power"), &payload);
        }
    }
    let rest = dcdb::collectagent::rest::serve(Arc::clone(&agent), "127.0.0.1:0".parse().unwrap())
        .expect("CA REST");

    let resp = client::get(rest.local_addr(), "/sensors").unwrap();
    assert_eq!(Json::parse(&resp.text()).unwrap().as_arr().unwrap().len(), 4);

    let resp = client::get(rest.local_addr(), "/cache/site/rack0/node1/power").unwrap();
    let j = Json::parse(&resp.text()).unwrap();
    assert_eq!(j.get("value").unwrap().as_f64(), Some(5.0));

    let resp = client::get(rest.local_addr(), "/hierarchy?prefix=/site&level=1").unwrap();
    let j = Json::parse(&resp.text()).unwrap();
    let racks: Vec<&str> =
        j.get("children").unwrap().as_arr().unwrap().iter().filter_map(Json::as_str).collect();
    assert_eq!(racks, vec!["rack0", "rack1"]);

    let resp = client::get(rest.local_addr(), "/stats").unwrap();
    let j = Json::parse(&resp.text()).unwrap();
    assert_eq!(j.get("messages").unwrap().as_f64(), Some(4.0));
}

#[test]
fn burst_policy_batches_on_the_wire() {
    let agent = CollectAgent::new(Arc::new(StoreCluster::single()));
    let broker = agent.start_broker(BrokerConfig::default()).expect("broker");
    let client = dcdb::mqtt::Client::connect(dcdb::mqtt::ClientConfig::new(
        broker.local_addr(),
        "burst-pusher",
    ))
    .expect("connect");
    let pusher = Pusher::new(
        PusherConfig { prefix: "/burst/node".into(), ..Default::default() },
        MqttOut::new(
            MqttBackend::Tcp(client),
            SendPolicy::Burst { interval_ns: 30 * 1_000_000_000 },
        ),
    );
    pusher.add_plugin(Box::new(TesterPlugin::new(5, 1000)));
    pusher.run_virtual(60 * 1_000_000_000); // one minute → ~2 bursts + final flush
    let readings = pusher.stats().readings.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(readings, 5 * 61);
    wait_for(
        || agent.stats().readings.load(std::sync::atomic::Ordering::Relaxed) >= readings,
        "agent to drain bursts",
    );
    // far fewer MQTT messages than readings
    let messages = agent.stats().messages.load(std::sync::atomic::Ordering::Relaxed);
    assert!(messages <= 5 * 4, "bursting sent {messages} messages for {readings} readings");
    // data integrity after batching
    let db = SensorDb::new(Arc::clone(agent.store()), Arc::clone(agent.registry()));
    let s = db.query("/burst/node/tester/t0", TimeRange::all()).unwrap();
    assert_eq!(s.readings.len(), 61);
}
