//! The paper's Fig. 1 deployment at test scale: multiple Collect Agents,
//! each serving a group of Pushers, all writing into one shared storage
//! cluster — DCDB's hierarchical scalability story ("hundreds or thousands
//! of Pushers, many Collect Agents, one or more Storage Backends", §3.2).

use std::sync::Arc;

use dcdb::collectagent::CollectAgent;
use dcdb::core::SensorDb;
use dcdb::mqtt::broker::BrokerConfig;
use dcdb::pusher::mqtt_out::{MqttBackend, MqttOut, SendPolicy};
use dcdb::pusher::plugins::TesterPlugin;
use dcdb::pusher::scheduler::{Pusher, PusherConfig};
use dcdb::sid::{PartitionMap, TopicRegistry};
use dcdb::store::reading::TimeRange;
use dcdb::store::{NodeConfig, StoreCluster};

#[test]
fn two_collect_agents_one_storage_cluster() {
    // One distributed storage cluster shared by both agents, partitioned at
    // the node level of the hierarchy.
    let store = Arc::new(StoreCluster::new(NodeConfig::default(), PartitionMap::prefix(4, 3), 1));
    // Both agents must share the topic registry so SIDs stay bijective
    // across the deployment (in the original, determinism of the topic→SID
    // mapping guarantees this; our registry probes collisions, so share it).
    let registry = Arc::new(TopicRegistry::new());
    let agent_a = CollectAgent::with_registry(Arc::clone(&store), Arc::clone(&registry));
    let agent_b = CollectAgent::with_registry(Arc::clone(&store), Arc::clone(&registry));
    let broker_a = agent_a.start_broker(BrokerConfig::default()).unwrap();
    let broker_b = agent_b.start_broker(BrokerConfig::default()).unwrap();

    // Three Pushers per agent (cluster partitions of Fig. 1).
    let mut pushers = Vec::new();
    for (cluster, broker) in [("clusterA", &broker_a), ("clusterB", &broker_b)] {
        for n in 0..3 {
            let client = dcdb::mqtt::Client::connect(dcdb::mqtt::ClientConfig::new(
                broker.local_addr(),
                format!("{cluster}-n{n}"),
            ))
            .unwrap();
            let pusher = Pusher::new(
                PusherConfig { prefix: format!("/site/{cluster}/node{n}"), ..Default::default() },
                MqttOut::new(MqttBackend::Tcp(client), SendPolicy::Continuous),
            );
            pusher.add_plugin(Box::new(TesterPlugin::new(8, 500)));
            pushers.push(pusher);
        }
    }
    for p in &pushers {
        p.run_virtual(5_000_000_000);
    }
    // QoS0 drain
    let expected = 6u64 * 8 * 11;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let got = agent_a.stats().readings.load(std::sync::atomic::Ordering::Relaxed)
            + agent_b.stats().readings.load(std::sync::atomic::Ordering::Relaxed);
        if got >= expected || std::time::Instant::now() > deadline {
            assert_eq!(got, expected, "all readings reach some agent");
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // Each agent served only its own cluster...
    assert_eq!(agent_a.stats().readings.load(std::sync::atomic::Ordering::Relaxed), 3 * 8 * 11);
    // ...but the data is unified in the shared storage: one libDCDB handle
    // sees the whole site.
    let db = SensorDb::new(store, registry);
    let all = db.topics_under("/site");
    assert_eq!(all.len(), 6 * 8);
    for (topic, _) in &all {
        let s = db.query(topic, TimeRange::all()).unwrap();
        assert_eq!(s.readings.len(), 11, "{topic}");
    }

    // Cross-cluster aggregate over the whole site in one call.
    let sum = db.aggregate_subtree("/site", TimeRange::all()).unwrap();
    assert_eq!(sum.readings.len(), 11, "shared grid across both clusters");
    // tester values ramp identically on both clusters; the sum at t=0 is the
    // sum of 48 sensors' ramp offsets
    assert!(sum.readings[0].value > 0.0);
}

#[test]
fn grouped_queries_across_a_sharded_site() {
    // a 4-node storage cluster, one sensor tree spanning 3 racks
    let store = Arc::new(StoreCluster::new(NodeConfig::default(), PartitionMap::prefix(4, 2), 1));
    let db = SensorDb::new(store, Arc::new(TopicRegistry::new()));
    for rack in 0..3i64 {
        for node in 0..4i64 {
            for ts in 0..120i64 {
                db.insert(
                    &format!("/site/rack{rack}/node{node}/power"),
                    ts * 1_000_000_000,
                    100.0 * (rack + 1) as f64,
                )
                .unwrap();
            }
        }
    }
    // one request: per-rack average power in 1-minute windows
    let req = dcdb::core::QueryRequest::new("/site")
        .range(TimeRange::new(0, 120_000_000_000))
        .aggregate(dcdb::query::AggFn::Avg, 60_000_000_000)
        .group_by(2);
    let resp = db.execute(&req).unwrap();
    assert_eq!(resp.series.len(), 3);
    for (rack, group) in resp.series.iter().enumerate() {
        assert_eq!(group.key.as_deref().unwrap(), format!("/site/rack{rack}"));
        assert_eq!(group.sensors, 4);
        assert_eq!(group.series.readings.len(), 2);
        assert!(group
            .series
            .readings
            .iter()
            .all(|r| (r.value - 100.0 * (rack + 1) as f64).abs() < 1e-9));
        // grouped series agree with the legacy per-rack fan-in exactly
        let legacy = db
            .query_aggregate(
                &format!("/site/rack{rack}"),
                TimeRange::new(0, 120_000_000_000),
                60_000_000_000,
                dcdb::query::AggFn::Avg,
            )
            .unwrap();
        assert_eq!(group.series.readings, legacy.readings);
    }
}

#[test]
fn subtree_queries_and_aggregates() {
    let db = SensorDb::in_memory();
    for node in 0..4 {
        for ts in 0..10 {
            db.insert(&format!("/agg/rack0/node{node}/power"), ts * 1_000, 100.0).unwrap();
        }
    }
    let series = db.query_subtree("/agg/rack0", TimeRange::all()).unwrap();
    assert_eq!(series.len(), 4);
    let total = db.aggregate_subtree("/agg/rack0", TimeRange::all()).unwrap();
    assert_eq!(total.readings.len(), 10);
    assert!(total.readings.iter().all(|r| (r.value - 400.0).abs() < 1e-9));
    // misaligned sampling still aggregates via interpolation
    db.insert("/agg/rack0/node9/power", 500, 50.0).unwrap();
    db.insert("/agg/rack0/node9/power", 9_500, 50.0).unwrap();
    let total = db.aggregate_subtree("/agg/rack0", TimeRange::all()).unwrap();
    assert!(total.readings.iter().all(|r| (r.value - 450.0).abs() < 1e-9));
}
