//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Deterministic xorshift64* generator behind the small `rand 0.8` API
//! surface dcdb-rs uses: `StdRng`, `SeedableRng::seed_from_u64` and
//! `Rng::gen_range` over half-open ranges.

use std::ops::Range;

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    /// The standard deterministic generator (xorshift64* here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

pub use rngs::StdRng;

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // splitmix64 scramble so nearby seeds diverge immediately
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        StdRng { state: (z ^ (z >> 31)) | 1 }
    }
}

/// Types [`Rng::gen_range`] accepts, generic over the produced value so
/// float-literal inference works like upstream rand.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// Core entropy source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// The user-facing sampling API (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value in `range`.
    ///
    /// # Panics
    /// On empty ranges.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: RngCore> Rng for T {}

/// Types with a uniform sampler — the blanket `SampleRange` impl below is
/// what lets `gen_range(-1.0..1.0)` infer `f64` like upstream rand.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform value in `[lo, hi)`.
    fn sample_range(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_range(self.start, self.end, rng)
    }
}

impl SampleUniform for f64 {
    fn sample_range(lo: f64, hi: f64, rng: &mut dyn RngCore) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * u
    }
}

impl SampleUniform for f32 {
    fn sample_range(lo: f32, hi: f32, rng: &mut dyn RngCore) -> f32 {
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        lo + (hi - lo) * u
    }
}

macro_rules! int_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range(lo: $ty, hi: $ty, rng: &mut dyn RngCore) -> $ty {
                let width = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % width;
                (lo as i128 + v as i128) as $ty
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let u = rng.gen_range(0usize..7);
            assert!(u < 7);
        }
    }

    #[test]
    fn covers_full_int_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let _ = rng.gen_range(i64::MIN..i64::MAX);
        }
    }
}
