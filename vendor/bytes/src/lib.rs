//! Offline stand-in for the `bytes` crate (see `vendor/README.md`).
//!
//! Implements the subset dcdb-rs uses: [`Bytes`] (cheaply-cloneable
//! immutable buffer), [`BytesMut`] (growable buffer with a read cursor),
//! and the [`Buf`]/[`BufMut`] cursor traits with the big-/little-endian
//! accessors the codecs call.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Read cursor over a contiguous byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `n` bytes.
    ///
    /// # Panics
    /// When `n > remaining()`.
    fn advance(&mut self, n: usize);

    /// True while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy out `dst.len()` bytes.
    ///
    /// # Panics
    /// When fewer bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one `u8` (big-endian).
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        u8::from_be_bytes(b)
    }

    /// Read one `u8` (little-endian).
    fn get_u8_le(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        u8::from_le_bytes(b)
    }

    /// Read one `u16` (big-endian).
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read one `u16` (little-endian).
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read one `u32` (big-endian).
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read one `u32` (little-endian).
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read one `u64` (big-endian).
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Read one `u64` (little-endian).
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read one `u128` (big-endian).
    fn get_u128(&mut self) -> u128 {
        let mut b = [0u8; 16];
        self.copy_to_slice(&mut b);
        u128::from_be_bytes(b)
    }

    /// Read one `u128` (little-endian).
    fn get_u128_le(&mut self) -> u128 {
        let mut b = [0u8; 16];
        self.copy_to_slice(&mut b);
        u128::from_le_bytes(b)
    }

    /// Read one `i8` (big-endian).
    fn get_i8(&mut self) -> i8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        i8::from_be_bytes(b)
    }

    /// Read one `i8` (little-endian).
    fn get_i8_le(&mut self) -> i8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        i8::from_le_bytes(b)
    }

    /// Read one `i16` (big-endian).
    fn get_i16(&mut self) -> i16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        i16::from_be_bytes(b)
    }

    /// Read one `i16` (little-endian).
    fn get_i16_le(&mut self) -> i16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        i16::from_le_bytes(b)
    }

    /// Read one `i32` (big-endian).
    fn get_i32(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_be_bytes(b)
    }

    /// Read one `i32` (little-endian).
    fn get_i32_le(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_le_bytes(b)
    }

    /// Read one `i64` (big-endian).
    fn get_i64(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_be_bytes(b)
    }

    /// Read one `i64` (little-endian).
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Read one `f64` (big-endian).
    fn get_f64(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_be_bytes(b)
    }

    /// Read one `f64` (little-endian).
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }

    /// Read one `f32` (big-endian).
    fn get_f32(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_be_bytes(b)
    }

    /// Read one `f32` (little-endian).
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        *self = &self[n..];
    }
}

/// Append sink for encoders.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Write one `u8` (big-endian).
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Write one `u8` (little-endian).
    fn put_u8_le(&mut self, v: u8) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Write one `u16` (big-endian).
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Write one `u16` (little-endian).
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Write one `u32` (big-endian).
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Write one `u32` (little-endian).
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Write one `u64` (big-endian).
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Write one `u64` (little-endian).
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Write one `u128` (big-endian).
    fn put_u128(&mut self, v: u128) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Write one `u128` (little-endian).
    fn put_u128_le(&mut self, v: u128) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Write one `i8` (big-endian).
    fn put_i8(&mut self, v: i8) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Write one `i8` (little-endian).
    fn put_i8_le(&mut self, v: i8) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Write one `i16` (big-endian).
    fn put_i16(&mut self, v: i16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Write one `i16` (little-endian).
    fn put_i16_le(&mut self, v: i16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Write one `i32` (big-endian).
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Write one `i32` (little-endian).
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Write one `i64` (big-endian).
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Write one `i64` (little-endian).
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Write one `f64` (big-endian).
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Write one `f64` (little-endian).
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Write one `f32` (big-endian).
    fn put_f32(&mut self, v: f32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Write one `f32` (little-endian).
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Immutable, cheaply-cloneable byte buffer (`Arc`-backed view).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Buffer borrowing a static slice (copied here; the stub has no
    /// zero-copy static path).
    pub fn from_static(src: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(src)
    }

    /// Buffer copied from a slice.
    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        Bytes::from(src.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove and return the first `n` bytes as a shared view.
    ///
    /// # Panics
    /// When `n > len()`.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to past end");
        let head = self.slice(..n);
        self.start += n;
        head
    }

    /// A sub-view sharing the same allocation.
    ///
    /// # Panics
    /// On out-of-bounds or inverted ranges.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: v.into(), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

/// Growable byte buffer with an internal read cursor.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    /// Read offset: bytes before it have been consumed via [`Buf::advance`]
    /// or [`BytesMut::split_to`].
    start: usize,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(cap), start: 0 }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// True when no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Reserve space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Remove and return the first `n` unread bytes.
    ///
    /// # Panics
    /// When `n > len()`.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to past end");
        let out = BytesMut { buf: self[..n].to_vec(), start: 0 };
        self.start += n;
        self.compact_if_large();
        out
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.start = 0;
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        if self.start > 0 {
            self.buf.drain(..self.start);
        }
        Bytes::from(self.buf)
    }

    /// Reclaim consumed prefix space once it dominates the allocation.
    fn compact_if_large(&mut self) {
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.start..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> BytesMut {
        BytesMut { buf: src.to_vec(), start: 0 }
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
        self.compact_if_large();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_slice_and_eq() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(..), s);
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
    }

    #[test]
    fn bytesmut_cursor_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u16(0xBEEF);
        m.put_i64_le(-42);
        m.put_f64(1.5);
        assert_eq!(m.len(), 18);
        assert_eq!(m.get_u16(), 0xBEEF);
        assert_eq!(m.get_i64_le(), -42);
        assert_eq!(m.get_f64(), 1.5);
        assert!(m.is_empty());
    }

    #[test]
    fn split_to_keeps_rest() {
        let mut m = BytesMut::from(&b"hello world"[..]);
        let head = m.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&m[..], b" world");
        assert_eq!(m.freeze(), Bytes::from_static(b" world"));
    }

    #[test]
    fn slice_buf_reader() {
        let data = [0u8, 1, 2, 3];
        let mut s = &data[..];
        assert_eq!(s.get_u16(), 1);
        assert_eq!(s.remaining(), 2);
        s.advance(1);
        assert_eq!(s.get_u8(), 3);
        assert!(!s.has_remaining());
    }
}
