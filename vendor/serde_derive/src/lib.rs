//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! dcdb-rs only *derives* `Serialize`/`Deserialize` as marker capability on
//! a few plain-old-data types and never invokes a serializer, so the stub
//! derives expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
