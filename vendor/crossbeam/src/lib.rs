//! Offline stand-in for the `crossbeam` crate (see `vendor/README.md`).
//!
//! Implements `crossbeam::channel`'s bounded MPMC channel on top of a
//! `Mutex<VecDeque>` + `Condvar` — the subset dcdb-rs uses (`bounded`,
//! `try_send`, `recv_timeout`, `len`).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    struct Inner<T> {
        queue: Mutex<QueueState<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: usize,
    }

    struct QueueState<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::try_send`] on a full or closed channel.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// Channel at capacity.
        Full(T),
        /// All receivers dropped.
        Disconnected(T),
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is closed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Closed and drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Deadline passed with nothing queued.
        Timeout,
        /// Closed and drained.
        Disconnected,
    }

    /// Producer handle.
    pub struct Sender<T>(Arc<Inner<T>>);

    /// Consumer handle.
    pub struct Receiver<T>(Arc<Inner<T>>);

    /// Create a bounded channel holding at most `cap` items (`cap = 0` is
    /// treated as capacity 1; the stub has no rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(QueueState { items: VecDeque::new(), senders: 1, receivers: 1 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        });
        (Sender(Arc::clone(&inner)), Receiver(inner))
    }

    impl<T> Sender<T> {
        /// Queue `item` without blocking.
        ///
        /// # Errors
        /// [`TrySendError::Full`] at capacity, [`TrySendError::Disconnected`]
        /// when every receiver is gone.
        pub fn try_send(&self, item: T) -> Result<(), TrySendError<T>> {
            let mut q = self.0.queue.lock().expect("channel lock");
            if q.receivers == 0 {
                return Err(TrySendError::Disconnected(item));
            }
            if q.items.len() >= self.0.cap {
                return Err(TrySendError::Full(item));
            }
            q.items.push_back(item);
            self.0.not_empty.notify_one();
            Ok(())
        }

        /// Queue `item`, blocking while the channel is full.
        ///
        /// # Errors
        /// [`SendError`] when every receiver is gone.
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut q = self.0.queue.lock().expect("channel lock");
            loop {
                if q.receivers == 0 {
                    return Err(SendError(item));
                }
                if q.items.len() < self.0.cap {
                    q.items.push_back(item);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                q = self.0.not_full.wait(q).expect("channel lock");
            }
        }

        /// Queued item count.
        pub fn len(&self) -> usize {
            self.0.queue.lock().expect("channel lock").items.len()
        }

        /// True when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Take the next item, blocking until one arrives.
        ///
        /// # Errors
        /// [`RecvError`] when the channel is closed and drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().expect("channel lock");
            loop {
                if let Some(item) = q.items.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(item);
                }
                if q.senders == 0 {
                    return Err(RecvError);
                }
                q = self.0.not_empty.wait(q).expect("channel lock");
            }
        }

        /// Take the next item without blocking.
        ///
        /// # Errors
        /// [`TryRecvError::Empty`] / [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.0.queue.lock().expect("channel lock");
            if let Some(item) = q.items.pop_front() {
                self.0.not_full.notify_one();
                return Ok(item);
            }
            if q.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Take the next item, waiting up to `timeout`.
        ///
        /// # Errors
        /// [`RecvTimeoutError::Timeout`] / [`RecvTimeoutError::Disconnected`].
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut q = self.0.queue.lock().expect("channel lock");
            loop {
                if let Some(item) = q.items.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(item);
                }
                if q.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) =
                    self.0.not_empty.wait_timeout(q, deadline - now).expect("channel lock");
                q = guard;
            }
        }

        /// Queued item count.
        pub fn len(&self) -> usize {
            self.0.queue.lock().expect("channel lock").items.len()
        }

        /// True when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.0.queue.lock().expect("channel lock").senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.0.queue.lock().expect("channel lock").receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut q = self.0.queue.lock().expect("channel lock");
            q.senders -= 1;
            if q.senders == 0 {
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut q = self.0.queue.lock().expect("channel lock");
            q.receivers -= 1;
            if q.receivers == 0 {
                self.0.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = bounded(4);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn full_and_timeout() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Ok(1));
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Timeout));
    }

    #[test]
    fn disconnect_propagates() {
        let (tx, rx) = bounded::<u8>(1);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert!(matches!(tx.try_send(1), Err(TrySendError::Disconnected(1))));
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = bounded(8);
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv().unwrap());
        }
        h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
