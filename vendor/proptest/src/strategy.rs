//! The [`Strategy`] trait and the built-in strategies: primitives via
//! [`any`], ranges, tuples, [`Just`], mapping and bounded recursion.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::TestRng;

/// A generator of values for property tests.
///
/// The stub generates directly (no value trees / shrinking).
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build recursive structures: `self` is the leaf case, `branch` maps a
    /// strategy for depth-`d` values to one for depth-`d+1` values, applied
    /// `depth` times.  `_desired_size` / `_expected_branch` are accepted for
    /// signature compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        branch: F,
    ) -> RcStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(RcStrategy<Self::Value>) -> R,
    {
        let mut s = RcStrategy(Rc::new(self) as Rc<dyn Strategy<Value = Self::Value>>);
        for _ in 0..depth {
            s = RcStrategy(Rc::new(branch(s)));
        }
        s
    }
}

/// Shared, type-erased strategy (the stub's `BoxedStrategy`).
pub struct RcStrategy<V>(pub(crate) Rc<dyn Strategy<Value = V>>);

impl<V> Clone for RcStrategy<V> {
    fn clone(&self) -> RcStrategy<V> {
        RcStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for RcStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A` (full value range for primitives).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Function-pointer strategy backing [`any`] for primitives.
pub struct FnStrategy<T>(fn(&mut TestRng) -> T);

impl<T> FnStrategy<T> {
    /// Wrap a generator function.
    pub fn new(f: fn(&mut TestRng) -> T) -> FnStrategy<T> {
        FnStrategy(f)
    }
}

impl<T> Strategy for FnStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

macro_rules! arbitrary_prim {
    ($($ty:ty => $gen:expr;)*) => {$(
        impl Arbitrary for $ty {
            type Strategy = FnStrategy<$ty>;
            fn arbitrary() -> FnStrategy<$ty> {
                FnStrategy($gen)
            }
        }
    )*};
}

arbitrary_prim! {
    u8 => |r| r.next_u64() as u8;
    u16 => |r| r.next_u64() as u16;
    u32 => |r| r.next_u64() as u32;
    u64 => |r| r.next_u64();
    u128 => |r| (r.next_u64() as u128) << 64 | r.next_u64() as u128;
    usize => |r| r.next_u64() as usize;
    i8 => |r| r.next_u64() as i8;
    i16 => |r| r.next_u64() as i16;
    i32 => |r| r.next_u64() as i32;
    i64 => |r| r.next_u64() as i64;
    i128 => |r| ((r.next_u64() as u128) << 64 | r.next_u64() as u128) as i128;
    isize => |r| r.next_u64() as isize;
    bool => |r| r.next_u64() & 1 == 1;
    char => |r| {
        // favour ASCII, occasionally any scalar value
        if r.below(4) == 0 {
            loop {
                if let Some(c) = char::from_u32(r.next_u64() as u32 % 0x11_0000) {
                    break c;
                }
            }
        } else {
            (0x20 + r.below(0x5f)) as u8 as char
        }
    };
    // mostly finite values; specials (NaN/∞) appear via explicit strategies
    f64 => |r| {
        match r.below(16) {
            0 => f64::from_bits(r.next_u64()),
            1 => 0.0,
            _ => (r.next_u64() as i64 as f64) * 1e-6,
        }
    };
    f32 => |r| {
        match r.below(16) {
            0 => f32::from_bits(r.next_u64() as u32),
            1 => 0.0,
            _ => (r.next_u64() as i32 as f32) * 1e-3,
        }
    };
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let raw = (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
                (self.start as i128 + (raw % width) as i128) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let raw = (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
                (lo as i128 + (raw % width) as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.uniform01()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.uniform01() as f32
    }
}

/// Regex-subset string strategy; see [`crate::string::generate`].
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("strategy-tests")
    }

    #[test]
    fn ranges_and_tuples() {
        let mut r = rng();
        for _ in 0..200 {
            let (a, b, c) = (0u16..4, -10i64..10, -1.0f64..1.0).generate(&mut r);
            assert!(a < 4);
            assert!((-10..10).contains(&b));
            assert!((-1.0..1.0).contains(&c));
        }
    }

    #[test]
    fn map_and_just() {
        let mut r = rng();
        let s = Just(3u8).prop_map(|x| x * 2);
        assert_eq!(s.generate(&mut r), 6);
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        let s = Just(Tree::Leaf).prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut r = rng();
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        for _ in 0..100 {
            assert!(depth(&s.generate(&mut r)) <= 3);
        }
    }

    #[test]
    fn inclusive_range_hits_bounds() {
        let mut r = rng();
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..400 {
            match (0u8..=1).generate(&mut r) {
                0 => saw_lo = true,
                1 => saw_hi = true,
                _ => unreachable!(),
            }
        }
        assert!(saw_lo && saw_hi);
    }
}
