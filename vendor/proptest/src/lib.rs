//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! A compact property-testing engine with proptest's calling convention:
//! the [`Strategy`] trait with `prop_map`/`prop_recursive`, `any::<T>()`,
//! ranges and tuples as strategies, regex-subset string strategies,
//! `prop::collection::{vec, btree_map, hash_set}`, `prop::sample::Index`,
//! and the `proptest!`/`prop_oneof!`/`prop_assert*!` macros.
//!
//! Differences from real proptest: no shrinking (failures report the case
//! number and seed instead of a minimal counterexample), and generation is
//! plain pseudo-random rather than size-ramped.  Set `PROPTEST_CASES` to
//! change the per-test case count (default 256) and `PROPTEST_SEED` to
//! reproduce a run.

use std::rc::Rc;

pub mod strategy;
pub use strategy::{any, Arbitrary, Just, RcStrategy, Strategy};

pub mod collection;
pub mod sample;
pub mod string;

/// Module alias so `prop::collection::vec(..)` works like upstream.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything a proptest-based test file needs.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, RcStrategy, Strategy};
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases =
            std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// A failed property (returned by the `prop_assert*!` macros).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with `message`.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The deterministic generator driving every strategy.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the test name (plus `PROPTEST_SEED` when set) so every
    /// test gets an independent, reproducible stream.
    pub fn for_test(name: &str) -> TestRng {
        let env_seed: u64 =
            std::env::var("PROPTEST_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0);
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ env_seed;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 random bits (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value below `n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform `usize` in `[lo, hi)`; returns `lo` on empty ranges.
    pub fn size_in(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            lo
        } else {
            lo + self.below((hi - lo) as u64) as usize
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn uniform01(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Type-erase a strategy behind an [`Rc`] (proptest's `BoxedStrategy` role).
pub fn rc<S>(s: S) -> RcStrategy<S::Value>
where
    S: Strategy + 'static,
{
    RcStrategy(Rc::new(s))
}

/// Weighted alternation over same-valued strategies (`prop_oneof!` target).
pub struct OneOf<V> {
    arms: Vec<(f64, RcStrategy<V>)>,
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let total: f64 = self.arms.iter().map(|(w, _)| *w).sum();
        let mut pick = rng.uniform01() * total;
        for (w, s) in &self.arms {
            pick -= *w;
            if pick <= 0.0 {
                return s.generate(rng);
            }
        }
        self.arms.last().expect("prop_oneof! needs at least one arm").1.generate(rng)
    }
}

/// Build a [`OneOf`]; used by the `prop_oneof!` macro.
pub fn one_of<V>(arms: Vec<(f64, RcStrategy<V>)>) -> OneOf<V> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    OneOf { arms }
}

/// Run one property: generate `cases` inputs, run the body on each.
/// Used by the `proptest!` macro; panics (with the case index and seed
/// recipe) on the first failing case.
pub fn run_property<F>(name: &str, cfg: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::for_test(name);
    for i in 0..cfg.cases {
        if let Err(e) = case(&mut rng) {
            panic!(
                "property '{name}' failed at case {i}/{}: {e}\n\
                 (re-run with PROPTEST_SEED unchanged to reproduce)",
                cfg.cases
            );
        }
    }
}

/// Declare property tests, proptest-style.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

/// Internal tt-muncher behind [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config = $cfg;
            $crate::run_property(stringify!($name), &config, |prop_rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), prop_rng);)*
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Weighted/unweighted alternation of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::one_of(vec![$(($weight as f64, $crate::rc($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::one_of(vec![$((1.0, $crate::rc($strat))),+])
    };
}

/// Soft assertion: fails the current case without panicking the harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Soft equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::fail(format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::fail(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)+),
                        l,
                        r
                    )));
                }
            }
        }
    };
}

/// Soft inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return Err($crate::TestCaseError::fail(format!(
                        "assertion failed: {} != {} (both {:?})",
                        stringify!($left),
                        stringify!($right),
                        l
                    )));
                }
            }
        }
    };
}
