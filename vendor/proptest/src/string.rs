//! Generation from a small regex subset — enough for the patterns dcdb-rs
//! tests use: literals, `.`, character classes (`[a-z.]`, escapes, ranges),
//! groups `(...)`, and the quantifiers `{m,n}`, `{m}`, `?`, `*`, `+`
//! (unbounded forms capped at 8 repeats).

use crate::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Lit(char),
    /// Inclusive char ranges; single chars are `(c, c)`.
    Class(Vec<(char, char)>),
    /// `.` — any char except newline.
    Any,
    Group(Vec<Term>),
}

#[derive(Debug, Clone)]
struct Term {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generate one string matching `pattern`.
///
/// # Panics
/// On syntax outside the supported subset (unterminated class/group,
/// malformed `{m,n}`).
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let (terms, used) = parse_seq(&chars, 0, None);
    assert_eq!(used, chars.len(), "unsupported regex pattern: {pattern}");
    let mut out = String::new();
    emit_seq(&terms, rng, &mut out);
    out
}

fn parse_seq(chars: &[char], mut i: usize, stop: Option<char>) -> (Vec<Term>, usize) {
    let mut terms = Vec::new();
    while i < chars.len() {
        if stop == Some(chars[i]) {
            return (terms, i);
        }
        let (atom, next) = parse_atom(chars, i);
        let (min, max, next) = parse_quant(chars, next);
        terms.push(Term { atom, min, max });
        i = next;
    }
    assert!(stop.is_none(), "unterminated group in regex");
    (terms, i)
}

fn parse_atom(chars: &[char], i: usize) -> (Atom, usize) {
    match chars[i] {
        '(' => {
            let (inner, end) = parse_seq(chars, i + 1, Some(')'));
            (Atom::Group(inner), end + 1)
        }
        '[' => parse_class(chars, i + 1),
        '.' => (Atom::Any, i + 1),
        '\\' => {
            let c = *chars.get(i + 1).expect("dangling escape");
            (Atom::Lit(unescape(c)), i + 2)
        }
        c => (Atom::Lit(c), i + 1),
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

fn parse_class(chars: &[char], mut i: usize) -> (Atom, usize) {
    let mut ranges = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let lo = if chars[i] == '\\' {
            i += 2;
            unescape(chars[i - 1])
        } else {
            i += 1;
            chars[i - 1]
        };
        // range `a-z` (a literal '-' before ']' stands for itself)
        if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
            let hi = if chars[i + 1] == '\\' {
                i += 3;
                unescape(chars[i - 1])
            } else {
                i += 2;
                chars[i - 1]
            };
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
    assert!(i < chars.len(), "unterminated character class");
    (Atom::Class(ranges), i + 1)
}

fn parse_quant(chars: &[char], i: usize) -> (usize, usize, usize) {
    match chars.get(i) {
        Some('?') => (0, 1, i + 1),
        Some('*') => (0, 8, i + 1),
        Some('+') => (1, 8, i + 1),
        Some('{') => {
            let close = chars[i..].iter().position(|&c| c == '}').expect("unterminated {m,n}") + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((m, n)) => (m.parse().expect("bad {m,n}"), n.parse().expect("bad {m,n}")),
                None => {
                    let n = body.parse().expect("bad {m}");
                    (n, n)
                }
            };
            (min, max, close + 1)
        }
        _ => (1, 1, i),
    }
}

fn emit_seq(terms: &[Term], rng: &mut TestRng, out: &mut String) {
    for term in terms {
        let n = rng.size_in(term.min, term.max + 1);
        for _ in 0..n {
            emit_atom(&term.atom, rng, out);
        }
    }
}

fn emit_atom(atom: &Atom, rng: &mut TestRng, out: &mut String) {
    match atom {
        Atom::Lit(c) => out.push(*c),
        Atom::Any => {
            // mostly printable ASCII, occasionally any non-newline scalar
            let c = if rng.below(8) == 0 {
                loop {
                    let raw = rng.next_u64() as u32 % 0x11_0000;
                    if let Some(c) = char::from_u32(raw) {
                        if c != '\n' {
                            break c;
                        }
                    }
                }
            } else {
                (0x20 + rng.below(0x5f)) as u8 as char
            };
            out.push(c);
        }
        Atom::Class(ranges) => {
            let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
            let (lo, hi) = (lo as u32, hi as u32);
            debug_assert!(lo <= hi, "inverted class range");
            let c = loop {
                let raw = lo + rng.below((hi - lo + 1) as u64) as u32;
                if let Some(c) = char::from_u32(raw) {
                    break c;
                }
            };
            out.push(c);
        }
        Atom::Group(inner) => emit_seq(inner, rng, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("string-tests")
    }

    #[test]
    fn classes_and_quantifiers() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[a-z]{1,5}", &mut r);
            assert!((1..=5).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn groups_repeat() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[a-z]{1,5}(/[a-z]{1,5}){0,4}", &mut r);
            for (i, seg) in s.split('/').enumerate() {
                assert!((1..=5).contains(&seg.chars().count()), "segment {i} in {s:?}");
            }
        }
    }

    #[test]
    fn dot_excludes_newline() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate(".{0,256}", &mut r);
            assert!(s.chars().count() <= 256);
            assert!(!s.contains('\n'));
        }
    }

    #[test]
    fn escapes_in_classes() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[a-zA-Z0-9 _/\\-\\.\\n\"\\\\]{0,24}", &mut r);
            assert!(s.chars().all(|c| { c.is_ascii_alphanumeric() || " _/-.\n\"\\".contains(c) }));
        }
    }

    #[test]
    fn literals_and_exact_counts() {
        let mut r = rng();
        assert_eq!(generate("abc", &mut r), "abc");
        assert_eq!(generate("x{3}", &mut r), "xxx");
    }
}
