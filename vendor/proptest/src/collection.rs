//! Collection strategies: `vec`, `btree_map`, `hash_set`.

use std::collections::{BTreeMap, HashSet};
use std::hash::Hash;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::TestRng;

/// Size specification accepted by the collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        SizeRange { lo: r.start, hi: r.end.max(r.start + 1) }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.size_in(self.lo, self.hi)
    }
}

/// Strategy producing `Vec`s of values from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy with `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy producing `BTreeMap`s.
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let n = self.size.pick(rng);
        let mut out = BTreeMap::new();
        // duplicate keys collapse, matching proptest's at-most-n semantics
        for _ in 0..n {
            out.insert(self.key.generate(rng), self.value.generate(rng));
        }
        out
    }
}

/// `BTreeMap` strategy with up to `size` entries.
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy { key, value, size: size.into() }
}

/// Strategy producing `HashSet`s.
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let n = self.size.pick(rng);
        let mut out = HashSet::new();
        for _ in 0..n {
            out.insert(self.element.generate(rng));
        }
        out
    }
}

/// `HashSet` strategy with up to `size` elements.
pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S::Value: Hash + Eq,
{
    HashSetStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size() {
        let mut rng = TestRng::for_test("vec");
        let s = vec(0u8..10, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn maps_and_sets() {
        let mut rng = TestRng::for_test("maps");
        let m = btree_map(0u8..4, 0u16..100, 0..8).generate(&mut rng);
        assert!(m.len() <= 8);
        let s = hash_set(0u8..255, 3..6).generate(&mut rng);
        assert!(s.len() <= 6);
    }

    #[test]
    fn exact_size_from_usize() {
        let mut rng = TestRng::for_test("exact");
        assert_eq!(vec(0u8..2, 7).generate(&mut rng).len(), 7);
    }
}
