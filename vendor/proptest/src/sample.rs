//! Sampling helpers: [`Index`] (a collection-independent random position).

use crate::strategy::{Arbitrary, FnStrategy};

/// A random index resolved against a length at use time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Resolve against a collection of `len` elements.
    ///
    /// # Panics
    /// When `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    type Strategy = FnStrategy<Index>;
    fn arbitrary() -> FnStrategy<Index> {
        FnStrategy::new(|r| Index(r.next_u64()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{any, Strategy};

    #[test]
    fn index_in_bounds() {
        let mut rng = crate::TestRng::for_test("index");
        for _ in 0..100 {
            let ix = any::<Index>().generate(&mut rng);
            assert!(ix.index(7) < 7);
            assert_eq!(ix.index(1), 0);
        }
    }
}
