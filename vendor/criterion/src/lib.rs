//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! A minimal benchmark harness with criterion's calling convention:
//! groups, `bench_function`, `iter`/`iter_batched`, throughput annotation.
//! Measurement is a fixed-duration loop printing mean ns/iter — enough to
//! compare hot paths locally, with none of criterion's statistics.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work-per-iteration annotation (printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored by the stub).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh input every iteration.
    PerIteration,
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    measure: Duration,
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { _parent: self, throughput: None, measure: self.measure() }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, None, self.measure(), &mut f);
        self
    }

    fn measure(&self) -> Duration {
        if self.measure.is_zero() {
            // keep `cargo bench` fast; CRITERION_MEASURE_MS overrides
            let ms = std::env::var("CRITERION_MEASURE_MS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(300);
            Duration::from_millis(ms)
        } else {
            self.measure
        }
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a Criterion,
    throughput: Option<Throughput>,
    measure: Duration,
}

impl BenchmarkGroup<'_> {
    /// Annotate the work performed per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Hint the sample count (ignored by the stub).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Hint the measurement time.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measure = d;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, self.throughput, self.measure, &mut f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; drives the measured loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    measure: Duration,
}

impl Bencher {
    /// Measure `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        while start.elapsed() < self.measure {
            black_box(routine());
            self.iters += 1;
        }
        self.elapsed = start.elapsed();
    }

    /// Measure `routine` on inputs built (unmeasured) by `setup`.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut spent = Duration::ZERO;
        while spent < self.measure {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            spent += start.elapsed();
            self.iters += 1;
        }
        self.elapsed = spent;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    measure: Duration,
    f: &mut F,
) {
    let mut b = Bencher { iters: 0, elapsed: Duration::ZERO, measure };
    f(&mut b);
    if b.iters == 0 {
        println!("  {name}: no iterations");
        return;
    }
    let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.1} Melem/s)", n as f64 / ns * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.1} MiB/s)", n as f64 / ns * 1e9 / (1024.0 * 1024.0) / 1e6)
        }
        None => String::new(),
    };
    println!("  {name}: {ns:.1} ns/iter ({} iters){extra}", b.iters);
}

/// Declare a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
