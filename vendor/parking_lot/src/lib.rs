//! Offline stand-in for the `parking_lot` crate (see `vendor/README.md`).
//!
//! Thin wrappers over `std::sync` primitives exposing the `parking_lot`
//! calling convention: `lock()`/`read()`/`write()` return guards directly
//! (poisoning is swallowed, matching `parking_lot`'s poison-free design).

use std::sync;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (blocking), ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
