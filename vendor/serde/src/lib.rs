//! Offline stand-in for the `serde` crate (see `vendor/README.md`).
//!
//! dcdb-rs derives `Serialize`/`Deserialize` as marker capability on a few
//! plain-old-data types; no serializer is ever instantiated.  The derives
//! re-exported here (from the stub `serde_derive`) expand to nothing.

pub use serde_derive::{Deserialize, Serialize};
