//! # dcdb
//!
//! Facade crate for **dcdb-rs**, a Rust reproduction of
//! *"From Facility to Application Sensor Data: Modular, Continuous and
//! Holistic Monitoring with DCDB"* (Netti et al., SC 2019).
//!
//! The workspace is organised like the paper's architecture:
//!
//! * [`sid`] — 128-bit hierarchical sensor identifiers and MQTT topic mapping
//! * [`config`] — property-tree configuration files
//! * [`compress`] — Gorilla-style lossless time-series compression
//!   (delta-of-delta timestamps + XOR floats) used by the store's `DCDBSST2`
//!   on-disk format and the MQTT compressed payload encoding
//! * [`mqtt`] — MQTT 3.1.1 codec, broker and client (the transport layer)
//! * [`store`] — the wide-column distributed storage backend (Cassandra
//!   stand-in), with background flush/compaction maintenance workers so
//!   sustained ingest never stalls on database management
//! * [`query`] — the streaming query/aggregation engine with pushdown into
//!   compressed SSTable blocks (windowed `avg`/`p99`/`rate`/… over sensors
//!   or whole sensor sub-trees)
//! * [`obs`] — lock-free self-monitoring: metrics registry, latency
//!   histograms, per-query span traces (Prometheus `/metrics`, `--explain`,
//!   the reserved `_dcdb/` self-sensor hierarchy)
//! * [`http`] — minimal HTTP/1.1 + JSON for the RESTful APIs
//! * [`sim`] — simulated HPC cluster substrate (architectures, devices, workloads)
//! * [`pusher`] — the plugin-based data-collection agent
//! * [`collectagent`] — the publish-only MQTT broker writing to storage
//! * [`core`] — libDCDB: the unified typed query API
//!   (`QueryRequest`/`QueryResponse` via `SensorDb::execute`, with group-by
//!   and parallel grouped execution), virtual sensors, units, analysis
//!   operations
//!
//! ## Quickstart
//!
//! ```
//! use dcdb::store::cluster::StoreCluster;
//! use dcdb::sid::SensorId;
//!
//! let cluster = StoreCluster::single();
//! let sid = SensorId::from_topic("/lrz/system1/rack0/node0/power").unwrap();
//! cluster.insert(sid, 1_000_000, 240.0);
//! let readings = cluster.query_range(sid, 0, 2_000_000);
//! assert_eq!(readings.len(), 1);
//! ```

pub use dcdb_collectagent as collectagent;
pub use dcdb_compress as compress;
pub use dcdb_config as config;
pub use dcdb_core as core;
pub use dcdb_http as http;
pub use dcdb_mqtt as mqtt;
pub use dcdb_obs as obs;
pub use dcdb_pusher as pusher;
pub use dcdb_query as query;
pub use dcdb_sid as sid;
pub use dcdb_sim as sim;
pub use dcdb_store as store;
